#!/usr/bin/env python
"""The client-side add-on: real-time protection while browsing.

Simulates the paper's companion browser add-on [3]: a user browses a mix
of legitimate and phishing pages; every navigation goes through the
add-on's hook (trust list → verdict cache → scrape + analyse → policy),
and the session ends with the add-on's own statistics.

Run:  python examples/browser_addon.py
"""

import numpy as np

from repro import (
    CorpusConfig,
    KnowYourPhish,
    PhishingDetector,
    TargetIdentifier,
    build_world,
)
from repro.addon import Action, PhishingPreventionAddon, WarningPolicy
from repro.core import FeatureExtractor
from repro.web.ocr import SimulatedOcr


def main():
    print("Building world and training the pipeline...")
    world = build_world(CorpusConfig(
        leg_train=250, phish_train=80, phish_test=60, phish_brand=20,
        english_test=500, other_language_test=100,
    ))
    extractor = FeatureExtractor(alexa=world.alexa)
    detector = PhishingDetector(extractor, n_estimators=80)
    train = world.dataset("legTrain") + world.dataset("phishTrain")
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    pipeline = KnowYourPhish(
        detector, TargetIdentifier(world.search, ocr=SimulatedOcr())
    )

    policy = WarningPolicy()
    policy.trust_domain("paypal.com")       # the user's own bank, say
    addon = PhishingPreventionAddon(pipeline, world.browser, policy=policy)

    # A browsing session: mostly legitimate pages, a few phish lures,
    # and some revisits (cache hits).
    rng = np.random.default_rng(5)
    legit = list(world.dataset("english"))
    phish = list(world.dataset("phishTest"))
    session = []
    for _ in range(40):
        if rng.random() < 0.15:
            session.append(phish[int(rng.integers(len(phish)))].url)
        else:
            session.append(legit[int(rng.integers(len(legit)))].url)
    session += session[:8]  # revisits

    print(f"\nBrowsing {len(session)} pages...\n")
    icons = {Action.ALLOW: "   ", Action.WARN: "⚠  ", Action.BLOCK: "⛔ "}
    for url in session:
        result = addon.navigate(url)
        if result.action is not Action.ALLOW:
            target = result.verdict.top_target if result.verdict else None
            print(f"{icons[result.action]}{result.action.value.upper():5s} "
                  f"{url[:58]:58s} target={target or '-'}")
            if result.action is Action.WARN and rng.random() < 0.3:
                addon.proceed_anyway(url)   # a risk-taking user
                print(f"   user clicked through the warning")

    stats = addon.stats
    print(f"\nSession statistics:")
    print(f"  navigations:        {stats.navigations}")
    print(f"  pages analysed:     {stats.analyses} "
          f"(cache hit rate {addon.cache.hit_rate:.0%})")
    print(f"  warnings shown:     {stats.warnings}")
    print(f"  navigations blocked:{stats.blocks:3d}")
    print(f"  median analysis:    {stats.median_analysis_ms:.1f} ms "
          f"(paper: 891 ms median, pre-2016 hardware)")


if __name__ == "__main__":
    main()
