#!/usr/bin/env python
"""Scalability study: small training set, growing test sets (Fig. 6).

The paper's deployability argument: a model learned from a few thousand
labeled pages keeps (even improves) its precision/recall as the test
stream grows by an order of magnitude.  This example trains once and
evaluates on progressively larger test samples.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro import CorpusConfig, PhishingDetector, build_world
from repro.core import FeatureExtractor
from repro.ml import binary_metrics


def main():
    print("Building a world with a large English test pool...")
    config = CorpusConfig(
        leg_train=350, phish_train=100, phish_test=120, phish_brand=20,
        english_test=3000, other_language_test=100,
    )
    world = build_world(config)

    extractor = FeatureExtractor(alexa=world.alexa)
    detector = PhishingDetector(extractor, n_estimators=100)
    train = world.dataset("legTrain") + world.dataset("phishTrain")
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    print(f"Trained once on {len(train)} pages.")

    legit = world.dataset("english")
    phish = world.dataset("phishTest")
    print("Extracting features for the full test pool...")
    legit_scores = detector.predict_proba(
        extractor.extract_many(page.snapshot for page in legit)
    )
    phish_scores = detector.predict_proba(
        extractor.extract_many(page.snapshot for page in phish)
    )

    rng = np.random.default_rng(7)
    legit_order = rng.permutation(len(legit_scores))
    phish_order = rng.permutation(len(phish_scores))

    print(f"\n{'test size':>10s} {'precision':>10s} {'recall':>8s} "
          f"{'fp rate':>9s}")
    steps = 6
    for step in range(1, steps + 1):
        n_legit = len(legit_scores) * step // steps
        n_phish = max(1, len(phish_scores) * step // steps)
        scores = np.concatenate([
            legit_scores[legit_order[:n_legit]],
            phish_scores[phish_order[:n_phish]],
        ])
        y = np.concatenate([np.zeros(n_legit, int), np.ones(n_phish, int)])
        metrics = binary_metrics(y, (scores >= detector.threshold).astype(int))
        print(f"{n_legit + n_phish:>10d} {metrics.precision:>10.3f} "
              f"{metrics.recall:>8.3f} {metrics.fpr:>9.4f}")

    print("\nErrors grow slower than the stream: precision/recall hold as"
          "\nthe test set scales — the Fig. 6 shape.")


if __name__ == "__main__":
    main()
