#!/usr/bin/env python
"""Shipping a model to clients: persistence + threshold calibration.

The deployment story of the paper's client-side add-on: train centrally
on a small labeled corpus, pick the discrimination threshold against an
explicit false-positive budget on held-out validation data, serialise
the model to JSON, and load it on the "client" — verifying the loaded
model is bit-identical in behaviour.

Run:  python examples/model_shipping.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CorpusConfig, PhishingDetector, build_world
from repro.core import FeatureExtractor
from repro.ml import binary_metrics
from repro.ml.calibration import (
    expected_calibration_error,
    threshold_for_fpr,
)


def main():
    print("Building world and training...")
    world = build_world(CorpusConfig(
        leg_train=400, phish_train=110, phish_test=80, phish_brand=20,
        english_test=1200, other_language_test=100,
    ))
    extractor = FeatureExtractor(alexa=world.alexa)
    detector = PhishingDetector(extractor, n_estimators=100)

    train = world.dataset("legTrain") + world.dataset("phishTrain")
    X = extractor.extract_many(page.snapshot for page in train)
    y = train.labels()

    # Hold out a validation slice for threshold calibration.
    rng = np.random.default_rng(0)
    order = rng.permutation(len(y))
    validation_size = len(y) // 4
    validation_idx, train_idx = order[:validation_size], order[validation_size:]
    detector.fit(X[train_idx], y[train_idx])

    validation_scores = detector.predict_proba(X[validation_idx])
    validation_y = y[validation_idx]
    ece = expected_calibration_error(validation_y, validation_scores)
    print(f"expected calibration error on validation: {ece:.3f}")

    for budget in (0.01, 0.005, 0.001):
        threshold = threshold_for_fpr(validation_y, validation_scores, budget)
        print(f"  FPR budget {budget:<6}: threshold {threshold:.3f}")

    chosen = threshold_for_fpr(validation_y, validation_scores, 0.005)
    detector.threshold = max(chosen, 0.5)
    print(f"\nshipping with threshold {detector.threshold:.3f}")

    # ---- serialise and reload (the 'client' side) ----------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "detector.json"
        detector.save(path)
        size_kb = path.stat().st_size / 1024
        print(f"model file: {size_kb:.0f} KiB of JSON")

        client = PhishingDetector.load(path, extractor=extractor)

        test = world.dataset("english") + world.dataset("phishTest")
        X_test = extractor.extract_many(page.snapshot for page in test)
        server_scores = detector.predict_proba(X_test)
        client_scores = client.predict_proba(X_test)
        assert np.array_equal(server_scores, client_scores)
        print("loaded model is behaviourally identical: OK")

        metrics = binary_metrics(
            test.labels(),
            (client_scores >= client.threshold).astype(int),
        )
        print(f"\nclient-side test metrics: precision={metrics.precision:.3f}"
              f" recall={metrics.recall:.3f} fpr={metrics.fpr:.4f}")


if __name__ == "__main__":
    main()
