#!/usr/bin/env python
"""Target identification: name the brand a phish impersonates.

Walks Section V of the paper on concrete pages: keyterm extraction
(boosted prominent / prominent / OCR prominent terms), the five-step
search-engine process, and top-k target ranking — then scores the whole
phishBrand-style dataset.

Run:  python examples/target_identification.py
"""

from collections import Counter

from repro import CorpusConfig, TargetIdentifier, build_world
from repro.core.datasources import DataSources
from repro.core.keyterms import KeytermExtractor
from repro.web.ocr import SimulatedOcr


def main():
    print("Building a world with a phishBrand-style dataset...")
    config = CorpusConfig(
        leg_train=200, phish_train=60, phish_test=60, phish_brand=120,
        english_test=400, other_language_test=100,
    )
    world = build_world(config)
    ocr = SimulatedOcr(error_rate=0.02)
    identifier = TargetIdentifier(world.search, ocr=ocr)

    # ---- anatomy of one identification -------------------------------
    page = next(
        page for page in world.dataset("phishBrand") if page.target_mld
    )
    print(f"\nSuspected phish: {page.url}")
    print(f"  true target: {page.target_mld}")

    sources = DataSources(page.snapshot, ocr=ocr)
    keyterms = KeytermExtractor(ocr=ocr).extract(sources)
    print(f"  boosted prominent terms: {keyterms.boosted_prominent}")
    print(f"  prominent terms:         {keyterms.prominent}")
    print(f"  ocr prominent terms:     {keyterms.ocr_prominent}")

    result = identifier.identify(page.snapshot)
    print(f"  verdict: {result.verdict} (decided at step {result.step})")
    print(f"  ranked candidate targets: {result.targets}")

    # ---- dataset-level evaluation (Table IX) --------------------------
    print("\nScoring the full phishBrand dataset...")
    outcomes = Counter()
    total = known = 0
    for page in world.dataset("phishBrand"):
        total += 1
        if page.target_mld is None:
            outcomes["unknown target"] += 1
            continue
        known += 1
        result = identifier.identify(page.snapshot)
        if result.target_in_top(page.target_mld, 1):
            outcomes["top-1 hit"] += 1
        elif result.target_in_top(page.target_mld, 3):
            outcomes["top-3 hit"] += 1
        elif result.verdict == "legitimate":
            outcomes["wrongly confirmed legitimate"] += 1
        else:
            outcomes["missed"] += 1

    for outcome, count in outcomes.most_common():
        print(f"  {outcome:30s} {count:4d}")
    top1 = outcomes["top-1 hit"]
    top3 = top1 + outcomes["top-3 hit"]
    print(f"\n  top-1 success rate: {top1 / total:.1%}"
          f"   top-3 success rate: {top3 / total:.1%}"
          f"   (paper: 90.5% / 97.3%)")


if __name__ == "__main__":
    main()
