#!/usr/bin/env python
"""Adaptive attackers: evasion techniques vs the trained detector.

Section VII-C of the paper argues the feature set is resilient to
adaptive attacks: each evasion trick suppresses *some* features, but the
remaining groups still give the phish away — and stacking tricks
destroys the phish's believability.  This example launches fresh
campaigns using each technique against an already-trained detector.

Run:  python examples/adaptive_attacker.py
"""

import numpy as np

from repro import CorpusConfig, PhishingDetector, build_world
from repro.core import FeatureExtractor
from repro.corpus.phishing import EvasionProfile, PhishingSiteGenerator


def main():
    print("Building world and training the detector once...")
    config = CorpusConfig(
        leg_train=300, phish_train=90, phish_test=60, phish_brand=20,
        english_test=600, other_language_test=100,
    )
    world = build_world(config)
    extractor = FeatureExtractor(alexa=world.alexa)
    detector = PhishingDetector(extractor, n_estimators=100)
    train = world.dataset("legTrain") + world.dataset("phishTrain")
    detector.fit_snapshots([page.snapshot for page in train], train.labels())

    campaigns = {
        "no evasion": EvasionProfile.none(),
        "minimal text": EvasionProfile(minimal_text=True),
        "no links to target": EvasionProfile(no_external_links=True),
        "no target resources": EvasionProfile(no_external_resources=True),
        "image-based page": EvasionProfile(image_based=True),
        "misspelled terms": EvasionProfile(misspell_terms=True),
        "short URLs": EvasionProfile(short_url=True),
        "ALL tricks at once": EvasionProfile.all_tricks(),
    }

    print(f"\n{'campaign':24s} {'detected':>9s} {'mean confidence':>16s}")
    rng = np.random.default_rng(1234)
    generator = PhishingSiteGenerator(world.web, rng, world.brands)
    for name, profile in campaigns.items():
        snapshots = []
        for _ in range(40):
            phish = generator.generate(evasion=profile)
            snapshots.append(world.browser.load(phish.starting_url))
        X = extractor.extract_many(snapshots)
        scores = detector.predict_proba(X)
        detected = float((scores >= detector.threshold).mean())
        print(f"{name:24s} {detected:9.1%} {scores.mean():16.3f}")

    print(
        "\nSingle techniques barely move detection; even the all-tricks"
        "\ncampaign remains detectable — and such a page (no text, no"
        "\nlogos, no links) would hardly fool a victim anyway, which is"
        "\nthe paper's point about the cost of evasion."
    )

    print("\nAnd the IP-URL corner (Section VII-B):")
    snapshots = []
    for _ in range(30):
        phish = generator.generate(hosting="ip")
        snapshots.append(world.browser.load(phish.starting_url))
    scores = detector.predict_proba(extractor.extract_many(snapshots))
    print(f"  IP-hosted phish detected: "
          f"{float((scores >= detector.threshold).mean()):.1%}")


if __name__ == "__main__":
    main()
