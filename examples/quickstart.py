#!/usr/bin/env python
"""Quickstart: train the detector, classify pages, identify targets.

This walks the full "Know Your Phish" pipeline end to end:

1. build a synthetic world (legitimate web + phishing campaigns);
2. extract the 212 features and train the Gradient Boosting detector on
   the small training sets (legTrain + phishTrain);
3. classify held-out pages at the paper's 0.7 threshold;
4. run target identification on the pages flagged as phishing.

Run:  python examples/quickstart.py
"""

from repro import (
    CorpusConfig,
    KnowYourPhish,
    PhishingDetector,
    TargetIdentifier,
    build_world,
)
from repro.core import FeatureExtractor
from repro.ml import binary_metrics
from repro.web.ocr import SimulatedOcr


def main():
    print("Building the synthetic world (web, brands, campaigns)...")
    config = CorpusConfig(
        leg_train=300, phish_train=90, phish_test=90, phish_brand=40,
        english_test=1000, other_language_test=150,
    )
    world = build_world(config)
    print(f"  hosted pages: {len(world.web)}, brands: {len(world.brands)}")

    print("\nTraining the phishing detector (212 features, GBM)...")
    extractor = FeatureExtractor(alexa=world.alexa)
    detector = PhishingDetector(extractor, threshold=0.7, n_estimators=100)
    train = world.dataset("legTrain") + world.dataset("phishTrain")
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    print(f"  trained on {len(train)} pages "
          f"({int(train.labels().sum())} phish)")

    print("\nEvaluating on held-out pages (scenario2: newer data)...")
    test = world.dataset("english") + world.dataset("phishTest")
    X = extractor.extract_many(page.snapshot for page in test)
    metrics = binary_metrics(test.labels(), detector.predict(X))
    print(f"  precision={metrics.precision:.3f}  recall={metrics.recall:.3f}"
          f"  fpr={metrics.fpr:.4f}")

    print("\nFull pipeline on a few flagged pages (detector -> target id):")
    identifier = TargetIdentifier(world.search, ocr=SimulatedOcr())
    pipeline = KnowYourPhish(detector, identifier)
    shown = 0
    for page in world.dataset("phishTest"):
        verdict = pipeline.analyze(page.snapshot)
        if verdict.verdict == "legitimate":
            continue
        print(f"  {page.url[:64]:64s} -> {verdict.verdict:10s} "
              f"target={verdict.top_target or '-':14s} "
              f"(truth: {page.target_mld or 'unknown'})")
        shown += 1
        if shown >= 8:
            break

    print("\nAnd a legitimate page for contrast:")
    page = world.dataset("english")[0]
    verdict = pipeline.analyze(page.snapshot)
    print(f"  {page.url[:64]:64s} -> {verdict.verdict} "
          f"(confidence {verdict.confidence:.2f})")


if __name__ == "__main__":
    main()
