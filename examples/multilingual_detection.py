#!/usr/bin/env python
"""Language independence: one model, six languages.

The paper's headline property is that the feature set never looks at
*which* terms a page uses — only at how consistently terms are used
across page locations.  A single model trained on English data therefore
transfers to French, German, Italian, Portuguese and Spanish webpages
without retraining (Table VI).

This example trains once on the English training sets and reports
precision / recall / FPR against each language's legitimate test set,
contrasting it with the bag-of-words baseline whose term features are
inherently language-bound.

Run:  python examples/multilingual_detection.py
"""

import numpy as np

from repro import CorpusConfig, PhishingDetector, build_world
from repro.baselines import BagOfWordsClassifier
from repro.core import FeatureExtractor
from repro.corpus.wordlists import LANGUAGES
from repro.ml import binary_metrics


def main():
    print("Building a multilingual world...")
    config = CorpusConfig(
        leg_train=300, phish_train=90, phish_test=90, phish_brand=20,
        english_test=600, other_language_test=300,
    )
    world = build_world(config)

    extractor = FeatureExtractor(alexa=world.alexa)
    train = world.dataset("legTrain") + world.dataset("phishTrain")
    train_snapshots = [page.snapshot for page in train]

    print("Training our detector (term-usage consistency features)...")
    detector = PhishingDetector(extractor, n_estimators=100)
    detector.fit_snapshots(train_snapshots, train.labels())

    print("Training the bag-of-words baseline (static term features)...")
    baseline = BagOfWordsClassifier(n_estimators=100)
    baseline.fit_snapshots(train_snapshots, train.labels())

    phish = world.dataset("phishTest")
    phish_snapshots = [page.snapshot for page in phish]
    phish_X = extractor.extract_many(phish_snapshots)

    print(f"\n{'language':12s} {'ours: prec/rec/fpr':>24s} "
          f"{'bag-of-words: prec/rec/fpr':>30s}")
    for language in LANGUAGES:
        legit = world.dataset(language)
        legit_snapshots = [page.snapshot for page in legit]
        y = np.concatenate([legit.labels(), phish.labels()])

        ours_pred = np.concatenate([
            detector.predict(extractor.extract_many(legit_snapshots)),
            detector.predict(phish_X),
        ])
        ours = binary_metrics(y, ours_pred)

        bow_pred = np.concatenate([
            baseline.predict_snapshots(legit_snapshots),
            baseline.predict_snapshots(phish_snapshots),
        ])
        bow = binary_metrics(y, bow_pred)

        print(f"{language:12s} "
              f"{ours.precision:8.3f}/{ours.recall:.3f}/{ours.fpr:.4f} "
              f"{bow.precision:14.3f}/{bow.recall:.3f}/{bow.fpr:.4f}")

    print("\nSame recall column for ours across languages = the same model"
          "\nclassifies the shared phishing set identically; what varies is"
          "\nonly how clean each language's legitimate set is.")


if __name__ == "__main__":
    main()
