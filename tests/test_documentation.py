"""Documentation quality gates.

The reproduction's deliverables include doc comments on every public
item and the README/DESIGN/EXPERIMENTS documents; these tests keep that
true as the code evolves.
"""

import ast
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
SRC = REPO / "src" / "repro"


def _public_defs(tree: ast.Module):
    """Top-level public classes/functions and public methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if not child.name.startswith("_"):
                            yield child


class TestDocstrings:
    @pytest.mark.parametrize(
        "path", sorted(SRC.rglob("*.py")), ids=lambda p: str(p.relative_to(SRC))
    )
    def test_module_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path} lacks a module docstring"

    @pytest.mark.parametrize(
        "path", sorted(SRC.rglob("*.py")), ids=lambda p: str(p.relative_to(SRC))
    )
    def test_public_items_have_docstrings(self, path):
        tree = ast.parse(path.read_text())
        undocumented = [
            node.name for node in _public_defs(tree)
            if not ast.get_docstring(node)
        ]
        assert not undocumented, (
            f"{path.relative_to(REPO)}: missing docstrings on {undocumented}"
        )


class TestProjectDocuments:
    def test_readme_sections(self):
        readme = (REPO / "README.md").read_text()
        for needle in ("Install", "Quickstart", "Architecture",
                       "Marchal", "ICDCS"):
            assert needle in readme

    def test_design_covers_every_artefact(self):
        design = (REPO / "DESIGN.md").read_text()
        for artefact in ("table5", "table6", "table7", "fig3", "fig4",
                         "fig5", "fig6", "table8", "table9", "table10",
                         "sec6d"):
            assert artefact in design, artefact
        assert "Substitutions" in design or "substitution" in design.lower()

    def test_experiments_covers_every_artefact(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for needle in ("Table V", "Table VI", "Table VII", "Fig. 3",
                       "Fig. 4", "Fig. 5", "Fig. 6", "Table VIII",
                       "Table IX", "Table X", "VI-D", "VII-B", "VII-C"):
            assert needle in experiments, needle

    def test_every_benchmark_has_design_entry(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("test_*.py")):
            assert bench.name in design, (
                f"{bench.name} missing from DESIGN.md experiment index"
            )

    def test_examples_referenced_in_readme(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, (
                f"{example.name} missing from README examples table"
            )
