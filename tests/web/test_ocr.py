"""Tests for the simulated OCR engine."""

import pytest

from repro.web.ocr import SimulatedOcr
from repro.web.page import Screenshot


class TestSimulatedOcr:
    def test_perfect_ocr(self):
        shot = Screenshot(rendered_text="PayPal login", image_texts=("logo",))
        assert SimulatedOcr(error_rate=0.0).read(shot) == "PayPal login\nlogo"

    def test_empty_screenshot(self):
        assert SimulatedOcr().read(Screenshot()) == ""

    def test_deterministic(self):
        shot = Screenshot(rendered_text="the quick brown fox " * 10)
        ocr = SimulatedOcr(error_rate=0.2, seed=3)
        assert ocr.read(shot) == ocr.read(shot)

    def test_noise_corrupts_some_characters(self):
        text = "abcdefghij" * 50
        shot = Screenshot(rendered_text=text)
        noisy = SimulatedOcr(error_rate=0.3, seed=1).read(shot)
        assert noisy != text

    def test_low_error_rate_mostly_preserves(self):
        text = "paypal secure login " * 20
        noisy = SimulatedOcr(error_rate=0.02, seed=0).read(
            Screenshot(rendered_text=text)
        )
        # The overwhelming majority of characters survive.
        assert abs(len(noisy) - len(text)) < len(text) * 0.05

    def test_different_seeds_differ(self):
        shot = Screenshot(rendered_text="abcdefghij" * 30)
        first = SimulatedOcr(error_rate=0.3, seed=1).read(shot)
        second = SimulatedOcr(error_rate=0.3, seed=2).read(shot)
        assert first != second

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            SimulatedOcr(error_rate=1.5)
        with pytest.raises(ValueError):
            SimulatedOcr(drop_rate=-0.1)

    def test_image_texts_recoverable(self):
        # Image-based phishing: text only in images, OCR still sees it.
        shot = Screenshot(rendered_text="", image_texts=("verify paypal",))
        assert "paypal" in SimulatedOcr(error_rate=0.0).read(shot)
