"""Tests for the simulated browser/scraper."""

import pytest

from repro.web.browser import Browser, PageNotFound, RedirectLoopError
from repro.web.hosting import SyntheticWeb
from repro.web.page import Screenshot


@pytest.fixture()
def web():
    return SyntheticWeb()


class TestLoad:
    def test_direct_page(self, web):
        web.host("http://a.com/", "<title>A</title>",
                 Screenshot(rendered_text="A"))
        snapshot = Browser(web).load("http://a.com/")
        assert snapshot.starting_url == "http://a.com/"
        assert snapshot.landing_url == "http://a.com/"
        assert snapshot.redirection_chain == ["http://a.com/"]
        assert snapshot.title == "A"
        assert snapshot.screenshot.rendered_text == "A"

    def test_single_redirect(self, web):
        web.redirect("http://short.com/x", "http://a.com/")
        web.host("http://a.com/", "<title>A</title>")
        snapshot = Browser(web).load("http://short.com/x")
        assert snapshot.starting_url == "http://short.com/x"
        assert snapshot.landing_url == "http://a.com/"
        assert snapshot.redirection_chain == ["http://short.com/x", "http://a.com/"]

    def test_multi_hop_chain(self, web):
        web.redirect("http://1.com/", "http://2.com/")
        web.redirect("http://2.com/", "http://3.com/")
        web.host("http://3.com/", "x")
        snapshot = Browser(web).load("http://1.com/")
        assert len(snapshot.redirection_chain) == 3

    def test_not_found(self, web):
        with pytest.raises(PageNotFound):
            Browser(web).load("http://missing.com/")

    def test_broken_redirect_target(self, web):
        web.redirect("http://a.com/", "http://gone.com/")
        with pytest.raises(PageNotFound):
            Browser(web).load("http://a.com/")

    def test_redirect_loop(self, web):
        web.redirect("http://a.com/", "http://b.com/")
        web.redirect("http://b.com/", "http://a.com/")
        with pytest.raises(RedirectLoopError):
            Browser(web).load("http://a.com/")

    def test_try_load_swallows_errors(self, web):
        assert Browser(web).try_load("http://missing.com/") is None

    def test_try_load_success(self, web):
        web.host("http://a.com/", "x")
        assert Browser(web).try_load("http://a.com/") is not None


class TestLoggedLinks:
    def test_resources_logged(self, web):
        html = (
            '<img src="http://a.com/logo.png">'
            '<script src="http://cdn.com/lib.js"></script>'
        )
        web.host("http://a.com/", html)
        snapshot = Browser(web).load("http://a.com/")
        assert "http://a.com/logo.png" in snapshot.logged_links
        assert "http://cdn.com/lib.js" in snapshot.logged_links

    def test_iframe_contents_logged_too(self, web):
        web.host("http://framed.com/inner",
                 '<img src="http://framed.com/deep.png">')
        web.host(
            "http://a.com/",
            '<iframe src="http://framed.com/inner"></iframe>',
        )
        snapshot = Browser(web).load("http://a.com/")
        assert "http://framed.com/inner" in snapshot.logged_links
        assert "http://framed.com/deep.png" in snapshot.logged_links

    def test_unresolvable_iframe_skipped(self, web):
        web.host("http://a.com/", '<iframe src="http://gone.com/f"></iframe>')
        snapshot = Browser(web).load("http://a.com/")
        assert "http://gone.com/f" in snapshot.logged_links


class TestErrorPaths:
    """Boundary behaviour of the navigation failure modes."""

    def _chain(self, web, hops):
        for i in range(hops):
            web.redirect(f"http://r{i}.com/", f"http://r{i + 1}.com/")
        web.host(f"http://r{hops}.com/", "<title>end</title>")

    def test_hop_limit_allows_exactly_max_redirects(self, web):
        self._chain(web, 10)
        snapshot = Browser(web, max_redirects=10).load("http://r0.com/")
        assert snapshot.landing_url == "http://r10.com/"
        assert len(snapshot.redirection_chain) == 11

    def test_hop_limit_rejects_one_over(self, web):
        self._chain(web, 11)
        with pytest.raises(RedirectLoopError) as excinfo:
            Browser(web, max_redirects=10).load("http://r0.com/")
        assert "http://r0.com/" in str(excinfo.value)

    def test_missing_page_mid_chain_names_missing_hop(self, web):
        web.redirect("http://1.com/", "http://2.com/")
        web.redirect("http://2.com/", "http://vanished.com/")
        with pytest.raises(PageNotFound) as excinfo:
            Browser(web).load("http://1.com/")
        assert "vanished.com" in str(excinfo.value)

    def test_chain_tail_not_duplicated(self, web):
        web.redirect("http://short.com/x", "http://a.com/")
        web.host("http://a.com/", "x")
        snapshot = Browser(web).load("http://short.com/x")
        assert snapshot.redirection_chain == [
            "http://short.com/x", "http://a.com/",
        ]
        assert len(snapshot.redirection_chain) == \
            len(set(snapshot.redirection_chain))

    def test_chain_appends_hosted_url_when_target_spelled_differently(
        self, web
    ):
        # The redirect names the page without the trailing slash; URL
        # normalisation still resolves it, and the chain ends with the
        # hosted spelling so landing_url is always chain[-1].
        web.redirect("http://short.com/x", "http://a.com")
        web.host("http://a.com/", "x")
        snapshot = Browser(web).load("http://short.com/x")
        assert snapshot.redirection_chain[-1] == "http://a.com/"
        assert snapshot.landing_url == snapshot.redirection_chain[-1]
