"""Tests for the simulated search engine."""

import pytest

from repro.web.search import SearchEngine


@pytest.fixture()
def engine():
    engine = SearchEngine()
    engine.index_page(
        "https://www.paypal.com/",
        "paypal payment money transfer account secure online payments",
    )
    engine.index_page(
        "https://www.bankofamerica.com/",
        "bank america banking account credit checking savings",
    )
    engine.index_page(
        "https://www.gardenshop.co.uk/",
        "garden plants flowers shop delivery seeds",
    )
    return engine


class TestIndexing:
    def test_len(self, engine):
        assert len(engine) == 3

    def test_ip_urls_not_indexed(self):
        engine = SearchEngine()
        engine.index_page("http://10.0.0.1/", "some content here")
        assert len(engine) == 0

    def test_unparsable_not_indexed(self):
        engine = SearchEngine()
        engine.index_page("not a url at all", "content")
        assert len(engine) == 0

    def test_empty_content_page_skipped(self):
        engine = SearchEngine()
        engine.index_page("https://x.com/", "")
        # Domain terms still indexed (the mld is content too).
        assert len(engine) == 1


class TestQuery:
    def test_relevant_domain_first(self, engine):
        results = engine.query(["paypal", "payment"])
        assert results[0].rdn == "paypal.com"

    def test_mld_query_hits_domain(self, engine):
        # Whole-mld token is boosted: querying the domain name finds it.
        results = engine.query(["bankofamerica"])
        assert results and results[0].rdn == "bankofamerica.com"

    def test_unknown_terms_empty(self, engine):
        assert engine.query(["zzzqqq"]) == []

    def test_empty_query(self, engine):
        assert engine.query([]) == []

    def test_top_k_limit(self, engine):
        results = engine.query(["account"], top_k=1)
        assert len(results) == 1

    def test_rdn_dedup(self):
        engine = SearchEngine()
        engine.index_page("https://www.shop.com/a", "widget store prices")
        engine.index_page("https://www.shop.com/b", "widget store deals")
        results = engine.query(["widget", "store"])
        assert len(results) == 1

    def test_result_fields(self, engine):
        result = engine.query(["garden"])[0]
        assert result.rdn == "gardenshop.co.uk"
        assert result.mld == "gardenshop"
        assert result.score > 0

    def test_result_rdns_and_mlds(self, engine):
        assert "paypal.com" in engine.result_rdns(["paypal"])
        assert "paypal" in engine.result_mlds(["paypal"])

    def test_case_insensitive_terms(self, engine):
        assert engine.query(["PayPal"])[0].rdn == "paypal.com"

    def test_query_on_empty_index(self):
        assert SearchEngine().query(["anything"]) == []
