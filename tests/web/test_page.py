"""Tests for page snapshots and screenshots."""

from repro.web.page import PageSnapshot, Screenshot


class TestScreenshot:
    def test_full_text_combines(self):
        shot = Screenshot(rendered_text="visible", image_texts=("in image",))
        assert "visible" in shot.full_text
        assert "in image" in shot.full_text

    def test_empty(self):
        assert Screenshot().full_text == ""

    def test_roundtrip(self):
        shot = Screenshot(rendered_text="a", image_texts=("b", "c"))
        assert Screenshot.from_dict(shot.to_dict()) == shot


class TestPageSnapshot:
    def test_default_chain_no_redirect(self):
        snapshot = PageSnapshot(
            starting_url="http://a.com/", landing_url="http://a.com/"
        )
        assert snapshot.redirection_chain == ["http://a.com/"]

    def test_default_chain_with_redirect(self):
        snapshot = PageSnapshot(
            starting_url="http://a.com/", landing_url="http://b.com/"
        )
        assert snapshot.redirection_chain == ["http://a.com/", "http://b.com/"]

    def test_explicit_chain_preserved(self):
        chain = ["http://a.com/", "http://mid.com/", "http://b.com/"]
        snapshot = PageSnapshot(
            starting_url="http://a.com/", landing_url="http://b.com/",
            redirection_chain=list(chain),
        )
        assert snapshot.redirection_chain == chain

    def test_elements_parsed_and_cached(self):
        html = "<title>T</title><body><a href='/x'>l</a>text</body>"
        snapshot = PageSnapshot(
            starting_url="http://a.com/", landing_url="http://a.com/",
            html=html,
        )
        assert snapshot.title == "T"
        assert snapshot.elements is snapshot.elements  # cached object
        assert snapshot.href_links == ["http://a.com/x"]
        assert "text" in snapshot.text

    def test_copyright_property(self):
        snapshot = PageSnapshot(
            starting_url="http://a.com/", landing_url="http://a.com/",
            html="<body><p>© 2015 Acme</p></body>",
        )
        assert "Acme" in snapshot.copyright_notice

    def test_serialisation_roundtrip(self):
        snapshot = PageSnapshot(
            starting_url="http://a.com/start",
            landing_url="http://b.com/land",
            redirection_chain=["http://a.com/start", "http://b.com/land"],
            logged_links=["http://cdn.com/x.js"],
            html="<title>t</title>",
            screenshot=Screenshot(rendered_text="t"),
        )
        rebuilt = PageSnapshot.from_dict(snapshot.to_dict())
        assert rebuilt.starting_url == snapshot.starting_url
        assert rebuilt.landing_url == snapshot.landing_url
        assert rebuilt.logged_links == snapshot.logged_links
        assert rebuilt.screenshot == snapshot.screenshot
        assert rebuilt.title == "t"
