"""Tests for the synthetic web registry."""

import pytest

from repro.web.hosting import HostedPage, SyntheticWeb, normalize_url


class TestNormalize:
    def test_fragment_stripped(self):
        assert normalize_url("http://a.com/x#frag") == "http://a.com/x"

    def test_root_slash_dropped(self):
        assert normalize_url("http://a.com/") == "http://a.com"

    def test_deep_path_slash_kept(self):
        assert normalize_url("http://a.com/x/") == "http://a.com/x/"


class TestSyntheticWeb:
    def test_host_and_get(self):
        web = SyntheticWeb()
        web.host("http://a.com/", "<p>hi</p>")
        page = web.get("http://a.com/")
        assert page is not None
        assert page.html == "<p>hi</p>"
        assert not page.is_redirect

    def test_get_normalised_variants(self):
        web = SyntheticWeb()
        web.host("http://a.com/", "x")
        assert web.get("http://a.com") is not None
        assert web.get("http://a.com/#top") is not None

    def test_missing_returns_none(self):
        assert SyntheticWeb().get("http://nowhere.com/") is None

    def test_redirect(self):
        web = SyntheticWeb()
        web.redirect("http://short.com/a", "http://long.com/b")
        page = web.get("http://short.com/a")
        assert page.is_redirect
        assert page.redirect_to == "http://long.com/b"

    def test_no_clobber_by_default(self):
        web = SyntheticWeb()
        web.host("http://a.com/", "first")
        with pytest.raises(ValueError):
            web.host("http://a.com/", "second")

    def test_overwrite_allowed_explicitly(self):
        web = SyntheticWeb()
        web.host("http://a.com/", "first")
        web.host("http://a.com/", "second", overwrite=True)
        assert web.get("http://a.com/").html == "second"

    def test_contains_and_len(self):
        web = SyntheticWeb()
        web.host("http://a.com/", "x")
        assert "http://a.com/" in web
        assert len(web) == 1

    def test_content_pages_excludes_redirects(self):
        web = SyntheticWeb()
        web.host("http://a.com/", "x")
        web.redirect("http://b.com/", "http://a.com/")
        assert [page.url for page in web.content_pages()] == ["http://a.com/"]

    def test_merge(self):
        first, second = SyntheticWeb(), SyntheticWeb()
        first.host("http://a.com/", "x")
        second.host("http://b.com/", "y")
        first.merge(second)
        assert len(first) == 2

    def test_hosted_page_dataclass(self):
        page = HostedPage(url="http://a.com/", redirect_to="http://b.com/")
        assert page.is_redirect
