"""Tests for the brand registry."""

import numpy as np
import pytest

from repro.corpus.brands import Brand, BrandRegistry, default_brands


class TestBrand:
    def test_rdn_and_homepage(self):
        brand = Brand("PayPal", "paypal", "com")
        assert brand.rdn == "paypal.com"
        assert brand.homepage == "https://www.paypal.com/"

    def test_name_words(self):
        brand = Brand("Bank of America", "bankofamerica")
        assert brand.name_words == ("bank", "america")

    def test_name_words_hyphenated(self):
        brand = Brand("Credit-Agricole", "credit-agricole", "fr")
        assert "credit" in brand.name_words
        assert "agricole" in brand.name_words


class TestDefaultBrands:
    def test_minimum_count(self):
        assert len(default_brands(126)) >= 126

    def test_custom_minimum(self):
        assert len(default_brands(150)) >= 150

    def test_rdns_unique(self):
        registry = default_brands(150)
        rdns = [brand.rdn for brand in registry]
        assert len(rdns) == len(set(rdns))

    def test_core_brands_present(self):
        registry = default_brands()
        assert registry.by_mld("paypal") is not None
        assert registry.by_mld("amazon") is not None

    def test_languages_covered(self):
        registry = default_brands()
        for language in ("english", "french", "german", "portuguese",
                         "spanish", "italian"):
            assert registry.by_language(language), language


class TestRegistry:
    def test_by_rdn(self):
        registry = default_brands()
        assert registry.by_rdn("paypal.com").name == "PayPal"
        assert registry.by_rdn("nope.example") is None

    def test_shared_mld_allowed(self):
        registry = BrandRegistry([
            Brand("Amazon", "amazon", "com"),
            Brand("Amazon UK", "amazon", "co.uk"),
        ])
        assert len(registry) == 2
        assert registry.by_mld("amazon").suffix == "com"

    def test_duplicate_rdn_rejected(self):
        with pytest.raises(ValueError):
            BrandRegistry([
                Brand("A", "same", "com"), Brand("B", "same", "com"),
            ])

    def test_sample_distinct_and_weighted(self):
        registry = default_brands()
        rng = np.random.default_rng(0)
        sampled = registry.sample(rng, 10)
        assert len({brand.rdn for brand in sampled}) == 10

    def test_sample_popularity_bias(self):
        registry = default_brands()
        rng = np.random.default_rng(0)
        draws = [registry.sample(rng, 1)[0].popularity for _ in range(300)]
        # Popular (tier-1) brands must be drawn far more often than tier-5.
        assert draws.count(1) > draws.count(5)

    def test_indexing(self):
        registry = default_brands()
        assert isinstance(registry[0], Brand)
