"""Tests for the PhishTank-style feed simulation."""

import pytest

from repro.corpus.feeds import FeedEntry, PhishFeed
from repro.web.browser import Browser
from repro.web.hosting import SyntheticWeb


@pytest.fixture()
def feed_setup():
    web = SyntheticWeb()
    web.host("http://phish1.com/x", "<body>phish</body>")
    web.host("http://phish2.com/x", "<body>phish</body>")
    web.host("http://legit.com/", "<body>legit</body>")
    web.host("http://parked.com/", "<body>parked</body>")
    feed = PhishFeed("test")
    feed.submit("http://phish1.com/x", hour=0)
    feed.submit("http://phish2.com/x", hour=2)
    feed.submit("http://dead.com/gone", hour=1)          # unavailable
    feed.submit("http://legit.com/", hour=3, status="legitimate")
    feed.submit("http://parked.com/", hour=4, status="parked")
    return web, feed


class TestFeed:
    def test_initial_count(self, feed_setup):
        _web, feed = feed_setup
        assert feed.initial_count == 5

    def test_chronological_iteration(self, feed_setup):
        _web, feed = feed_setup
        hours = [entry.submitted_hour for entry in feed]
        assert hours == sorted(hours)

    def test_clean_removes_junk(self, feed_setup):
        web, feed = feed_setup
        survivors = feed.clean(Browser(web))
        urls = [entry.url for entry in survivors]
        assert urls == ["http://phish1.com/x", "http://phish2.com/x"]

    def test_status_counts(self, feed_setup):
        _web, feed = feed_setup
        counts = feed.status_counts()
        assert counts["phish"] == 3  # dead.com was submitted as phish
        assert counts["legitimate"] == 1
        assert counts["parked"] == 1

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError):
            FeedEntry(url="http://x.com/", submitted_hour=0, status="weird")

    def test_submit_returns_entry(self):
        feed = PhishFeed("x")
        entry = feed.submit("http://a.com/", hour=1)
        assert entry.url == "http://a.com/"
        assert len(feed) == 1
