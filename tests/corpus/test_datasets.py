"""Tests for world/dataset construction (Table V shape)."""

import numpy as np
import pytest

from repro.corpus.datasets import CorpusConfig, Dataset, LabeledPage, build_world
from repro.corpus.wordlists import LANGUAGES
from repro.web.page import PageSnapshot


class TestWorldShape:
    def test_all_datasets_present(self, tiny_world):
        expected = {"legTrain", "english", "phishTrain", "phishTest",
                    "phishBrand"} | set(LANGUAGES)
        assert expected <= set(tiny_world.datasets)

    def test_dataset_sizes(self, tiny_world):
        config = tiny_world.config
        assert len(tiny_world.dataset("legTrain")) == config.leg_train
        assert len(tiny_world.dataset("english")) == config.english_test
        assert len(tiny_world.dataset("phishTrain")) == config.phish_train
        assert len(tiny_world.dataset("phishBrand")) == config.phish_brand

    def test_labels(self, tiny_world):
        assert tiny_world.dataset("legTrain").labels().sum() == 0
        phish = tiny_world.dataset("phishTest")
        assert phish.labels().sum() == len(phish)

    def test_initial_counts_exceed_clean(self, tiny_world):
        for name in ("phishTrain", "phishTest"):
            dataset = tiny_world.dataset(name)
            assert dataset.initial_count > len(dataset)

    def test_language_sets_language(self, tiny_world):
        for language in LANGUAGES:
            if language == "english":
                continue
            for page in tiny_world.dataset(language)[:10]:
                assert page.language == language

    def test_legtrain_is_cleaned(self, tiny_world):
        kinds = {page.kind for page in tiny_world.dataset("legTrain")}
        assert "parked" not in kinds and "minimal" not in kinds

    def test_unknown_dataset_raises(self, tiny_world):
        with pytest.raises(KeyError):
            tiny_world.dataset("nope")

    def test_phishbrand_has_targets(self, tiny_world):
        targets = [page.target_mld for page in tiny_world.dataset("phishBrand")]
        known = [target for target in targets if target]
        assert len(known) >= len(targets) - 3  # a few unknown-target pages

    def test_alexa_nonempty_and_brands_ranked(self, tiny_world):
        assert len(tiny_world.alexa) > 50
        assert tiny_world.alexa.is_ranked("paypal.com")

    def test_search_engine_indexed(self, tiny_world):
        assert len(tiny_world.search) > 100
        assert "paypal.com" in tiny_world.search.result_rdns(["paypal"])

    def test_test_phish_include_unseen_brands(self, tiny_world):
        train_targets = {
            page.target_mld for page in tiny_world.dataset("phishTrain")
        }
        test_targets = {
            page.target_mld for page in tiny_world.dataset("phishTest")
            if page.target_mld
        }
        assert test_targets - train_targets, \
            "test campaigns must hit brands unseen in training"

    def test_feeds_clean_to_dataset_urls(self, tiny_world):
        feed = tiny_world.feeds["phishTrain"]
        survivors = feed.clean(tiny_world.browser)
        dataset_urls = {page.url for page in tiny_world.dataset("phishTrain")}
        assert {entry.url for entry in survivors} == dataset_urls


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = CorpusConfig(
            leg_train=20, phish_train=10, phish_test=10, phish_brand=8,
            english_test=30, other_language_test=10, seed=99,
        )
        first = build_world(config)
        second = build_world(config)
        assert [p.url for p in first.dataset("english")] == \
            [p.url for p in second.dataset("english")]
        assert [p.url for p in first.dataset("phishTest")] == \
            [p.url for p in second.dataset("phishTest")]


class TestDatasetApi:
    def _tiny(self):
        snapshot = PageSnapshot(starting_url="http://a.com/",
                                landing_url="http://a.com/")
        return Dataset("x", [
            LabeledPage(snapshot=snapshot, label=0, language="english",
                        kind="business"),
            LabeledPage(snapshot=snapshot, label=1, language="english",
                        kind="random"),
        ])

    def test_len_iter_getitem(self):
        dataset = self._tiny()
        assert len(dataset) == 2
        assert dataset[0].label == 0
        assert [page.label for page in dataset] == [0, 1]

    def test_labels_vector(self):
        assert self._tiny().labels().tolist() == [0, 1]

    def test_subset(self):
        subset = self._tiny().subset([1])
        assert len(subset) == 1
        assert subset[0].label == 1

    def test_concatenation(self):
        combined = self._tiny() + self._tiny()
        assert len(combined) == 4

    def test_page_url_property(self):
        assert self._tiny()[0].url == "http://a.com/"


class TestPaperScale:
    def test_full_scale_sizes(self):
        config = CorpusConfig.paper_scale(1.0)
        assert config.leg_train == 4531
        assert config.phish_test == 1216
        assert config.english_test == 100_000

    def test_fractional_scale(self):
        config = CorpusConfig.paper_scale(0.1)
        assert config.leg_train == 453
        assert config.english_test == 10_000

    def test_floors_applied(self):
        config = CorpusConfig.paper_scale(0.001)
        assert config.phish_train >= 30
