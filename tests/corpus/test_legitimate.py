"""Tests for the legitimate-site generator."""

import numpy as np
import pytest

from repro.corpus.legitimate import (
    CLEANED_KIND_WEIGHTS,
    KIND_WEIGHTS,
    LegitimateSiteGenerator,
)
from repro.urls.parsing import parse_url


class TestGenerate:
    def test_site_is_loadable(self, site_generators):
        web, browser, legit, _phish = site_generators
        site = legit.generate()
        snapshot = browser.load(site.starting_url)
        assert snapshot.landing_url == site.landing_url

    def test_label_is_zero(self, site_generators):
        _web, _browser, legit, _phish = site_generators
        assert legit.generate().label == 0

    def test_mlds_unique_across_sites(self, site_generators):
        _web, _browser, legit, _phish = site_generators
        mlds = [legit.generate().mld for _ in range(40)]
        assert len(mlds) == len(set(mlds))

    def test_kind_forcing(self, site_generators):
        _web, _browser, legit, _phish = site_generators
        for kind in ("business", "blog", "shop", "portal", "parked", "minimal"):
            assert legit.generate(kind=kind).kind == kind

    def test_language_forcing(self, site_generators):
        _web, _browser, legit, _phish = site_generators
        site = legit.generate(language="german")
        assert site.language == "german"

    def test_name_terms_in_content(self, site_generators):
        # Term-usage consistency: the site's name terms appear in the page.
        _web, browser, legit, _phish = site_generators
        hits = 0
        for _ in range(10):
            site = legit.generate(kind="business")
            snapshot = browser.load(site.starting_url)
            content = (snapshot.title + " " + snapshot.text).lower()
            if any(term in content for term in site.name_terms):
                hits += 1
        assert hits >= 8

    def test_mostly_internal_links(self, site_generators):
        _web, browser, legit, _phish = site_generators
        internal = external = 0
        for _ in range(10):
            site = legit.generate(kind="business")
            snapshot = browser.load(site.starting_url)
            for link in snapshot.href_links:
                if parse_url(link).rdn == site.rdn:
                    internal += 1
                else:
                    external += 1
        assert internal > external

    def test_parked_site_shape(self, site_generators):
        _web, browser, legit, _phish = site_generators
        site = legit.generate(kind="parked")
        snapshot = browser.load(site.starting_url)
        assert "parked" in snapshot.title
        assert len(snapshot.text) < 200

    def test_minimal_site_shape(self, site_generators):
        _web, browser, legit, _phish = site_generators
        site = legit.generate(kind="minimal")
        snapshot = browser.load(site.starting_url)
        assert snapshot.title == ""

    def test_portal_has_password_field(self, site_generators):
        _web, browser, legit, _phish = site_generators
        site = legit.generate(kind="portal")
        snapshot = browser.load(site.starting_url)
        assert snapshot.elements.input_count >= 2

    def test_abbrev_mld_shorter_than_name(self, site_generators):
        _web, _browser, legit, _phish = site_generators
        site = legit.generate(kind="abbrev")
        assert len(site.mld) <= 4


class TestBrandSites:
    def test_brand_homepage_and_login_hosted(self, site_generators):
        web, browser, legit, _phish = site_generators
        from repro.corpus.brands import default_brands
        brand = default_brands().by_mld("netflix")
        site = legit.generate_brand_site(brand)
        home = browser.load(site.starting_url)
        assert brand.name in home.title
        login = browser.load(f"https://www.{brand.rdn}/signin")
        assert login.elements.input_count >= 2

    def test_bare_domain_redirects(self, site_generators):
        web, browser, legit, _phish = site_generators
        from repro.corpus.brands import default_brands
        brand = default_brands().by_mld("spotify")
        legit.generate_brand_site(brand)
        snapshot = browser.load(f"http://{brand.rdn}/")
        assert snapshot.landing_url == f"https://www.{brand.rdn}/"
        assert len(snapshot.redirection_chain) == 2


class TestKindWeights:
    def test_weights_cover_all_kinds(self):
        assert set(KIND_WEIGHTS) >= {
            "business", "blog", "shop", "portal", "parked", "minimal"
        }

    def test_cleaned_weights_drop_junk(self):
        assert "parked" not in CLEANED_KIND_WEIGHTS
        assert "minimal" not in CLEANED_KIND_WEIGHTS

    def test_generate_respects_cleaned_weights(self):
        from repro.web.hosting import SyntheticWeb
        web = SyntheticWeb()
        generator = LegitimateSiteGenerator(web, np.random.default_rng(0))
        kinds = {
            generator.generate(kind_weights=CLEANED_KIND_WEIGHTS).kind
            for _ in range(60)
        }
        assert "parked" not in kinds and "minimal" not in kinds
