"""Tests for the phishing-site generator (phisher limitations model)."""

import pytest

from repro.corpus.phishing import EvasionProfile
from repro.urls.parsing import parse_url


class TestPhisherConstraints:
    def test_cannot_use_target_rdn(self, site_generators):
        """The core constraint: the phish's RDN is never the target's."""
        _web, _browser, _legit, phish_gen = site_generators
        for _ in range(25):
            phish = phish_gen.generate()
            if phish.hosting == "compromised":
                continue
            assert phish.rdn != phish.target.rdn

    def test_target_terms_in_freeurl_sometimes(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        hits = 0
        for _ in range(30):
            phish = phish_gen.generate(hosting="random")
            parsed = parse_url(phish.landing_url)
            if phish.target.mld in parsed.free_url:
                hits += 1
        assert hits > 3  # obfuscation happens regularly

    def test_external_links_point_to_target(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        hits = 0
        for _ in range(10):
            phish = phish_gen.generate(
                quality="medium", evasion=EvasionProfile.none()
            )
            snapshot = browser.load(phish.starting_url)
            if any(phish.target.rdn in link for link in snapshot.href_links):
                hits += 1
        assert hits >= 7

    def test_content_mimics_target(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate(evasion=EvasionProfile.none())
        snapshot = browser.load(phish.starting_url)
        content = (snapshot.title + " " + snapshot.text).lower()
        target_terms = phish.target.name_words + phish.target.keyterms
        assert any(term in content for term in target_terms)

    def test_has_input_fields(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate()
        snapshot = browser.load(phish.starting_url)
        assert snapshot.elements.input_count >= 2

    def test_label_is_one(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        assert phish_gen.generate().label == 1


class TestHostingModes:
    def test_ip_hosting(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate(hosting="ip")
        assert phish.rdn is None
        assert parse_url(phish.landing_url).is_ip

    def test_hosting_provider_uses_private_suffix(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate(hosting="hosting_provider")
        parsed = parse_url(phish.landing_url)
        # The registrable unit is the phisher's token on the provider.
        assert parsed.rdn == phish.rdn
        assert parsed.rdn.count(".") >= 1

    def test_typosquat_resembles_target(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        for _ in range(10):
            phish = phish_gen.generate(hosting="typosquat")
            base = phish.target.mld.replace("-", "")
            mutated = phish.mld.replace("-", "")
            # Small edit distance: lengths within 1 and high prefix overlap.
            assert abs(len(mutated) - len(base)) <= 1

    def test_compromised_without_pool_falls_back(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        phish_gen.compromised_pool = []
        phish = phish_gen.generate(hosting="compromised")
        assert phish.hosting == "random"

    def test_compromised_uses_pool(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        phish_gen.compromised_pool = ["victim.com"]
        phish = phish_gen.generate(hosting="compromised")
        assert phish.rdn == "victim.com"


class TestEvasion:
    def test_image_based_moves_text_to_screenshot(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate_with_evasion("image_based")
        snapshot = browser.load(phish.starting_url)
        assert len(snapshot.text) < 100
        assert snapshot.screenshot.image_texts  # text lives in images

    def test_minimal_text(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate_with_evasion("minimal_text")
        snapshot = browser.load(phish.starting_url)
        assert len(snapshot.text.split()) < 30

    def test_no_external_links(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate_with_evasion("no_external_links")
        snapshot = browser.load(phish.starting_url)
        assert not any(
            phish.target.rdn in link for link in snapshot.href_links
        )

    def test_short_url(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate_with_evasion("short_url")
        assert len(parse_url(phish.landing_url).path) < 12

    def test_ip_url_shortcut(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate_with_evasion("ip_url")
        assert phish.hosting == "ip"

    def test_unknown_technique_rejected(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        with pytest.raises(ValueError):
            phish_gen.generate_with_evasion("cloaking")

    def test_all_tricks_profile(self):
        profile = EvasionProfile.all_tricks()
        assert profile.minimal_text and profile.image_based

    def test_quality_tiers(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        clone = phish_gen.generate(quality="high",
                                   evasion=EvasionProfile.none())
        low = phish_gen.generate(quality="low",
                                 evasion=EvasionProfile.none())
        clone_snapshot = browser.load(clone.starting_url)
        low_snapshot = browser.load(low.starting_url)
        assert len(clone_snapshot.text) > len(low_snapshot.text)

    def test_unknown_quality_rejected(self, site_generators):
        _web, _browser, _legit, phish_gen = site_generators
        with pytest.raises(ValueError):
            phish_gen.generate(quality="superb")


class TestUnknownTarget:
    def test_no_target_hint(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        phish = phish_gen.generate(with_target_hint=False)
        assert phish.target is None
        assert phish.target_mld is None
        snapshot = browser.load(phish.starting_url)
        assert snapshot.elements.input_count >= 2


class TestRedirection:
    def test_some_phish_use_redirect_chains(self, site_generators):
        _web, browser, _legit, phish_gen = site_generators
        chain_lengths = []
        for _ in range(30):
            phish = phish_gen.generate()
            snapshot = browser.load(phish.starting_url)
            chain_lengths.append(len(snapshot.redirection_chain))
        assert max(chain_lengths) >= 2
