"""Tests for dataset JSON persistence."""

import json

import pytest

from repro.corpus.io import (
    load_dataset,
    page_from_record,
    page_to_record,
    save_dataset,
)


class TestRecordRoundtrip:
    def test_roundtrip_preserves_fields(self, tiny_world):
        page = tiny_world.dataset("phishBrand")[0]
        rebuilt = page_from_record(page_to_record(page))
        assert rebuilt.label == page.label
        assert rebuilt.language == page.language
        assert rebuilt.kind == page.kind
        assert rebuilt.target_mld == page.target_mld
        assert rebuilt.snapshot.starting_url == page.snapshot.starting_url
        assert rebuilt.snapshot.html == page.snapshot.html

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            page_from_record({"label": 1})

    def test_defaults_for_optional_fields(self, tiny_world):
        page = tiny_world.dataset("english")[0]
        record = page_to_record(page)
        del record["language"], record["kind"]
        rebuilt = page_from_record(record)
        assert rebuilt.language == "english"
        assert rebuilt.kind == "unknown"


class TestFileRoundtrip:
    def test_save_and_load(self, tiny_world, tmp_path):
        dataset = tiny_world.dataset("phishTest")
        path = tmp_path / "phishTest.jsonl"
        written = save_dataset(dataset, path)
        assert written == len(dataset)

        loaded = load_dataset(path)
        assert loaded.name == "phishTest"
        assert len(loaded) == len(dataset)
        assert loaded.initial_count == dataset.initial_count
        assert loaded.labels().tolist() == dataset.labels().tolist()
        assert [page.url for page in loaded] == \
            [page.url for page in dataset]

    def test_features_survive_roundtrip(self, tiny_world, tmp_path):
        """Persisted pages yield identical feature vectors."""
        from repro.core import FeatureExtractor
        extractor = FeatureExtractor(alexa=tiny_world.alexa)
        dataset = tiny_world.dataset("phishTest").subset(range(5))
        path = tmp_path / "subset.jsonl"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        import numpy as np
        original = extractor.extract_many(p.snapshot for p in dataset)
        rebuilt = extractor.extract_many(p.snapshot for p in loaded)
        assert np.array_equal(original, rebuilt)

    def test_creates_parent_dirs(self, tiny_world, tmp_path):
        dataset = tiny_world.dataset("phishTest").subset(range(2))
        path = tmp_path / "deep" / "nested" / "d.jsonl"
        save_dataset(dataset, path)
        assert path.exists()

    def test_bad_record_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"__dataset__": "x", "initial_count": None}) + "\n"
            + json.dumps({"label": 1}) + "\n"
        )
        with pytest.raises(ValueError, match=":2:"):
            load_dataset(path)

    def test_blank_lines_skipped(self, tiny_world, tmp_path):
        dataset = tiny_world.dataset("phishTest").subset(range(2))
        path = tmp_path / "d.jsonl"
        save_dataset(dataset, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_dataset(path)) == 2
