"""Distribution-level tests of the corpus generators.

The experiment shapes depend on the generators actually sampling what
their weight tables promise; these tests check the realised frequencies
against the configured distributions with generous tolerances.
"""

import numpy as np
import pytest

from repro.corpus.brands import default_brands
from repro.corpus.legitimate import KIND_WEIGHTS, LegitimateSiteGenerator
from repro.corpus.phishing import (
    HOSTING_WEIGHTS,
    QUALITY_WEIGHTS,
    PhishingSiteGenerator,
)
from repro.urls.parsing import parse_url
from repro.web.hosting import SyntheticWeb

SAMPLE = 400


@pytest.fixture(scope="module")
def populations():
    web = SyntheticWeb()
    rng = np.random.default_rng(77)
    brands = default_brands()
    legit_gen = LegitimateSiteGenerator(web, rng)
    for brand in list(brands)[:10]:
        legit_gen.generate_brand_site(brand)
    phish_gen = PhishingSiteGenerator(
        web, rng, brands, compromised_pool=["victim1.com", "victim2.com"]
    )
    legit = [legit_gen.generate() for _ in range(SAMPLE)]
    phish = [phish_gen.generate() for _ in range(SAMPLE)]
    return legit, phish


class TestLegitimateStatistics:
    def test_kind_frequencies(self, populations):
        legit, _phish = populations
        total_weight = sum(KIND_WEIGHTS.values())
        for kind, weight in KIND_WEIGHTS.items():
            expected = weight / total_weight
            observed = sum(site.kind == kind for site in legit) / len(legit)
            tolerance = max(0.05, 3 * np.sqrt(expected / SAMPLE))
            assert abs(observed - expected) < tolerance, (
                kind, observed, expected
            )

    def test_https_majority(self, populations):
        legit, _phish = populations
        https = sum(
            site.landing_url.startswith("https") for site in legit
        ) / len(legit)
        assert 0.65 < https < 0.95

    def test_popularity_tiers_spread(self, populations):
        legit, _phish = populations
        tiers = {site.popularity_tier for site in legit}
        assert {1, 2, 3, 4} <= tiers


class TestPhishingStatistics:
    def test_hosting_frequencies(self, populations):
        _legit, phish = populations
        total_weight = sum(HOSTING_WEIGHTS.values())
        for hosting, weight in HOSTING_WEIGHTS.items():
            expected = weight / total_weight
            observed = sum(p.hosting == hosting for p in phish) / len(phish)
            tolerance = max(0.05, 3 * np.sqrt(expected / SAMPLE))
            assert abs(observed - expected) < tolerance, (
                hosting, observed, expected
            )

    def test_quality_frequencies(self, populations):
        _legit, phish = populations
        for quality, weight in QUALITY_WEIGHTS.items():
            observed = sum(p.quality == quality for p in phish) / len(phish)
            assert abs(observed - weight) < 0.08, (quality, observed)

    def test_http_majority(self, populations):
        _legit, phish = populations
        http = sum(
            p.landing_url.startswith("http://") for p in phish
        ) / len(phish)
        assert http > 0.6  # phishers rarely bother with TLS (in 2015)

    def test_popular_brands_targeted_more(self, populations):
        _legit, phish = populations
        tiers = [p.target.popularity for p in phish if p.target]
        assert np.mean([tier <= 2 for tier in tiers]) > 0.35

    def test_default_evasion_rate(self, populations):
        _legit, phish = populations
        evading = sum(
            any([p.evasion.minimal_text, p.evasion.no_external_resources,
                 p.evasion.image_based, p.evasion.misspell_terms])
            for p in phish
        ) / len(phish)
        assert 0.08 < evading < 0.28  # configured ~16%

    def test_landing_urls_unique(self, populations):
        _legit, phish = populations
        urls = [p.landing_url for p in phish]
        assert len(urls) == len(set(urls))

    def test_ip_share_small(self, populations):
        _legit, phish = populations
        ip_share = sum(
            parse_url(p.landing_url).is_ip for p in phish
        ) / len(phish)
        assert ip_share < 0.08  # paper: <2% of phishing URLs
