"""Tests for the per-language vocabularies."""

import pytest

from repro.corpus.wordlists import LANGUAGES, all_words, vocabulary
from repro.text.terms import extract_terms


class TestWordlists:
    def test_six_languages(self):
        assert len(LANGUAGES) == 6
        assert "english" in LANGUAGES and "spanish" in LANGUAGES

    @pytest.mark.parametrize("language", LANGUAGES)
    def test_banks_present(self, language):
        banks = vocabulary(language)
        assert set(banks) == {"common", "web", "business"}
        assert len(banks["common"]) >= 100
        assert len(banks["web"]) >= 30
        assert len(banks["business"]) >= 25

    @pytest.mark.parametrize("language", LANGUAGES)
    def test_words_survive_term_extraction(self, language):
        # Every vocabulary word must canonicalise to a term of length >= 3,
        # otherwise the generators would emit invisible words.
        for word in all_words(language):
            terms = extract_terms(word)
            assert terms, f"{word!r} extracts to nothing"

    def test_unknown_language(self):
        with pytest.raises(ValueError):
            vocabulary("klingon")

    def test_vocabularies_differ(self):
        english = set(vocabulary("english")["common"])
        german = set(vocabulary("german")["common"])
        overlap = english & german
        assert len(overlap) < min(len(english), len(german)) * 0.2
