"""Golden regression test: the 212-feature matrix is frozen.

A small fixed corpus of hand-crafted snapshots has its full feature
matrix committed at ``tests/data/golden_features.json``.  Any change to
tokenisation, URL parsing, term distributions, Hellinger computation or
feature ordering that alters even one value — including a last-bit
float difference from reordering a summation — fails here.

Regenerate (only after deliberately changing feature semantics) with::

    PYTHONPATH=src python tests/core/test_golden_features.py --regenerate
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.core.features import FeatureExtractor
from repro.core.features.extractor import feature_groups
from repro.parallel import AnalysisCache, WorkerPool
from repro.web.page import PageSnapshot, Screenshot

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_features.json"


def golden_snapshots() -> list[PageSnapshot]:
    """Six deterministic snapshots spanning the feature space."""
    return [
        # Plain legitimate-looking page, matching start and landing URLs.
        PageSnapshot(
            starting_url="https://www.paypal.com/signin",
            landing_url="https://www.paypal.com/signin",
            html=(
                "<title>PayPal login</title><body>"
                "<p>Log in to your paypal account to send money</p>"
                '<a href="https://www.paypal.com/help">help</a>'
                '<img src="https://www.paypal.com/logo.png">'
                "</body>"
            ),
            screenshot=Screenshot(
                rendered_text="log in to your paypal account"
            ),
        ),
        # Deceptive phish: brand in subdomain, foreign RDN, redirect.
        PageSnapshot(
            starting_url="http://paypal.com.secure-login.bizarre-host.net/"
            "verify?acct=1",
            landing_url="http://bizarre-host.net/landing",
            html=(
                "<title>Verify your PayPal account now</title><body>"
                "<p>urgent verify account suspended paypal security</p>"
                '<a href="http://bizarre-host.net/submit">continue</a>'
                '<a href="https://www.paypal.com/">real site</a>'
                "</body>"
            ),
            screenshot=Screenshot(
                rendered_text="urgent verify your paypal account",
                image_texts=("paypal",),
            ),
        ),
        # IP-hosted page: no RDN, no registered domain features.
        PageSnapshot(
            starting_url="http://192.168.13.37/login.php",
            landing_url="http://192.168.13.37/login.php",
            html="<body><form>username password submit</form></body>",
        ),
        # Minimal page: empty body, no screenshot, bare host.
        PageSnapshot(
            starting_url="http://example.org/",
            landing_url="http://example.org/",
            html="",
        ),
        # Link-heavy page with external domains and a long free URL.
        PageSnapshot(
            starting_url="https://news.aggregator-site.co.uk/stories/today"
            "?ref=newsletter&utm_source=mail",
            landing_url="https://news.aggregator-site.co.uk/stories/today",
            html=(
                "<title>Top stories today</title><body>"
                '<a href="https://www.bbc.co.uk/news">bbc news</a>'
                '<a href="https://edition.cnn.com/world">cnn world</a>'
                '<a href="/stories/archive">archive</a>'
                '<a href="https://www.bbc.co.uk/sport">bbc sport</a>'
                "<p>today top stories from around the world</p></body>"
            ),
            screenshot=Screenshot(rendered_text="top stories today"),
        ),
        # Unicode / mixed-language content with punycode-ish tokens.
        PageSnapshot(
            starting_url="http://banque-en-ligne.fr/connexion",
            landing_url="http://banque-en-ligne.fr/connexion",
            html=(
                "<title>Banque en ligne connexion</title><body>"
                "<p>accédez à votre compte bancaire en ligne</p>"
                '<img src="http://banque-en-ligne.fr/sécurité.png">'
                "</body>"
            ),
            screenshot=Screenshot(rendered_text="banque en ligne"),
        ),
    ]


def _extract_matrix() -> np.ndarray:
    return FeatureExtractor().extract_many(golden_snapshots())


def _regenerate() -> None:
    matrix = _extract_matrix()
    groups = feature_groups()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(
            {
                "format": "golden-features/1",
                "n_snapshots": int(matrix.shape[0]),
                "n_features": int(matrix.shape[1]),
                # The feature *contract*: per-set counts and the exact
                # concatenated name order, cross-checked statically by
                # repro.lint's PHL3xx rules on every lint run.
                "group_counts": {
                    name: len(names) for name, names, _ in groups
                },
                "feature_names": [
                    name for _, names, _ in groups for name in names
                ],
                "features": [
                    [repr(value) for value in row] for row in matrix.tolist()
                ],
            },
            indent=1,
        )
    )
    print(f"wrote {GOLDEN_PATH} ({matrix.shape[0]}x{matrix.shape[1]})")


def _load_golden() -> np.ndarray:
    payload = json.loads(GOLDEN_PATH.read_text())
    assert payload["format"] == "golden-features/1"
    return np.array(
        [[float(value) for value in row] for row in payload["features"]],
        dtype=np.float64,
    )


class TestGoldenFeatures:
    def test_matrix_shape_frozen(self):
        golden = _load_golden()
        assert golden.shape == (6, 212)

    def test_extract_many_reproduces_golden_exactly(self):
        # Bitwise equality — not allclose — so even summation-order
        # drift in the vectorized f2 block is caught.
        assert np.array_equal(_extract_matrix(), _load_golden())

    def test_cached_extraction_reproduces_golden_exactly(self):
        extractor = FeatureExtractor(cache=AnalysisCache())
        snapshots = golden_snapshots()
        cold = extractor.extract_many(snapshots)
        warm = extractor.extract_many(snapshots)
        golden = _load_golden()
        assert np.array_equal(cold, golden)
        assert np.array_equal(warm, golden)
        assert extractor.cache.features.hits >= len(snapshots)

    def test_feature_name_contract_frozen(self):
        # The golden file freezes the *layout* (names, order, per-set
        # counts) alongside the values; repro.lint PHL3xx enforces the
        # same contract statically.
        payload = json.loads(GOLDEN_PATH.read_text())
        groups = feature_groups()
        live_names = [name for _, names, _ in groups for name in names]
        assert payload["feature_names"] == live_names
        assert payload["group_counts"] == {
            name: len(names) for name, names, _ in groups
        }
        assert len(set(live_names)) == len(live_names) == 212
        assert all(count == declared for _, names, declared in groups
                   for count in [len(names)])

    def test_parallel_extraction_reproduces_golden_exactly(self):
        with WorkerPool(workers=3, backend="thread") as pool:
            matrix = FeatureExtractor().extract_many(
                golden_snapshots(), pool=pool
            )
        assert np.array_equal(matrix, _load_golden())


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
