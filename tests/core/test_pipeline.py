"""Tests for the combined detection + target-identification pipeline."""

import pytest

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.core.pipeline import KnowYourPhish, PageVerdict
from repro.core.target import TargetIdentifier
from repro.web.ocr import SimulatedOcr


@pytest.fixture(scope="module")
def pipeline(tiny_world):
    extractor = FeatureExtractor(alexa=tiny_world.alexa)
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    detector = PhishingDetector(extractor, n_estimators=40)
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    identifier = TargetIdentifier(
        tiny_world.search, ocr=SimulatedOcr(error_rate=0.02)
    )
    return KnowYourPhish(detector, identifier)


class TestPipeline:
    def test_phish_detected_with_target(self, pipeline, tiny_world):
        hits = 0
        pages = [
            page for page in tiny_world.dataset("phishTest")[:20]
            if page.target_mld
        ]
        for page in pages:
            verdict = pipeline.analyze(page.snapshot)
            if verdict.is_phish and page.target_mld in verdict.targets:
                hits += 1
        assert hits / len(pages) > 0.6

    def test_legit_mostly_passes(self, pipeline, tiny_world):
        passed = 0
        for page in tiny_world.dataset("english")[:30]:
            verdict = pipeline.analyze(page.snapshot)
            passed += verdict.verdict == "legitimate"
        assert passed >= 25

    def test_confidence_in_unit_interval(self, pipeline, tiny_world):
        verdict = pipeline.analyze(tiny_world.dataset("english")[0].snapshot)
        assert 0.0 <= verdict.confidence <= 1.0

    def test_low_confidence_short_circuits(self, pipeline, tiny_world):
        # Legitimate verdicts below threshold carry no identification.
        for page in tiny_world.dataset("english")[:30]:
            verdict = pipeline.analyze(page.snapshot)
            if verdict.confidence < pipeline.detector.threshold:
                assert verdict.identification is None
                break

    def test_without_identifier(self, tiny_world, pipeline):
        bare = KnowYourPhish(pipeline.detector, identifier=None)
        verdict = bare.analyze(tiny_world.dataset("phishTest")[0].snapshot)
        assert verdict.verdict in ("legitimate", "phish")

    def test_is_blocked_semantics(self, pipeline):
        phish = PageVerdict(verdict="phish", confidence=0.9, targets=["x"])
        suspicious = PageVerdict(verdict="suspicious", confidence=0.8,
                                 targets=[])
        legit = PageVerdict(verdict="legitimate", confidence=0.1, targets=[])
        assert pipeline.is_blocked(phish)
        assert pipeline.is_blocked(suspicious)
        assert not pipeline.is_blocked(legit)

    def test_suspicious_not_blocked_when_configured(self, pipeline):
        lenient = KnowYourPhish(
            pipeline.detector, pipeline.identifier,
            treat_suspicious_as_phish=False,
        )
        suspicious = PageVerdict(verdict="suspicious", confidence=0.8,
                                 targets=[])
        assert not lenient.is_blocked(suspicious)

    def test_analyze_batch_matches_per_page_analyze(
        self, pipeline, tiny_world
    ):
        pages = (
            tiny_world.dataset("phishTest")[:12]
            + tiny_world.dataset("english")[:12]
        )
        snapshots = [page.snapshot for page in pages]
        serial = [pipeline.analyze(snapshot) for snapshot in snapshots]
        batch = pipeline.analyze_batch(snapshots)
        assert [
            (v.verdict, v.confidence, tuple(v.targets),
             tuple(v.degradations), v.degraded)
            for v in batch
        ] == [
            (v.verdict, v.confidence, tuple(v.targets),
             tuple(v.degradations), v.degraded)
            for v in serial
        ]

    def test_analyze_batch_metrics_match_per_page(
        self, pipeline, tiny_world
    ):
        from repro.obs import MetricsRegistry

        snapshots = [
            page.snapshot
            for page in tiny_world.dataset("phishTest")[:8]
            + tiny_world.dataset("english")[:8]
        ]
        serial_metrics = MetricsRegistry()
        for snapshot in snapshots:
            pipeline.analyze(snapshot, metrics=serial_metrics)
        batch_metrics = MetricsRegistry()
        pipeline.analyze_batch(snapshots, metrics=batch_metrics)
        for name in ("verdicts_total", "verdicts_degraded_total",
                     "fp_filtered_total"):
            assert batch_metrics.counter_total(name) == \
                serial_metrics.counter_total(name), name

    def test_analyze_batch_empty(self, pipeline):
        assert pipeline.analyze_batch([]) == []

    def test_analyze_batch_carries_load_degradations(
        self, pipeline, tiny_world
    ):
        from repro.resilience.browser import LoadResult

        load = LoadResult(
            snapshot=tiny_world.dataset("english")[0].snapshot,
            attempts=2,
            degradations=["partial_content"],
        )
        serial = pipeline.analyze(load)
        [batch] = pipeline.analyze_batch([load])
        assert batch.degradations == serial.degradations
        assert "partial_content" in batch.degradations
        assert batch.degraded
        assert batch.verdict == serial.verdict

    def test_page_verdict_helpers(self):
        verdict = PageVerdict(verdict="phish", confidence=0.95,
                              targets=["paypal", "visa"])
        assert verdict.is_phish
        assert verdict.top_target == "paypal"
        assert PageVerdict("legitimate", 0.1, []).top_target is None
