"""Tests for the five feature groups and the 212-feature extractor."""

import numpy as np
import pytest

from repro.core.datasources import DataSources
from repro.core.features import (
    FEATURE_SET_NAMES,
    FeatureExtractor,
    feature_set_mask,
)
from repro.core.features import (
    content,
    mld_usage,
    rdn_usage,
    term_consistency,
    url_features,
)
from repro.urls.alexa import AlexaRanking
from repro.web.page import PageSnapshot


def snapshot_legit():
    """A consistent 'legitimate-looking' page."""
    return PageSnapshot(
        starting_url="https://www.acmebank.com/",
        landing_url="https://www.acmebank.com/",
        logged_links=[
            "https://www.acmebank.com/css/site.css",
            "https://www.acmebank.com/img/acmebank.png",
            "https://cdn.net/lib.js",
        ],
        html=(
            "<title>AcmeBank - secure banking</title><body>"
            "<p>acmebank online banking account services acmebank</p>"
            "<a href='https://www.acmebank.com/accounts'>accounts</a>"
            "<a href='https://www.acmebank.com/help'>help</a>"
            "<img src='https://www.acmebank.com/img/logo.png'>"
            "<input type='text'>"
            "<p>© 2015 AcmeBank</p></body>"
        ),
    )


def snapshot_phish():
    """A phish-shaped page: own domain unrelated, mimics acmebank."""
    return PageSnapshot(
        starting_url="http://acmebank.com.xkwpanel.xyz/secure/acmebank/login?id=ab12",
        landing_url="http://acmebank.com.xkwpanel.xyz/secure/acmebank/login?id=ab12",
        logged_links=[
            "https://www.acmebank.com/img/acmebank-logo.png",
        ],
        html=(
            "<title>AcmeBank - verify</title><body>"
            "<p>acmebank account suspended verify login</p>"
            "<a href='https://www.acmebank.com/help'>help</a>"
            "<form action='/post.php'>"
            "<input type='email'><input type='password'>"
            "<input type='password'></form>"
            "<p>© 2015 AcmeBank</p></body>"
        ),
    )


@pytest.fixture(scope="module")
def alexa():
    return AlexaRanking(["acmebank.com", "cdn.net"])


class TestF1UrlFeatures:
    def test_count(self, alexa):
        values = url_features.compute(DataSources(snapshot_legit()), alexa)
        assert len(values) == 106 == url_features.N_FEATURES

    def test_names_align(self):
        assert len(url_features.feature_names()) == 106

    def test_https_flags(self, alexa):
        legit = url_features.compute(DataSources(snapshot_legit()), alexa)
        phish = url_features.compute(DataSources(snapshot_phish()), alexa)
        names = url_features.feature_names()
        index = names.index("f1.start.https")
        assert legit[index] == 1.0
        assert phish[index] == 0.0

    def test_alexa_rank_feature(self, alexa):
        legit = url_features.compute(DataSources(snapshot_legit()), alexa)
        phish = url_features.compute(DataSources(snapshot_phish()), alexa)
        names = url_features.feature_names()
        index = names.index("f1.start.alexa_rank")
        assert legit[index] == 1.0          # ranked first
        assert phish[index] == 1_000_001.0  # unranked

    def test_freeurl_dots(self, alexa):
        phish = url_features.compute(DataSources(snapshot_phish()), alexa)
        names = url_features.feature_names()
        # subdomains "acmebank.com" -> 2 dots counted (1 inner + 1 trailing)
        assert phish[names.index("f1.start.freeurl_dots")] >= 2

    def test_empty_link_sets_zero(self, alexa):
        snapshot = PageSnapshot(
            starting_url="http://x.com/", landing_url="http://x.com/",
            html="<title>t</title><body>b</body>",
        )
        values = url_features.compute(DataSources(snapshot), alexa)
        names = url_features.feature_names()
        start = names.index("f1.extlog.https_ratio")
        assert all(v == 0.0 for v in values[start:start + 22])

    def test_mld_length(self, alexa):
        legit = url_features.compute(DataSources(snapshot_legit()), alexa)
        names = url_features.feature_names()
        assert legit[names.index("f1.start.mld_length")] == len("acmebank")


class TestF2TermConsistency:
    def test_count_and_bounds(self):
        values = term_consistency.compute(DataSources(snapshot_legit()))
        assert len(values) == 66 == term_consistency.N_FEATURES
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_names_align(self):
        assert len(term_consistency.feature_names()) == 66

    def test_consistent_page_lower_rdn_text_distance(self):
        names = term_consistency.feature_names()
        index = names.index("f2.hellinger.text-landrdn")
        legit = term_consistency.compute(DataSources(snapshot_legit()))
        phish = term_consistency.compute(DataSources(snapshot_phish()))
        # Legit page's text shares terms with its RDN; phish text does not
        # match the phisher's own gibberish RDN.
        assert legit[index] < phish[index]

    def test_pairs_unique(self):
        assert len(set(term_consistency.PAIRS)) == 66


class TestF3MldUsage:
    def test_count(self):
        values = mld_usage.compute(DataSources(snapshot_legit()))
        assert len(values) == 22 == mld_usage.N_FEATURES

    def test_legit_mld_in_text(self):
        values = mld_usage.compute(DataSources(snapshot_legit()))
        names = mld_usage.feature_names()
        assert values[names.index("f3.start_mld.in.text")] == 1.0
        assert values[names.index("f3.start_mld.in.title")] == 1.0

    def test_phish_mld_not_in_text(self):
        values = mld_usage.compute(DataSources(snapshot_phish()))
        names = mld_usage.feature_names()
        assert values[names.index("f3.start_mld.in.text")] == 0.0

    def test_ip_url_all_zero(self):
        snapshot = PageSnapshot(
            starting_url="http://10.1.2.3/x", landing_url="http://10.1.2.3/x",
            html="<title>t</title><body>text here</body>",
        )
        assert mld_usage.compute(DataSources(snapshot)) == [0.0] * 22

    def test_substring_mass_positive_for_composite_mld(self):
        snapshot = PageSnapshot(
            starting_url="https://www.bankofamerica.com/",
            landing_url="https://www.bankofamerica.com/",
            html=(
                "<title>Bank of America</title><body>"
                "<a href='https://www.bankofamerica.com/bank/america'>x</a>"
                "</body>"
            ),
        )
        values = mld_usage.compute(DataSources(snapshot))
        names = mld_usage.feature_names()
        # Title terms "bank", "america" are substrings of "bankofamerica".
        assert values[names.index("f3.start_mld.mass.title")] > 0.5


class TestF4RdnUsage:
    def test_count(self):
        values = rdn_usage.compute(DataSources(snapshot_legit()))
        assert len(values) == 13 == rdn_usage.N_FEATURES

    def test_internal_ratios(self):
        legit = rdn_usage.compute(DataSources(snapshot_legit()))
        phish = rdn_usage.compute(DataSources(snapshot_phish()))
        names = rdn_usage.feature_names()
        index = names.index("f4.logged_internal_ratio")
        assert legit[index] > phish[index]

    def test_chain_features(self):
        snapshot = snapshot_legit()
        values = rdn_usage.compute(DataSources(snapshot))
        names = rdn_usage.feature_names()
        assert values[names.index("f4.chain_length")] == 1.0
        assert values[names.index("f4.chain_rdn_switches")] == 0.0

    def test_cross_domain_chain_switches(self):
        snapshot = PageSnapshot(
            starting_url="http://short.io/x",
            landing_url="http://landing.com/y",
            redirection_chain=["http://short.io/x", "http://landing.com/y"],
            html="<body>x</body>",
        )
        values = rdn_usage.compute(DataSources(snapshot))
        names = rdn_usage.feature_names()
        assert values[names.index("f4.chain_rdn_switches")] == 1.0
        assert values[names.index("f4.start_land_same_rdn")] == 0.0


class TestF5Content:
    def test_count_and_values(self):
        values = content.compute(DataSources(snapshot_phish()))
        assert len(values) == 5 == content.N_FEATURES
        names = content.feature_names()
        assert values[names.index("f5.input_count")] == 3.0
        assert values[names.index("f5.text_terms")] > 0


class TestExtractor:
    def test_212_features(self, alexa):
        extractor = FeatureExtractor(alexa=alexa)
        vector = extractor.extract(snapshot_legit())
        assert vector.shape == (212,)
        assert extractor.n_features == 212

    def test_names_unique_and_aligned(self, alexa):
        extractor = FeatureExtractor(alexa=alexa)
        names = extractor.feature_names
        assert len(names) == 212
        assert len(set(names)) == 212

    def test_extract_many(self, alexa):
        extractor = FeatureExtractor(alexa=alexa)
        matrix = extractor.extract_many([snapshot_legit(), snapshot_phish()])
        assert matrix.shape == (2, 212)

    def test_extract_many_empty(self, alexa):
        assert FeatureExtractor(alexa=alexa).extract_many([]).shape == (0, 212)

    def test_deterministic(self, alexa):
        extractor = FeatureExtractor(alexa=alexa)
        first = extractor.extract(snapshot_legit())
        second = extractor.extract(snapshot_legit())
        assert np.array_equal(first, second)

    def test_default_extractor_needs_no_world(self):
        vector = FeatureExtractor().extract(snapshot_legit())
        assert vector.shape == (212,)


class TestFeatureSetMasks:
    @pytest.mark.parametrize("name,expected", [
        ("f1", 106), ("f2", 66), ("f3", 22), ("f4", 13), ("f5", 5),
        ("f1,5", 111), ("f2,3,4", 101), ("fall", 212),
    ])
    def test_mask_sizes(self, name, expected):
        assert int(feature_set_mask(name).sum()) == expected

    def test_masks_disjoint_groups(self):
        total = (
            feature_set_mask("f1").astype(int)
            + feature_set_mask("f2").astype(int)
            + feature_set_mask("f3").astype(int)
            + feature_set_mask("f4").astype(int)
            + feature_set_mask("f5").astype(int)
        )
        assert (total == 1).all()

    def test_unknown_mask_rejected(self):
        with pytest.raises(ValueError):
            feature_set_mask("f9")

    def test_all_names_listed(self):
        assert set(FEATURE_SET_NAMES) == {
            "f1", "f2", "f3", "f4", "f5", "f1,5", "f2,3,4", "fall"
        }
