"""Differential harness: batch extraction and compiled inference.

The columnar :class:`~repro.core.features.batch.BatchExtractor` and the
:class:`~repro.ml.compiled.CompiledEnsemble` are pure performance
rewrites of contractually frozen code paths (PHL301-303, the golden
feature matrix, the boosting reference loop).  This suite is the lock on
that contract: every cell the batch path produces must equal the serial
per-page path **bit for bit** (``np.array_equal`` on float64, not
``allclose``), and compiled ensemble scores must equal the per-row tree
loop the same way, across all three ``tree_method`` strategies.

Hypothesis drives the page generator through the shapes that historically
break columnar rewrites: empty pages, pages with no login form, unicode
and mixed-language text, single-page batches and 200+-page batches.
"""

import random
import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features.batch import _BatchPools
from repro.core.features.extractor import (
    FeatureExtractor,
    _GROUP_SLICES,
)
from repro.ml.boosting import TREE_METHODS, GradientBoostingClassifier
from repro.ml.compiled import sigmoid
from repro.text.terms import extract_terms
from repro.urls.alexa import AlexaRanking
from repro.urls.parsing import UrlParseError, parse_url
from repro.urls.public_suffix import default_psl
from repro.web.page import PageSnapshot

# ---------------------------------------------------------------------------
# Page generators
# ---------------------------------------------------------------------------

_LABEL = st.text(
    alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8
)
_HOST = st.lists(_LABEL, min_size=1, max_size=4).map(".".join)
_URL = st.builds(
    "{}://{}/{}".format,
    st.sampled_from(["http", "https"]),
    _HOST,
    _LABEL,
)

#: Mixed-language vocabulary: latin, homoglyph-bearing, CJK, cyrillic,
#: greek, combining marks — everything ``canonicalize`` special-cases.
_WORDS = st.lists(
    st.sampled_from([
        "bank", "login", "verify", "account", "secure", "acmebank",
        "pässwörd", "café", "наём", "банк", "λόγος", "ログイン",
        "登录", "ｐａｙｐａｌ", "Ⅰdentity", "ﬁnance", "élève",
    ]),
    max_size=10,
).map(" ".join)

_TEXT = st.one_of(_WORDS, st.text(max_size=30))

_LOGIN_FORM = (
    "<form action='/post.php'>"
    "<input type='email'><input type='password'></form>"
)


@st.composite
def snapshots(draw):
    """One page snapshot spanning the troublesome shapes."""
    start = draw(_URL)
    landing = draw(st.one_of(st.just(start), _URL))
    chain = [start, landing] if landing != start else []
    logged = draw(st.lists(_URL, max_size=3))
    if draw(st.booleans()):
        html = ""  # empty page
    else:
        parts = []
        if draw(st.booleans()):
            parts.append(f"<title>{draw(_TEXT)}</title>")
        parts.append(f"<p>{draw(_TEXT)}</p>")
        for href in draw(st.lists(_URL, max_size=2)):
            parts.append(f"<a href='{href}'>{draw(_TEXT)}</a>")
        if draw(st.booleans()):
            parts.append(_LOGIN_FORM)  # else: no login form
        if draw(st.booleans()):
            parts.append(f"<p>© 2015 {draw(_TEXT)}</p>")
        html = "".join(parts)
    return PageSnapshot(
        starting_url=start,
        landing_url=landing,
        redirection_chain=chain,
        logged_links=logged,
        html=html,
    )


def _corpus(n, seed=7):
    """A deterministic ``n``-page corpus from the same fragment pools."""
    rng = random.Random(seed)
    hosts = [
        ".".join(
            "".join(rng.choices(string.ascii_lowercase, k=rng.randint(2, 8)))
            for _ in range(rng.randint(1, 4))
        )
        for _ in range(max(8, n // 6))  # shared pool → realistic dedup
    ]
    words = [
        "bank", "login", "verify", "account", "secure", "acmebank",
        "pässwörd", "café", "банк", "λόγος", "ログイン", "登录",
    ]
    pages = []
    for _ in range(n):
        start = f"http://{rng.choice(hosts)}/{rng.choice(words)}"
        landing = start if rng.random() < 0.7 \
            else f"https://{rng.choice(hosts)}/"
        text = " ".join(rng.choices(words, k=rng.randint(0, 12)))
        html = "" if rng.random() < 0.1 else (
            f"<title>{text[:20]}</title><p>{text}</p>"
            + (rng.random() < 0.5) * _LOGIN_FORM
            + f"<a href='http://{rng.choice(hosts)}/'>go</a>"
        )
        pages.append(PageSnapshot(
            starting_url=start,
            landing_url=landing,
            logged_links=[f"http://{rng.choice(hosts)}/x.js"
                          for _ in range(rng.randint(0, 3))],
            html=html,
        ))
    return pages


def _alexa():
    return AlexaRanking({"acmebank.com": 40, "cdn.net": 900})


# ---------------------------------------------------------------------------
# Batch extraction vs serial per-page extraction
# ---------------------------------------------------------------------------


class TestBatchVsSerial:
    def _assert_identical(self, pages):
        extractor = FeatureExtractor(alexa=_alexa())
        serial = (
            np.vstack([extractor.extract(page) for page in pages])
            if pages else np.zeros((0, extractor.n_features))
        )
        batch = extractor.extract_batch(pages)
        assert batch.dtype == serial.dtype == np.float64
        assert batch.shape == serial.shape
        for group, slice_ in _GROUP_SLICES.items():
            assert np.array_equal(batch[:, slice_], serial[:, slice_]), (
                f"group {group} diverges: "
                f"{np.argwhere(batch[:, slice_] != serial[:, slice_])[:5]}"
            )

    @given(st.lists(snapshots(), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_generated_batches_bit_identical_per_group(self, pages):
        self._assert_identical(pages)

    def test_empty_batch_shape(self):
        batch = FeatureExtractor().extract_batch([])
        assert batch.shape == (0, 212)
        assert batch.dtype == np.float64

    @given(snapshots())
    @settings(max_examples=30, deadline=None)
    def test_single_page_batch(self, page):
        self._assert_identical([page])

    def test_large_batch_bit_identical(self):
        self._assert_identical(_corpus(220))


# ---------------------------------------------------------------------------
# Cache interaction: warm/cold/evicting batches must agree with serial
# ---------------------------------------------------------------------------


class TestCacheInteraction:
    def test_warm_batch_rows_equal_cold_rows(self):
        from repro.parallel import AnalysisCache

        pages = _corpus(40)
        extractor = FeatureExtractor(alexa=_alexa(), cache=AnalysisCache())
        cold = extractor.extract_batch(pages)
        warm = extractor.extract_batch(pages)
        assert extractor.cache.features.hits >= len(pages)
        assert np.array_equal(cold, warm)
        plain = FeatureExtractor(alexa=_alexa()).extract_batch(pages)
        assert np.array_equal(cold, plain)

    def test_eviction_mid_batch_preserves_row_order(self):
        from repro.parallel import AnalysisCache

        pages = _corpus(60)
        tiny = FeatureExtractor(
            alexa=_alexa(), cache=AnalysisCache(max_entries=4)
        )
        reference = FeatureExtractor(alexa=_alexa()).extract_batch(pages)
        first = tiny.extract_batch(pages)
        assert tiny.cache.features.evictions > 0
        assert np.array_equal(first, reference)
        # Second pass: only the last few keys survive, so hits and
        # misses interleave mid-batch — rows must stay in input order.
        second = tiny.extract_batch(pages)
        assert np.array_equal(second, reference)

    def test_mixed_warm_cold_batch(self):
        from repro.parallel import AnalysisCache

        pages = _corpus(30)
        extractor = FeatureExtractor(alexa=_alexa(), cache=AnalysisCache())
        extractor.extract_batch(pages[:15])
        full = extractor.extract_batch(pages)  # 15 hits + 15 misses
        reference = FeatureExtractor(alexa=_alexa()).extract_batch(pages)
        assert np.array_equal(full, reference)

    def test_degraded_partial_snapshot_rows_match_serial(self):
        """A partial page (bare URL, no content) gets the same row."""
        partial = PageSnapshot(
            starting_url="http://half-loaded.example.com/login",
            landing_url="http://half-loaded.example.com/login",
        )
        pages = [_corpus(3)[0], partial, _corpus(3, seed=9)[1]]
        extractor = FeatureExtractor(alexa=_alexa())
        serial = np.vstack([extractor.extract(page) for page in pages])
        assert np.array_equal(extractor.extract_batch(pages), serial)


# ---------------------------------------------------------------------------
# Compiled ensemble vs per-row boosting
# ---------------------------------------------------------------------------


def _fitted(tree_method, seed=0, n=120, d=9):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(float)
    model = GradientBoostingClassifier(
        n_estimators=12, max_depth=3, tree_method=tree_method
    )
    model.fit(X, y)
    return model, rng.normal(size=(40, d)) * 3.0


class TestCompiledVsPerRow:
    @pytest.mark.parametrize("tree_method", TREE_METHODS)
    def test_predict_proba_bit_identical(self, tree_method):
        model, X = _fitted(tree_method)
        reference = np.array([
            sigmoid(model.decision_function_trees(row[None, :]))[0]
            for row in X
        ])
        compiled = model.compiled().predict_proba(X)
        assert compiled.dtype == reference.dtype == np.float64
        assert np.array_equal(compiled, reference)

    @pytest.mark.parametrize("tree_method", TREE_METHODS)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_random_models_bit_identical(self, tree_method, seed):
        model, X = _fitted(tree_method, seed=seed, n=60, d=4)
        reference = sigmoid(model.decision_function_trees(X))
        assert np.array_equal(model.compiled().predict_proba(X), reference)

    def test_batch_rows_equal_single_row_calls(self):
        model, X = _fitted("presort")
        batch = model.compiled().predict_proba(X)
        rows = np.array([
            model.compiled().predict_proba(row[None, :])[0] for row in X
        ])
        assert np.array_equal(batch, rows)


# ---------------------------------------------------------------------------
# Compiled ensemble serialization
# ---------------------------------------------------------------------------


class TestCompiledPickle:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_pickle_round_trip_preserves_predictions(self, seed):
        import pickle

        model, X = _fitted("presort", seed=seed, n=60, d=4)
        compiled = model.compiled()
        clone = pickle.loads(pickle.dumps(compiled))
        for attr in ("feature", "threshold", "left", "right", "value"):
            assert np.array_equal(
                getattr(clone, attr), getattr(compiled, attr)
            )
        assert clone.initial_raw == compiled.initial_raw
        assert clone.learning_rate == compiled.learning_rate
        assert clone.n_features == compiled.n_features
        assert np.array_equal(
            clone.predict_proba(X), compiled.predict_proba(X)
        )


# ---------------------------------------------------------------------------
# Pool primitives vs their serial counterparts
# ---------------------------------------------------------------------------


class TestPoolPrimitives:
    def _pools(self):
        return _BatchPools(default_psl(), _alexa())

    @given(st.text(max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_terms_match_extract_terms(self, text):
        assert self._pools().terms(text) == tuple(extract_terms(text))

    @given(_WORDS)
    @settings(max_examples=60, deadline=None)
    def test_mixed_language_terms_match(self, text):
        assert self._pools().terms(text) == tuple(extract_terms(text))

    @given(st.one_of(_URL, st.text(max_size=40)))
    @settings(max_examples=120, deadline=None)
    def test_parse_matches_parse_url(self, url):
        pools = self._pools()
        try:
            expected = parse_url(url, pools.psl)
        except UrlParseError:
            assert pools.try_parse(url) is None
            with pytest.raises(UrlParseError):
                pools.parse(url)
        else:
            assert pools.try_parse(url) == expected
            assert pools.parse(url) == expected
