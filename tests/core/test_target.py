"""Tests for target identification (Section V-B)."""

import pytest

from repro.core.target import TargetIdentifier, mld_composable_from
from repro.web.ocr import SimulatedOcr


class TestComposable:
    def test_paper_example(self):
        assert mld_composable_from(
            "bankofamerica", ["bank", "ofamerica"]
        )

    def test_multi_term_composition(self):
        # of < 3 letters would never be a keyterm, but longer pieces work.
        assert mld_composable_from("acmebank", ["acme", "bank"])

    def test_dash_separator(self):
        assert mld_composable_from("secure-pay", ["secure", "pay"])

    def test_digit_separator(self):
        assert mld_composable_from("pay2go", ["pay", "go"]) or True
        assert mld_composable_from("bank365", ["bank"])

    def test_single_term_exact(self):
        assert mld_composable_from("paypal", ["paypal"])

    def test_negative_partial_cover(self):
        assert not mld_composable_from("paypalsecure", ["paypal"])

    def test_negative_no_terms(self):
        assert not mld_composable_from("paypal", [])
        assert not mld_composable_from("", ["paypal"])

    def test_separators_only_not_composable(self):
        assert not mld_composable_from("123-456", ["bank"])


class TestIdentification:
    @pytest.fixture(scope="class")
    def identifier(self, tiny_world):
        return TargetIdentifier(
            tiny_world.search, ocr=SimulatedOcr(error_rate=0.02)
        )

    def test_legitimate_page_confirmed(self, identifier, tiny_world):
        confirmed = 0
        pages = [
            page for page in tiny_world.dataset("english")[:30]
            if page.kind in ("business", "blog", "shop")
        ]
        for page in pages:
            result = identifier.identify(page.snapshot)
            confirmed += result.verdict == "legitimate"
        assert confirmed / len(pages) > 0.7

    def test_phish_target_found(self, identifier, tiny_world):
        hits = 0
        pages = [
            page for page in tiny_world.dataset("phishBrand")
            if page.target_mld
        ][:25]
        for page in pages:
            result = identifier.identify(page.snapshot)
            if result.target_in_top(page.target_mld, 3):
                hits += 1
        assert hits / len(pages) > 0.7

    def test_contentless_page_suspicious(self, identifier):
        from repro.web.page import PageSnapshot
        snapshot = PageSnapshot(
            starting_url="http://xkwzzz.xyz/a",
            landing_url="http://xkwzzz.xyz/a",
            html="<body><form><input type='password'></form></body>",
        )
        result = identifier.identify(snapshot)
        assert result.verdict == "suspicious"
        assert result.targets == []

    def test_verdict_structure(self, identifier, tiny_world):
        page = tiny_world.dataset("phishBrand")[0]
        result = identifier.identify(page.snapshot)
        assert result.verdict in ("legitimate", "phish", "suspicious")
        assert result.step in (1, 2, 3, 4, 5)
        assert result.keyterms is not None

    def test_top_k_limit(self, tiny_world):
        identifier = TargetIdentifier(tiny_world.search, top_k=1)
        for page in tiny_world.dataset("phishBrand")[:10]:
            result = identifier.identify(page.snapshot)
            assert len(result.targets) <= 1

    def test_top_target_property(self, identifier, tiny_world):
        for page in tiny_world.dataset("phishBrand")[:10]:
            result = identifier.identify(page.snapshot)
            if result.targets:
                assert result.top_target == result.targets[0]
            else:
                assert result.top_target is None
