"""Tests for the phishing detector wrapper."""

import numpy as np
import pytest

from repro.core.detector import DEFAULT_THRESHOLD, PhishingDetector
from repro.core.features import FeatureExtractor


@pytest.fixture(scope="module")
def trained(tiny_world):
    extractor = FeatureExtractor(alexa=tiny_world.alexa)
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    detector = PhishingDetector(extractor, n_estimators=40)
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    return detector


class TestConfiguration:
    def test_default_threshold_is_paper_value(self):
        assert DEFAULT_THRESHOLD == 0.7
        assert PhishingDetector().threshold == 0.7

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PhishingDetector(threshold=1.5)

    def test_feature_set_masking(self):
        detector = PhishingDetector(feature_set="f1")
        assert int(detector.mask.sum()) == 106


class TestTraining:
    def test_fit_accepts_full_matrix(self, tiny_world):
        extractor = FeatureExtractor(alexa=tiny_world.alexa)
        train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
        X = extractor.extract_many(page.snapshot for page in train)
        detector = PhishingDetector(extractor, feature_set="f4",
                                    n_estimators=10)
        detector.fit(X, train.labels())  # 212 columns auto-masked
        assert detector.predict_proba(X).shape == (len(train),)

    def test_predict_rejects_wrong_width(self, trained):
        with pytest.raises(ValueError):
            trained.predict_proba(np.ones((2, 50)))


class TestPrediction:
    def test_separates_classes(self, trained, tiny_world):
        extractor = trained.extractor
        legit_X = extractor.extract_many(
            page.snapshot for page in tiny_world.dataset("english")[:40]
        )
        phish_X = extractor.extract_many(
            page.snapshot for page in tiny_world.dataset("phishTest")[:40]
        )
        assert trained.predict_proba(legit_X).mean() < 0.3
        assert trained.predict_proba(phish_X).mean() > 0.7

    def test_threshold_semantics(self, trained, tiny_world):
        X = trained.extractor.extract_many(
            page.snapshot for page in tiny_world.dataset("phishTest")[:20]
        )
        scores = trained.predict_proba(X)
        predictions = trained.predict(X)
        assert np.array_equal(
            predictions, (scores >= trained.threshold).astype(int)
        )

    def test_score_single_snapshot(self, trained, tiny_world):
        page = tiny_world.dataset("phishTest")[0]
        score = trained.score_snapshot(page.snapshot)
        assert 0.0 <= score <= 1.0

    def test_classify_snapshot(self, trained, tiny_world):
        phish_page = tiny_world.dataset("phishTest")[0]
        assert trained.classify_snapshot(phish_page.snapshot) in (True, False)

    def test_1d_vector_accepted(self, trained, tiny_world):
        vector = trained.extractor.extract(
            tiny_world.dataset("english")[0].snapshot
        )
        assert trained.predict_proba(vector).shape == (1,)
