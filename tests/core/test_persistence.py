"""Tests for detector/model persistence."""

import numpy as np
import pytest

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.ml.boosting import GradientBoostingClassifier


class TestModelSerialisation:
    def _fitted(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 8))
        y = (X[:, 0] > 0).astype(int)
        model = GradientBoostingClassifier(
            n_estimators=20, random_state=0
        ).fit(X, y)
        return model, X

    def test_roundtrip_identical_predictions(self):
        model, X = self._fitted()
        rebuilt = GradientBoostingClassifier.from_dict(model.to_dict())
        assert np.array_equal(model.predict_proba(X), rebuilt.predict_proba(X))

    def test_dict_is_json_safe(self):
        import json
        model, _X = self._fitted()
        json.dumps(model.to_dict())  # must not raise

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().to_dict()

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier.from_dict({"trees": []})


class TestDetectorPersistence:
    @pytest.fixture(scope="class")
    def trained(self, tiny_world):
        extractor = FeatureExtractor(alexa=tiny_world.alexa)
        train = (
            tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
        )
        detector = PhishingDetector(
            extractor, feature_set="f1,5", threshold=0.65, n_estimators=25
        )
        detector.fit_snapshots(
            [page.snapshot for page in train], train.labels()
        )
        return detector

    def test_roundtrip(self, trained, tiny_world, tmp_path):
        path = tmp_path / "detector.json"
        trained.save(path)
        loaded = PhishingDetector.load(path, extractor=trained.extractor)
        assert loaded.feature_set == "f1,5"
        assert loaded.threshold == 0.65

        test = tiny_world.dataset("phishTest").subset(range(10))
        X = trained.extractor.extract_many(page.snapshot for page in test)
        assert np.array_equal(
            trained.predict_proba(X), loaded.predict_proba(X)
        )

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            PhishingDetector.load(path)

    def test_loaded_detector_classifies_snapshots(
        self, trained, tiny_world, tmp_path
    ):
        path = tmp_path / "detector.json"
        trained.save(path)
        loaded = PhishingDetector.load(path, extractor=trained.extractor)
        page = tiny_world.dataset("phishTest")[0]
        assert loaded.score_snapshot(page.snapshot) == pytest.approx(
            trained.score_snapshot(page.snapshot)
        )
