"""Tests for data-source derivation (Table I / Table II)."""

import pytest

from repro.core.datasources import (
    ALL_DISTRIBUTION_NAMES,
    F2_DISTRIBUTION_NAMES,
    DataSources,
)
from repro.web.ocr import SimulatedOcr
from repro.web.page import PageSnapshot, Screenshot


def make_snapshot(**overrides):
    defaults = dict(
        starting_url="http://start.example.com/welcome/page",
        landing_url="https://www.landing.example.org/account/login?id=5",
        redirection_chain=[
            "http://start.example.com/welcome/page",
            "https://www.landing.example.org/account/login?id=5",
        ],
        logged_links=[
            "https://www.landing.example.org/css/site.css",
            "https://cdn.thirdparty.net/lib.js",
        ],
        html=(
            "<title>Landing Example</title><body>"
            "<p>welcome to landing example account services</p>"
            "<a href='https://www.landing.example.org/help'>help</a>"
            "<a href='https://other.partner.com/deal'>deal</a>"
            "<p>© 2015 Landing Example</p></body>"
        ),
        screenshot=Screenshot(rendered_text="Landing Example welcome"),
    )
    defaults.update(overrides)
    return PageSnapshot(**defaults)


class TestControlPartition:
    def test_chain_rdns_are_controlled(self):
        sources = DataSources(make_snapshot())
        assert "example.com" in sources.controlled_identities
        assert "example.org" in sources.controlled_identities

    def test_internal_external_logged(self):
        sources = DataSources(make_snapshot())
        internal = [url.raw for url in sources.internal_logged]
        external = [url.raw for url in sources.external_logged]
        assert any("landing.example.org" in url for url in internal)
        assert any("thirdparty.net" in url for url in external)

    def test_internal_external_href(self):
        sources = DataSources(make_snapshot())
        assert len(sources.internal_href) == 1
        assert len(sources.external_href) == 1

    def test_unparsable_links_skipped(self):
        snapshot = make_snapshot(logged_links=["::::bad::::", "http://ok.com/x"])
        sources = DataSources(snapshot)
        assert len(sources.logged_links) == 1


class TestDistributions:
    def test_all_names_resolvable(self):
        sources = DataSources(make_snapshot())
        for name in ALL_DISTRIBUTION_NAMES:
            sources.distribution(name)  # must not raise

    def test_f2_excludes_copyright_and_image(self):
        assert "copyright" not in F2_DISTRIBUTION_NAMES
        assert "image" not in F2_DISTRIBUTION_NAMES
        assert len(F2_DISTRIBUTION_NAMES) == 12

    def test_text_distribution(self):
        sources = DataSources(make_snapshot())
        assert "welcome" in sources.d_text
        assert "account" in sources.d_text

    def test_title_distribution(self):
        sources = DataSources(make_snapshot())
        assert "landing" in sources.d_title

    def test_copyright_distribution(self):
        sources = DataSources(make_snapshot())
        assert "landing" in sources.d_copyright

    def test_freeurl_distributions(self):
        sources = DataSources(make_snapshot())
        assert "welcome" in sources.d_start        # path of starting URL
        assert "account" in sources.d_land          # path of landing URL
        assert "login" in sources.d_land

    def test_rdn_distributions(self):
        sources = DataSources(make_snapshot())
        assert "example" in sources.d_startrdn
        assert "example" in sources.d_landrdn
        # suffixes shorter than 3 letters are discarded by term extraction
        assert "org" in sources.d_landrdn

    def test_extrdn_covers_logged_only(self):
        sources = DataSources(make_snapshot())
        assert "thirdparty" in sources.d_extrdn
        # partner.com is an external *HREF* link, not a logged link.
        assert "partner" not in sources.d_extrdn

    def test_image_distribution_requires_ocr(self):
        sources = DataSources(make_snapshot())
        assert not sources.d_image
        with_ocr = DataSources(make_snapshot(), ocr=SimulatedOcr(error_rate=0))
        assert "welcome" in with_ocr.d_image

    def test_unknown_distribution_raises(self):
        with pytest.raises(KeyError):
            DataSources(make_snapshot()).distribution("bogus")


class TestIpUrls:
    def test_ip_rdn_distributions_empty(self):
        snapshot = make_snapshot(
            starting_url="http://192.168.3.4/login",
            landing_url="http://192.168.3.4/login",
            redirection_chain=["http://192.168.3.4/login"],
        )
        sources = DataSources(snapshot)
        assert not sources.d_startrdn
        assert not sources.d_landrdn

    def test_ip_identity_used_for_control(self):
        snapshot = make_snapshot(
            starting_url="http://192.168.3.4/login",
            landing_url="http://192.168.3.4/login",
            redirection_chain=["http://192.168.3.4/login"],
            logged_links=["http://192.168.3.4/logo.png",
                          "http://other.com/x.js"],
        )
        sources = DataSources(snapshot)
        assert len(sources.internal_logged) == 1
        assert len(sources.external_logged) == 1
