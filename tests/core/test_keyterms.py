"""Tests for keyterm extraction (Section V-A)."""

import pytest

from repro.core.datasources import DataSources
from repro.core.keyterms import KeytermExtractor
from repro.web.ocr import SimulatedOcr
from repro.web.page import PageSnapshot, Screenshot


def brand_page():
    """A page where 'acmebank' appears in URL, title, text and links."""
    return PageSnapshot(
        starting_url="https://www.acmebank.com/welcome",
        landing_url="https://www.acmebank.com/welcome",
        html=(
            "<title>acmebank online banking</title><body>"
            "<p>acmebank accounts savings banking services acmebank</p>"
            "<a href='https://www.acmebank.com/acmebank/accounts'>accounts</a>"
            "<p>© 2015 acmebank</p></body>"
        ),
        screenshot=Screenshot(rendered_text="acmebank online banking"),
    )


def news_page():
    """Link anchors mirror URLs: the text∩links noise case."""
    return PageSnapshot(
        starting_url="https://www.dailynews.com/",
        landing_url="https://www.dailynews.com/",
        html=(
            "<title>dailynews</title><body>"
            "<p>sports politics weather dailynews</p>"
            "<a href='https://www.dailynews.com/sports'>sports</a>"
            "<a href='https://www.dailynews.com/politics'>politics</a>"
            "<a href='https://www.dailynews.com/weather'>weather</a>"
            "</body>"
        ),
    )


class TestKeytermExtraction:
    def test_boosted_prominent_finds_brand(self):
        sources = DataSources(brand_page())
        keyterms = KeytermExtractor().extract(sources)
        assert "acmebank" in keyterms.boosted_prominent

    def test_n_terms_respected(self):
        sources = DataSources(brand_page())
        keyterms = KeytermExtractor(n_terms=2).extract(sources)
        assert len(keyterms.boosted_prominent) <= 2
        assert len(keyterms.prominent) <= 2

    def test_prominent_discards_text_links_only_cooccurrence(self):
        sources = DataSources(news_page())
        keyterms = KeytermExtractor(n_terms=10).extract(sources)
        # "sports" occurs in text and links only -> boosted yes, prominent no.
        assert "sports" in keyterms.boosted_prominent
        assert "sports" not in keyterms.prominent
        # "dailynews" occurs in URL+title+text -> in both lists.
        assert "dailynews" in keyterms.prominent

    def test_ocr_prominent_requires_ocr(self):
        sources = DataSources(brand_page())
        without = KeytermExtractor().extract(sources)
        assert without.ocr_prominent == []
        with_ocr = KeytermExtractor(
            ocr=SimulatedOcr(error_rate=0.0)
        ).extract(sources)
        assert "acmebank" in with_ocr.ocr_prominent

    def test_image_based_page_ocr_terms(self):
        snapshot = PageSnapshot(
            starting_url="http://xkw.xyz/a",
            landing_url="http://xkw.xyz/a",
            html="<title>acmebank</title><body></body>",
            screenshot=Screenshot(image_texts=("acmebank verify account",)),
        )
        keyterms = KeytermExtractor(
            ocr=SimulatedOcr(error_rate=0.0)
        ).extract(DataSources(snapshot))
        assert "acmebank" in keyterms.ocr_prominent

    def test_empty_page(self):
        snapshot = PageSnapshot(
            starting_url="http://x.com/", landing_url="http://x.com/",
            html="",
        )
        keyterms = KeytermExtractor().extract(DataSources(snapshot))
        assert keyterms.prominent == [] or keyterms.prominent

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            KeytermExtractor(n_terms=0)

    def test_frequency_ranking(self):
        # 'acmebank' repeats most -> ranked first.
        sources = DataSources(brand_page())
        keyterms = KeytermExtractor().extract(sources)
        assert keyterms.boosted_prominent[0] == "acmebank"

    def test_source_term_sets_structure(self):
        sets = KeytermExtractor.source_term_sets(DataSources(brand_page()))
        assert set(sets) == {"url", "title", "text", "copyright", "links"}
        assert "acmebank" in sets["url"]
        assert "acmebank" in sets["copyright"]

    def test_language_independence(self, tiny_world):
        """Keyterm extraction needs no dictionary: it works unchanged on
        non-English pages (the paper's language-independence claim)."""
        extractor = KeytermExtractor()
        for language in ("french", "german", "spanish"):
            hits = 0
            pages = [
                page for page in tiny_world.dataset(language)[:10]
                if page.kind in ("business", "blog", "shop")
            ]
            for page in pages:
                keyterms = extractor.extract(DataSources(page.snapshot))
                if keyterms.boosted_prominent:
                    hits += 1
            assert hits >= len(pages) - 1, language
