"""Tests for the fault-tolerant DOM builder."""

from repro.html.dom import HtmlNode, parse_html


class TestParsing:
    def test_simple_nesting(self):
        root = parse_html("<html><body><p>hello</p></body></html>")
        paragraph = root.find("p")
        assert paragraph is not None
        assert paragraph.text() == "hello"

    def test_attributes_lowercased(self):
        root = parse_html('<a HREF="/x" Class="y">z</a>')
        anchor = root.find("a")
        assert anchor.get("href") == "/x"
        assert anchor.get("class") == "y"

    def test_get_default(self):
        root = parse_html("<p>x</p>")
        assert root.find("p").get("missing", "fallback") == "fallback"

    def test_void_elements_take_no_children(self):
        root = parse_html("<img src='a.png'><p>after</p>")
        image = root.find("img")
        assert image.children == []
        assert root.find("p") is not None

    def test_self_closing(self):
        root = parse_html("<div><br/><input type='text'/></div>")
        assert root.find("br") is not None
        assert root.find("input").get("type") == "text"

    def test_unclosed_tags_closed_at_eof(self):
        root = parse_html("<div><p>unclosed")
        assert root.find("p").text() == "unclosed"

    def test_stray_end_tag_ignored(self):
        root = parse_html("<div>text</span></div>")
        assert root.find("div").text() == "text"

    def test_mismatched_nesting(self):
        root = parse_html("<b><i>x</b></i>")
        assert root.find("i") is not None

    def test_empty_and_none_input(self):
        assert parse_html("").children == []
        assert parse_html(None).children == []

    def test_entity_references_converted(self):
        root = parse_html("<p>a &amp; b</p>")
        assert "a & b" in root.find("p").text()


class TestTraversal:
    def test_find_all(self):
        root = parse_html("<ul><li>1</li><li>2</li><li>3</li></ul>")
        assert len(root.find_all("li")) == 3

    def test_find_first(self):
        root = parse_html("<p id='a'>x</p><p id='b'>y</p>")
        assert root.find("p").get("id") == "a"

    def test_find_missing_returns_none(self):
        assert parse_html("<p>x</p>").find("table") is None

    def test_iter_nodes_includes_self(self):
        root = parse_html("<div><p>x</p></div>")
        tags = [node.tag for node in root.iter_nodes()]
        assert tags == ["#document", "div", "p"]

    def test_parent_links(self):
        root = parse_html("<div><p>x</p></div>")
        paragraph = root.find("p")
        assert paragraph.parent.tag == "div"


class TestTextExtraction:
    def test_script_and_style_excluded(self):
        root = parse_html(
            "<body><script>var x=1;</script><style>p{}</style><p>seen</p></body>"
        )
        assert root.text() == "seen"

    def test_head_excluded(self):
        root = parse_html(
            "<html><head><title>t</title></head><body>visible</body></html>"
        )
        body = root.find("body")
        assert body.text() == "visible"

    def test_separator(self):
        root = parse_html("<p>a</p><p>b</p>")
        assert root.text(separator="|") == "a|b"

    def test_whitespace_stripped(self):
        root = parse_html("<p>  spaced  </p>")
        assert root.text() == "spaced"

    def test_node_construction(self):
        node = HtmlNode("div", {"id": "x"})
        assert node.tag == "div"
        assert node.get("id") == "x"
