"""Tests for webpage-element extraction (Section II-C data sources)."""

from repro.html.extract import extract_elements, find_copyright

PAGE = """
<html><head>
  <title>My Bank - secure banking</title>
  <link rel="stylesheet" href="/css/site.css">
  <script src="https://cdn.example.net/lib.js"></script>
</head><body>
  <h1>Welcome</h1>
  <p>Manage your account online.</p>
  <a href="/accounts">Accounts</a>
  <a href="https://partner.example.org/offer">Partner</a>
  <a href="javascript:void(0)">JS</a>
  <a href="mailto:help@mybank.com">Mail</a>
  <img src="/img/logo.png">
  <img src="http://ads.example.com/banner.png">
  <iframe src="/frames/help.html"></iframe>
  <form action="/login" method="post">
    <input type="text" name="user">
    <input type="password" name="pass">
    <input type="hidden" name="csrf">
    <textarea name="notes"></textarea>
  </form>
  <p>© 2015 MyBank Inc. All rights reserved.</p>
</body></html>
"""


class TestExtractElements:
    def setup_method(self):
        self.elements = extract_elements(PAGE, base_url="https://mybank.com/home")

    def test_title(self):
        assert self.elements.title == "My Bank - secure banking"

    def test_text_contains_body_content(self):
        assert "Manage your account online." in self.elements.text

    def test_text_excludes_title(self):
        assert "secure banking" not in self.elements.text

    def test_href_links_absolutized(self):
        assert "https://mybank.com/accounts" in self.elements.href_links

    def test_href_links_keep_absolute(self):
        assert "https://partner.example.org/offer" in self.elements.href_links

    def test_pseudo_links_dropped(self):
        joined = " ".join(self.elements.href_links)
        assert "javascript:" not in joined
        assert "mailto:" not in joined

    def test_resources_include_css_script_img_iframe(self):
        resources = self.elements.resource_links
        assert "https://mybank.com/css/site.css" in resources
        assert "https://cdn.example.net/lib.js" in resources
        assert "https://mybank.com/img/logo.png" in resources
        assert "http://ads.example.com/banner.png" in resources
        assert "https://mybank.com/frames/help.html" in resources

    def test_iframe_links(self):
        assert self.elements.iframe_links == ["https://mybank.com/frames/help.html"]

    def test_input_count_excludes_hidden(self):
        # text + password + textarea = 3 (hidden excluded)
        assert self.elements.input_count == 3

    def test_image_count(self):
        assert self.elements.image_count == 2

    def test_iframe_count(self):
        assert self.elements.iframe_count == 1

    def test_form_action(self):
        assert self.elements.form_actions == ["https://mybank.com/login"]

    def test_copyright(self):
        assert "MyBank Inc" in self.elements.copyright_notice


class TestEdgeCases:
    def test_empty_page(self):
        elements = extract_elements("", base_url="http://x.com/")
        assert elements.title == ""
        assert elements.text == ""
        assert elements.href_links == []

    def test_no_base_url_keeps_absolute_only(self):
        html = '<a href="/rel">r</a><a href="http://abs.com/x">a</a>'
        elements = extract_elements(html)
        assert elements.href_links == ["http://abs.com/x"]

    def test_malformed_html_does_not_raise(self):
        elements = extract_elements("<a href='x<<><p>>bad", base_url="http://x.com")
        assert isinstance(elements.href_links, list)

    def test_data_uri_dropped(self):
        html = '<img src="data:image/png;base64,AAAA">'
        elements = extract_elements(html, base_url="http://x.com/")
        assert elements.resource_links == []
        assert elements.image_count == 1


class TestFindCopyright:
    def test_symbol(self):
        assert find_copyright("line one\n© 2015 Acme\nmore") == "© 2015 Acme"

    def test_word(self):
        assert "Copyright" in find_copyright("Copyright 2014 Acme Corp")

    def test_parenthetical(self):
        assert find_copyright("(c) Acme") == "(c) Acme"

    def test_all_rights_reserved(self):
        assert find_copyright("Acme. All Rights Reserved.") != ""

    def test_absent(self):
        assert find_copyright("no notice here") == ""

    def test_empty(self):
        assert find_copyright("") == ""
