"""Tests for the retry policy, deadlines and injectable clocks."""

import pytest

from repro.resilience.clock import ManualClock, SystemClock
from repro.resilience.errors import (
    DeadlineExceeded,
    FetchTimeout,
    PermanentFetchError,
)
from repro.resilience.retry import Deadline, RetryPolicy


class TestManualClock:
    def test_sleep_advances_instantly(self):
        clock = ManualClock()
        clock.sleep(5.0)
        assert clock.now() == 5.0

    def test_advance(self):
        clock = ManualClock(start=10.0)
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_rewind_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_system_clock_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        clock.sleep(0.0)
        assert clock.now() >= a


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = ManualClock()
        deadline = Deadline(10.0, clock=clock)
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(6.0)
        assert not deadline.expired()

    def test_expires(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.5)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check("scrape")

    def test_unlimited(self):
        deadline = Deadline(None, clock=ManualClock())
        assert deadline.remaining() is None
        assert not deadline.expired()
        assert deadline.allows(1e9)

    def test_allows(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.allows(0.5)
        assert not deadline.allows(2.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestRetryPolicy:
    def test_succeeds_first_try(self):
        policy = RetryPolicy(clock=ManualClock())
        outcome = policy.call(lambda: 42)
        assert outcome.result == 42
        assert outcome.attempts == 1
        assert outcome.total_delay == 0.0

    def test_retries_transient_until_success(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=5, clock=clock)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise FetchTimeout("http://x.com/")
            return "ok"

        outcome = policy.call(flaky)
        assert outcome.result == "ok"
        assert outcome.attempts == 3
        assert outcome.total_delay > 0
        assert clock.now() == pytest.approx(outcome.total_delay)

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=3, clock=ManualClock())
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise FetchTimeout("http://x.com/")

        with pytest.raises(FetchTimeout):
            policy.call(always_fails)
        assert calls["n"] == 3

    def test_permanent_error_not_retried(self):
        policy = RetryPolicy(max_attempts=5, clock=ManualClock())
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise PermanentFetchError("http://x.com/")

        with pytest.raises(PermanentFetchError):
            policy.call(dead)
        assert calls["n"] == 1

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0,
            clock=ManualClock(),
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_delay_capped(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=10.0, max_delay=3.0, jitter=0,
            clock=ManualClock(),
        )
        assert policy.delay(5) == 3.0

    def test_jitter_within_bounds_and_seeded(self):
        delays_a = [
            RetryPolicy(base_delay=1.0, jitter=0.5, seed=3,
                        clock=ManualClock()).delay(1)
            for _ in range(1)
        ]
        delays_b = [
            RetryPolicy(base_delay=1.0, jitter=0.5, seed=3,
                        clock=ManualClock()).delay(1)
            for _ in range(1)
        ]
        assert delays_a == delays_b
        assert all(0.5 <= d <= 1.0 for d in delays_a)

    def test_deadline_blocks_backoff_sleep(self):
        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=10, base_delay=5.0, jitter=0, clock=clock
        )
        deadline = Deadline(1.0, clock=clock)

        def always_fails():
            raise FetchTimeout("http://x.com/")

        with pytest.raises(DeadlineExceeded) as excinfo:
            policy.call(always_fails, deadline=deadline)
        assert isinstance(excinfo.value.__cause__, FetchTimeout)

    def test_expired_deadline_stops_next_attempt(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, clock=clock)
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded):
            policy.call(lambda: 1, deadline=deadline)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
