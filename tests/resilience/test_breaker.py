"""Tests for the circuit breaker and the guarded search engine."""

import pytest

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import ManualClock
from repro.resilience.errors import CircuitOpenError, SearchUnavailableError
from repro.resilience.search import GuardedSearchEngine
from repro.web.faults import FlakySearchEngine
from repro.web.search import SearchEngine


def _failing():
    raise SearchUnavailableError("down")


class TestCircuitBreaker:
    def test_starts_closed_and_passes_calls(self):
        breaker = CircuitBreaker(clock=ManualClock())
        assert breaker.state == "closed"
        assert breaker.call(lambda: "ok") == "ok"

    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(
            failure_threshold=3, clock=ManualClock(),
            failure_types=(SearchUnavailableError,),
        )
        for _ in range(3):
            with pytest.raises(SearchUnavailableError):
                breaker.call(_failing)
        assert breaker.state == "open"
        assert breaker.stats["trips"] == 1

    def test_open_circuit_fails_fast(self):
        breaker = CircuitBreaker(
            failure_threshold=1, clock=ManualClock(),
            failure_types=(SearchUnavailableError,),
        )
        with pytest.raises(SearchUnavailableError):
            breaker.call(_failing)
        calls = {"n": 0}

        def counted():
            calls["n"] += 1

        with pytest.raises(CircuitOpenError):
            breaker.call(counted)
        assert calls["n"] == 0
        assert breaker.stats["rejected"] == 1

    def test_half_open_probe_success_closes(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=10.0, clock=clock,
            failure_types=(SearchUnavailableError,),
        )
        with pytest.raises(SearchUnavailableError):
            breaker.call(_failing)
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=10.0, clock=clock,
            failure_types=(SearchUnavailableError,),
        )
        for _ in range(2):
            with pytest.raises(SearchUnavailableError):
                breaker.call(_failing)
        clock.advance(10.0)
        # One failed probe re-opens immediately (below the threshold).
        with pytest.raises(SearchUnavailableError):
            breaker.call(_failing)
        assert breaker.state == "open"
        assert breaker.stats["trips"] == 2

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(
            failure_threshold=2, clock=ManualClock(),
            failure_types=(SearchUnavailableError,),
        )
        with pytest.raises(SearchUnavailableError):
            breaker.call(_failing)
        breaker.call(lambda: "ok")
        with pytest.raises(SearchUnavailableError):
            breaker.call(_failing)
        assert breaker.state == "closed"

    def test_unexpected_errors_do_not_count(self):
        breaker = CircuitBreaker(
            failure_threshold=1, clock=ManualClock(),
            failure_types=(SearchUnavailableError,),
        )

        def boom():
            raise KeyError("bug, not outage")

        with pytest.raises(KeyError):
            breaker.call(boom)
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestGuardedSearchEngine:
    @pytest.fixture()
    def engine(self):
        engine = SearchEngine()
        engine.index_page("http://paypal.com/", "paypal secure payment login")
        engine.index_page("http://bank.com/", "bank account online login")
        return engine

    def test_passthrough_when_healthy(self, engine):
        guarded = GuardedSearchEngine(engine, clock=ManualClock())
        rdns = guarded.result_rdns(["paypal"])
        assert "paypal.com" in rdns
        assert len(guarded) == 2

    def test_opens_after_outages_then_fails_fast(self, engine):
        flaky = FlakySearchEngine(engine, forced_down=True)
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=3, recovery_time=60.0, clock=clock,
            failure_types=(SearchUnavailableError,),
        )
        guarded = GuardedSearchEngine(flaky, breaker=breaker)
        for _ in range(3):
            with pytest.raises(SearchUnavailableError):
                guarded.query(["paypal"])
        # Circuit now open: the inner engine is no longer hit.
        with pytest.raises(CircuitOpenError):
            guarded.query(["paypal"])
        assert flaky.stats["outages"] == 3

    def test_recovers_after_cooldown(self, engine):
        flaky = FlakySearchEngine(engine, forced_down=True)
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=30.0, clock=clock,
            failure_types=(SearchUnavailableError,),
        )
        guarded = GuardedSearchEngine(flaky, breaker=breaker)
        with pytest.raises(SearchUnavailableError):
            guarded.query(["paypal"])
        flaky.restore()
        clock.advance(30.0)
        assert "paypal.com" in guarded.result_rdns(["paypal"])
        assert breaker.state == "closed"

    def test_result_mlds(self, engine):
        guarded = GuardedSearchEngine(engine, clock=ManualClock())
        assert "paypal" in guarded.result_mlds(["paypal"])


class TestTransitionEvents:
    def _tripped(self, metrics=None):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=30.0, clock=clock,
            failure_types=(SearchUnavailableError,), name="search",
            metrics=metrics,
        )
        for _ in range(2):
            with pytest.raises(SearchUnavailableError):
                breaker.call(_failing)
        return breaker, clock

    def test_opened_count_counts_every_entry_into_open(self):
        breaker, clock = self._tripped()
        assert breaker.opened_count == 1
        clock.advance(31.0)
        assert breaker.state == "half-open"
        with pytest.raises(SearchUnavailableError):
            breaker.call(_failing)           # failed probe re-opens
        assert breaker.opened_count == 2
        assert breaker.transitions == {
            "closed->open": 1,
            "open->half-open": 1,
            "half-open->open": 1,
        }

    def test_successful_probe_closes_without_opening(self):
        breaker, clock = self._tripped()
        clock.advance(31.0)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == "closed"
        assert breaker.opened_count == 1
        assert breaker.transitions["half-open->closed"] == 1

    def test_success_in_closed_state_records_no_transition(self):
        breaker = CircuitBreaker(clock=ManualClock())
        breaker.call(lambda: "ok")
        breaker.call(lambda: "ok")
        assert breaker.transitions == {}
        assert breaker.opened_count == 0

    def test_transitions_feed_the_metrics_registry(self):
        from repro.obs import MetricsRegistry
        from repro.resilience.breaker import STATE_GAUGE

        metrics = MetricsRegistry()
        breaker, clock = self._tripped(metrics=metrics)
        assert metrics.counter_value(
            "breaker_transitions_total", name="search", to="open"
        ) == 1.0
        assert metrics.gauge_value(
            "breaker_state", name="search") == STATE_GAUGE["open"]
        clock.advance(31.0)
        assert breaker.state == "half-open"
        assert metrics.gauge_value(
            "breaker_state", name="search") == STATE_GAUGE["half-open"]
        breaker.call(lambda: "ok")
        assert metrics.gauge_value(
            "breaker_state", name="search") == STATE_GAUGE["closed"]
        assert metrics.counter_total("breaker_transitions_total") == 3.0
