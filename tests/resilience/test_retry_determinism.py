"""RetryPolicy.delay is a pure function of (seed, attempt).

The backoff schedule must not depend on execution history or on which
pool backend runs the policy: a policy pickled to a process worker, or
shared across threads, backs off exactly like the original.  These
tests pin that contract.
"""

import pickle
import threading

import pytest

from repro.resilience.clock import ManualClock
from repro.resilience.errors import TransientFetchError
from repro.resilience.retry import RetryPolicy

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:          # pragma: no cover - hypothesis is a dev dep
    HAVE_HYPOTHESIS = False

ATTEMPTS = range(1, 9)


def _policy(seed: int = 0, clock=None) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=8, base_delay=0.05, multiplier=2.0, max_delay=2.0,
        jitter=0.5, clock=clock or ManualClock(), seed=seed,
    )


class TestDelayPurity:
    def test_repeated_calls_agree(self):
        policy = _policy()
        first = [policy.delay(a) for a in ATTEMPTS]
        assert first == [policy.delay(a) for a in ATTEMPTS]

    def test_call_order_is_irrelevant(self):
        forward = [_policy().delay(a) for a in ATTEMPTS]
        backward = [_policy().delay(a) for a in reversed(ATTEMPTS)]
        assert forward == list(reversed(backward))

    def test_running_retries_does_not_perturb_the_schedule(self):
        policy = _policy()
        before = [policy.delay(a) for a in ATTEMPTS]
        failures = iter([TransientFetchError("x")] * 3)

        def flaky():
            try:
                raise next(failures)
            except StopIteration:
                return "ok"

        assert policy.call(flaky).result == "ok"
        assert [policy.delay(a) for a in ATTEMPTS] == before

    def test_pickled_policy_backs_off_identically(self):
        policy = _policy(seed=13)
        clone = pickle.loads(pickle.dumps(policy))
        assert [clone.delay(a) for a in ATTEMPTS] \
            == [policy.delay(a) for a in ATTEMPTS]

    def test_threads_read_the_same_schedule(self):
        policy = _policy(seed=5)
        expected = [policy.delay(a) for a in ATTEMPTS]
        results = {}

        def worker(index):
            results[index] = [policy.delay(a) for a in ATTEMPTS]

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert all(results[i] == expected for i in range(8))

    def test_different_seeds_jitter_differently(self):
        assert [_policy(seed=1).delay(a) for a in ATTEMPTS] \
            != [_policy(seed=2).delay(a) for a in ATTEMPTS]


if HAVE_HYPOTHESIS:

    class TestDelayPurityProperty:
        @settings(max_examples=200, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            attempt=st.integers(min_value=1, max_value=32),
        )
        def test_delay_pure_and_bounded(self, seed, attempt):
            policy = _policy(seed=seed)
            delay = policy.delay(attempt)
            # Pure: same (seed, attempt) -> same delay, fresh instance
            # or pickled clone alike.
            assert _policy(seed=seed).delay(attempt) == delay
            assert pickle.loads(pickle.dumps(policy)).delay(attempt) == delay
            # Bounded: inside [raw * (1 - jitter), raw].
            raw = min(
                policy.max_delay,
                policy.base_delay * policy.multiplier ** (attempt - 1),
            )
            assert raw * (1 - policy.jitter) <= delay <= raw

        @settings(max_examples=100, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=2**31 - 1),
            order=st.permutations(list(range(1, 9))),
        )
        def test_delay_independent_of_evaluation_order(self, seed, order):
            policy = _policy(seed=seed)
            by_order = {a: policy.delay(a) for a in order}
            fresh = _policy(seed=seed)
            assert {a: fresh.delay(a) for a in sorted(order)} == by_order

else:                        # pragma: no cover - hypothesis is a dev dep

    @pytest.mark.skip(reason="hypothesis not installed")
    def test_delay_purity_property():
        pass
