"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.resilience.errors import (
    OcrFailure,
    PermanentFetchError,
    SearchUnavailableError,
    TransientFetchError,
)
from repro.resilience.clock import ManualClock
from repro.web.faults import (
    MISSING_SCREENSHOT,
    TRUNCATED_HTML,
    FaultPlan,
    FlakyOcr,
    FlakySearchEngine,
    FlakyWeb,
)
from repro.web.hosting import SyntheticWeb
from repro.web.ocr import SimulatedOcr
from repro.web.page import Screenshot
from repro.web.search import SearchEngine


@pytest.fixture()
def web():
    web = SyntheticWeb()
    web.host("http://a.com/", "<title>A</title>" + "x" * 1000,
             Screenshot(rendered_text="hello world"))
    web.host("http://b.com/", "<title>B</title>")
    return web


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(timeout_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_consecutive_transient=0)

    def test_transient_splits_rate(self):
        plan = FaultPlan.transient(0.3)
        assert plan.transient_rate == pytest.approx(0.3)
        assert plan.truncate_rate == 0.0

    def test_degraded_content_plan(self):
        plan = FaultPlan.degraded_content(0.4)
        assert plan.truncate_rate == 0.4
        assert plan.drop_screenshot_rate == 0.4
        assert plan.transient_rate == 0.0


class TestFlakyWebTransient:
    def test_zero_rate_is_transparent(self, web):
        flaky = FlakyWeb(web, FaultPlan())
        page = flaky.get("http://a.com/")
        assert page is web.get("http://a.com/")
        assert flaky.pop_degradations() == []

    def test_faults_injected_at_high_rate(self, web):
        flaky = FlakyWeb(web, FaultPlan.transient(0.9, seed=1))
        errors = 0
        for _ in range(20):
            try:
                flaky.get("http://a.com/")
            except TransientFetchError:
                errors += 1
        assert errors > 0
        assert sum(
            flaky.stats[k] for k in ("timeout", "reset", "server_error")
        ) == errors

    def test_deterministic_per_seed(self, web):
        def trace(seed):
            flaky = FlakyWeb(web, FaultPlan.transient(0.5, seed=seed))
            out = []
            for _ in range(30):
                try:
                    flaky.get("http://a.com/")
                    out.append("ok")
                except TransientFetchError as e:
                    out.append(type(e).__name__)
            return out

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_consecutive_faults_bounded(self, web):
        plan = FaultPlan.transient(0.99, seed=3, max_consecutive_transient=2)
        flaky = FlakyWeb(web, plan)
        consecutive = longest = 0
        for _ in range(60):
            try:
                flaky.get("http://a.com/")
                consecutive = 0
            except TransientFetchError:
                consecutive += 1
                longest = max(longest, consecutive)
        assert longest <= 2

    def test_missing_url_still_none(self, web):
        flaky = FlakyWeb(web, FaultPlan.transient(0.9, seed=1))
        assert flaky.get("http://nope.com/") is None


class TestFlakyWebPermanent:
    def test_permanently_dead_urls_never_heal(self, web):
        flaky = FlakyWeb(web, FaultPlan(seed=0, permanent_rate=1.0))
        for _ in range(3):
            with pytest.raises(PermanentFetchError):
                flaky.get("http://a.com/")
        assert flaky.stats["permanent"] == 3


class TestFlakyWebDegradation:
    def test_truncation_degrades_copy_not_registry(self, web):
        plan = FaultPlan(seed=0, truncate_rate=1.0, truncate_fraction=0.1)
        flaky = FlakyWeb(web, plan)
        page = flaky.get("http://a.com/")
        original = web.get("http://a.com/")
        assert len(page.html) < len(original.html)
        assert len(original.html) > 1000  # registry untouched
        assert TRUNCATED_HTML in flaky.pop_degradations()

    def test_screenshot_dropped(self, web):
        plan = FaultPlan(seed=0, drop_screenshot_rate=1.0)
        flaky = FlakyWeb(web, plan)
        page = flaky.get("http://a.com/")
        assert page.screenshot.full_text == ""
        assert MISSING_SCREENSHOT in flaky.pop_degradations()

    def test_slow_response_charges_clock(self, web):
        clock = ManualClock()
        plan = FaultPlan(seed=0, slow_rate=1.0, slow_delay=2.0)
        flaky = FlakyWeb(web, plan, clock=clock)
        flaky.get("http://a.com/")
        assert clock.now() == pytest.approx(2.0)

    def test_pop_degradations_drains(self, web):
        plan = FaultPlan(seed=0, truncate_rate=1.0)
        flaky = FlakyWeb(web, plan)
        flaky.get("http://a.com/")
        assert flaky.pop_degradations() != []
        assert flaky.pop_degradations() == []


class TestFlakyWebDelegation:
    def test_registry_surface_delegates(self, web):
        flaky = FlakyWeb(web, FaultPlan())
        assert len(flaky) == 2
        assert "http://a.com/" in flaky
        assert set(flaky.urls()) == set(web.urls())
        flaky.host("http://c.com/", "<title>C</title>")
        assert "http://c.com/" in web


class TestFlakySearchEngine:
    @pytest.fixture()
    def engine(self):
        engine = SearchEngine()
        engine.index_page("http://paypal.com/", "paypal login")
        return engine

    def test_forced_down(self, engine):
        flaky = FlakySearchEngine(engine, forced_down=True)
        with pytest.raises(SearchUnavailableError):
            flaky.query(["paypal"])
        flaky.restore()
        assert flaky.query(["paypal"])

    def test_outage_rate_deterministic(self, engine):
        def outages(seed):
            flaky = FlakySearchEngine(engine, outage_rate=0.5, seed=seed)
            failures = 0
            for _ in range(40):
                try:
                    flaky.query(["paypal"])
                except SearchUnavailableError:
                    failures += 1
            return failures

        assert outages(1) == outages(1)
        assert 0 < outages(1) < 40

    def test_convenience_methods(self, engine):
        flaky = FlakySearchEngine(engine)
        assert "paypal.com" in flaky.result_rdns(["paypal"])
        assert "paypal" in flaky.result_mlds(["paypal"])
        assert len(flaky) == 1

    def test_rate_validated(self, engine):
        with pytest.raises(ValueError):
            FlakySearchEngine(engine, outage_rate=2.0)


class TestFlakyOcr:
    def test_failure_keyed_on_content(self):
        ocr = FlakyOcr(SimulatedOcr(error_rate=0.0), failure_rate=0.5, seed=0)
        shots = [
            Screenshot(rendered_text=f"page number {i}") for i in range(30)
        ]
        outcomes = []
        for shot in shots:
            try:
                ocr.read(shot)
                outcomes.append("ok")
            except OcrFailure:
                outcomes.append("fail")
        assert "ok" in outcomes and "fail" in outcomes
        # Same screenshot, same outcome — regardless of call order.
        for shot, expected in zip(reversed(shots), reversed(outcomes)):
            try:
                ocr.read(shot)
                again = "ok"
            except OcrFailure:
                again = "fail"
            assert again == expected

    def test_zero_rate_reads_through(self):
        ocr = FlakyOcr(SimulatedOcr(error_rate=0.0), failure_rate=0.0)
        assert ocr.read(Screenshot(rendered_text="hello")) == "hello"

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FlakyOcr(SimulatedOcr(), failure_rate=-0.1)


class TestFlakyWebStall:
    def test_latency_plan_only_stalls(self):
        plan = FaultPlan.latency(0.3, delay=5.0, seed=2)
        assert plan.stall_rate == pytest.approx(0.3)
        assert plan.stall_delay == 5.0
        assert plan.transient_rate == 0.0
        assert plan.truncate_rate == 0.0

    def test_stall_charges_the_clock_but_not_the_content(self, web):
        clock = ManualClock()
        flaky = FlakyWeb(
            web, FaultPlan.latency(1.0, delay=7.5, seed=3), clock=clock
        )
        page = flaky.get("http://a.com/")
        assert clock.now() == pytest.approx(7.5)
        assert flaky.stats["stall"] == 1
        # Byte-identical content: a stall is a latency fault, not a
        # fidelity fault...
        assert page.html == web.get("http://a.com/").html
        assert page.screenshot == web.get("http://a.com/").screenshot
        # ...so it must NOT tag the load as degraded.
        assert flaky.pop_degradations() == []

    def test_stall_schedule_deterministic_per_seed(self, web):
        def stalls(seed):
            clock = ManualClock()
            flaky = FlakyWeb(
                web, FaultPlan.latency(0.4, delay=1.0, seed=seed),
                clock=clock,
            )
            pattern = []
            for _ in range(20):
                before = clock.now()
                flaky.get("http://a.com/")
                pattern.append(clock.now() > before)
            return pattern

        assert stalls(5) == stalls(5)
        assert True in stalls(5) and False in stalls(5)

    def test_stall_delay_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(stall_delay=-1.0)
