"""End-to-end deadline propagation: budget flows load -> analyze -> search.

The serving engine threads one :class:`Deadline` through the whole
request path.  These tests pin each hop's contract on the real
pipeline over the tiny world: expired budgets degrade flagged pages to
detector-only verdicts, page budgets quarantine stalled loads, and the
leftover budget after a load squeezes target identification.
"""

import pytest

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.core.pipeline import KnowYourPhish
from repro.core.target import TargetIdentifier
from repro.resilience import (
    ManualClock,
    ResilientBrowser,
    RetryPolicy,
)
from repro.resilience.retry import Deadline
from repro.web.faults import FaultPlan, FlakyWeb
from repro.web.ocr import SimulatedOcr


@pytest.fixture(scope="module")
def detector(tiny_world):
    extractor = FeatureExtractor(alexa=tiny_world.alexa)
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    model = PhishingDetector(extractor, n_estimators=40)
    model.fit_snapshots([page.snapshot for page in train], train.labels())
    return model


def _flagged_snapshot(detector, tiny_world):
    for page in tiny_world.dataset("phishTest"):
        vector = detector.extractor.extract(page.snapshot)
        if float(detector.predict_proba(vector.reshape(1, -1))[0]) \
                >= detector.threshold:
            return page.snapshot
    raise AssertionError("no flagged phishing page in tiny world")


def _pipeline(detector, tiny_world):
    return KnowYourPhish(
        detector,
        TargetIdentifier(tiny_world.search, ocr=SimulatedOcr(0.02)),
    )


class TestPipelineDeadline:
    def test_expired_deadline_degrades_to_detector_only(
        self, detector, tiny_world
    ):
        pipeline = _pipeline(detector, tiny_world)
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        verdict = pipeline.analyze(
            _flagged_snapshot(detector, tiny_world), deadline=deadline
        )
        assert verdict.verdict == "phish"
        assert verdict.degraded
        assert "deadline_exhausted" in verdict.degradations
        assert verdict.targets == []
        assert verdict.identification is None

    def test_roomy_deadline_does_not_perturb_the_verdict(
        self, detector, tiny_world
    ):
        pipeline = _pipeline(detector, tiny_world)
        snapshot = _flagged_snapshot(detector, tiny_world)
        unlimited = pipeline.analyze(snapshot)
        budgeted = pipeline.analyze(
            snapshot, deadline=Deadline(3600.0, clock=ManualClock())
        )
        assert budgeted.verdict == unlimited.verdict
        assert budgeted.confidence == unlimited.confidence
        assert budgeted.targets == unlimited.targets
        assert not budgeted.degraded

    def test_legitimate_pages_ignore_the_deadline(
        self, detector, tiny_world
    ):
        # Classification is local compute; only identification searches.
        pipeline = _pipeline(detector, tiny_world)
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        page = tiny_world.dataset("english")[0]
        verdict = pipeline.analyze(page.snapshot, deadline=deadline)
        if verdict.verdict == "legitimate":
            assert "deadline_exhausted" not in verdict.degradations


class TestBatchPageBudget:
    def test_stalled_loads_quarantine_as_deadline_exceeded(
        self, detector, tiny_world
    ):
        clock = ManualClock()
        browser = ResilientBrowser(
            FlakyWeb(
                tiny_world.web,
                FaultPlan.latency(1.0, delay=30.0), clock=clock,
            ),
            policy=RetryPolicy(clock=clock), clock=clock,
        )
        pipeline = _pipeline(detector, tiny_world)
        urls = [
            page.snapshot.starting_url
            for page in tiny_world.dataset("english")[:3]
        ]
        report = pipeline.analyze_many(urls, browser, page_budget=5.0)
        assert len(report.quarantined) == 3
        assert report.error_kinds() == {"DeadlineExceeded": 3}
        assert report.summary()["error_kinds"] == {"DeadlineExceeded": 3}

    def test_error_kinds_split_navigation_from_deadline(
        self, detector, tiny_world
    ):
        clock = ManualClock()
        browser = ResilientBrowser(
            tiny_world.web, policy=RetryPolicy(clock=clock), clock=clock
        )
        pipeline = _pipeline(detector, tiny_world)
        urls = [
            tiny_world.dataset("english")[0].snapshot.starting_url,
            "http://definitely-not-hosted.example/",
            "http://also-not-hosted.example/",
        ]
        report = pipeline.analyze_many(urls, browser)
        assert report.error_kinds() == {"PageNotFound": 2}
        assert len(report.analyzed) == 1

    def test_leftover_budget_squeezes_identification(
        self, detector, tiny_world
    ):
        # Loads are instant on the manual clock, so the pages analyze
        # under a Deadline holding (budget - 0) seconds.  A generous
        # budget must reproduce the unbudgeted verdicts exactly.
        clock = ManualClock()
        browser = ResilientBrowser(
            tiny_world.web, policy=RetryPolicy(clock=clock), clock=clock
        )
        pipeline = _pipeline(detector, tiny_world)
        urls = [
            page.snapshot.starting_url
            for page in tiny_world.dataset("phishTest")[:4]
        ]
        unbudgeted = pipeline.analyze_many(urls, browser)
        budgeted = pipeline.analyze_many(urls, browser, page_budget=3600.0)
        assert [
            (p.url, p.verdict.verdict, p.verdict.targets)
            for p in budgeted.analyzed
        ] == [
            (p.url, p.verdict.verdict, p.verdict.targets)
            for p in unbudgeted.analyzed
        ]
