"""Thread-safety tests for the circuit breaker.

The breaker guards shared dependencies from *concurrent* callers —
the thread pool hits one breaker from every worker — so its state
machine must hold up under real threads: a half-open circuit admits
exactly one recovery probe at a time, counters never tear, and the
transition log stays consistent with the observed state changes.
"""

import threading

import pytest

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.clock import ManualClock
from repro.resilience.errors import CircuitOpenError, SearchUnavailableError


def _failing():
    raise SearchUnavailableError("down")


def _tripped(threshold=1, recovery=10.0):
    clock = ManualClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold, recovery_time=recovery, clock=clock,
        failure_types=(SearchUnavailableError,), name="search",
    )
    for _ in range(threshold):
        with pytest.raises(SearchUnavailableError):
            breaker.call(_failing)
    assert breaker.state == "open"
    return breaker, clock


class TestHalfOpenProbeExclusivity:
    def test_single_probe_admitted_concurrently(self):
        breaker, clock = _tripped()
        clock.advance(10.0)

        probe_entered = threading.Event()
        release_probe = threading.Event()
        probes = []

        def slow_probe():
            probes.append(threading.current_thread().name)
            probe_entered.set()
            release_probe.wait(timeout=5.0)
            return "ok"

        outcomes = {}

        def attempt(name):
            try:
                outcomes[name] = breaker.call(slow_probe)
            except CircuitOpenError:
                outcomes[name] = "rejected"

        first = threading.Thread(target=attempt, args=("first",))
        first.start()
        assert probe_entered.wait(timeout=5.0)
        # While the probe is in flight, every other caller fails fast —
        # a thundering herd must not hammer a barely-recovering service.
        others = [
            threading.Thread(target=attempt, args=(f"other-{i}",))
            for i in range(8)
        ]
        for thread in others:
            thread.start()
        for thread in others:
            thread.join(timeout=5.0)
        assert all(
            outcomes[f"other-{i}"] == "rejected" for i in range(8)
        )
        release_probe.set()
        first.join(timeout=5.0)
        assert outcomes["first"] == "ok"
        assert len(probes) == 1
        assert breaker.state == "closed"
        assert breaker.stats["rejected"] == 8

    def test_failed_probe_releases_the_slot(self):
        breaker, clock = _tripped()
        clock.advance(10.0)
        with pytest.raises(SearchUnavailableError):
            breaker.call(_failing)
        assert breaker.state == "open"
        # Next recovery window admits a fresh probe (slot not leaked).
        clock.advance(10.0)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == "closed"

    def test_unexpected_probe_error_releases_the_slot(self):
        breaker, clock = _tripped()
        clock.advance(10.0)

        def boom():
            raise KeyError("bug, not outage")

        with pytest.raises(KeyError):
            breaker.call(boom)
        # A non-failure exception neither trips nor wedges the probe
        # slot: the next caller may probe immediately.
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == "closed"


class TestConcurrentCounters:
    def test_stats_consistent_under_contention(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=3, recovery_time=1e9, clock=clock,
            failure_types=(SearchUnavailableError,), name="search",
        )
        outcomes = {"ok": 0, "failed": 0, "rejected": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def worker(index):
            barrier.wait(timeout=5.0)
            for call in range(50):
                try:
                    if (index + call) % 3 == 0:
                        breaker.call(_failing)
                    else:
                        breaker.call(lambda: "ok")
                    key = "ok"
                except SearchUnavailableError:
                    key = "failed"
                except CircuitOpenError:
                    key = "rejected"
                with lock:
                    outcomes[key] += 1

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        total = sum(outcomes.values())
        assert total == 8 * 50
        # Every attempt is accounted for exactly once: admitted calls
        # split into successes and failures, the rest failed fast.
        assert breaker.stats["calls"] == outcomes["ok"] + outcomes["failed"]
        assert breaker.stats["rejected"] == outcomes["rejected"]
        assert breaker.stats["failures"] == outcomes["failed"]

    def test_transition_log_matches_opened_count_with_threads(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=0.001, clock=clock,
            failure_types=(SearchUnavailableError,), name="search",
        )
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait(timeout=5.0)
            for _ in range(40):
                try:
                    breaker.call(_failing)
                except (SearchUnavailableError, CircuitOpenError):
                    pass
                clock.advance(0.001)   # lets the circuit half-open again

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        transitions = dict(breaker.transitions)
        opened = transitions.get("closed->open", 0) \
            + transitions.get("half-open->open", 0)
        assert breaker.opened_count == opened == breaker.stats["trips"]
        # Only legal state-machine edges ever get logged, even with six
        # threads racing the transitions.
        assert set(transitions) <= {
            "closed->open", "open->half-open",
            "half-open->open", "half-open->closed",
        }
        # Conservation within one step: every entry into half-open is
        # resolved back to open/closed, except at most the final one
        # (the run may end mid-probe).
        entered = transitions.get("open->half-open", 0)
        resolved = transitions.get("half-open->open", 0) \
            + transitions.get("half-open->closed", 0)
        assert 0 <= entered - resolved <= 1


class TestPickling:
    def test_breaker_survives_pickling_without_its_lock(self):
        import pickle

        breaker, _clock = _tripped(threshold=2)
        clone = pickle.loads(pickle.dumps(breaker))
        assert clone.state == "open"
        assert clone.stats == breaker.stats
        # The clone has a working lock of its own: calls still work.
        with pytest.raises(CircuitOpenError):
            clone.call(lambda: "ok")
