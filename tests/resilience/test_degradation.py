"""End-to-end graceful degradation through the full pipeline."""

import pytest

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.core.pipeline import KnowYourPhish
from repro.core.target import TargetIdentifier
from repro.resilience import (
    CircuitBreaker,
    GuardedSearchEngine,
    ManualClock,
    ResilientBrowser,
    RetryPolicy,
    SearchUnavailableError,
)
from repro.web.faults import FaultPlan, FlakyOcr, FlakySearchEngine, FlakyWeb
from repro.web.ocr import SimulatedOcr


@pytest.fixture(scope="module")
def detector(tiny_world):
    extractor = FeatureExtractor(alexa=tiny_world.alexa)
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    model = PhishingDetector(extractor, n_estimators=40)
    model.fit_snapshots([page.snapshot for page in train], train.labels())
    return model


def _flagged_snapshot(detector, tiny_world):
    """A phishing snapshot the detector actually flags."""
    for page in tiny_world.dataset("phishTest"):
        vector = detector.extractor.extract(page.snapshot)
        if float(detector.predict_proba(vector.reshape(1, -1))[0]) \
                >= detector.threshold:
            return page.snapshot
    raise AssertionError("no flagged phishing page in tiny world")


class TestSearchOutageDegradation:
    def test_forced_outage_yields_degraded_detector_verdict(
        self, detector, tiny_world
    ):
        down = FlakySearchEngine(tiny_world.search, forced_down=True)
        pipeline = KnowYourPhish(
            detector, TargetIdentifier(down, ocr=SimulatedOcr(0.02))
        )
        verdict = pipeline.analyze(_flagged_snapshot(detector, tiny_world))
        assert verdict.verdict == "phish"
        assert verdict.degraded
        assert "search_unavailable" in verdict.degradations
        assert verdict.targets == []
        assert verdict.identification is None

    def test_open_circuit_also_degrades(self, detector, tiny_world):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=300.0, clock=clock,
            failure_types=(SearchUnavailableError,),
        )
        down = FlakySearchEngine(tiny_world.search, forced_down=True)
        guarded = GuardedSearchEngine(down, breaker=breaker)
        pipeline = KnowYourPhish(
            detector, TargetIdentifier(guarded, ocr=SimulatedOcr(0.02))
        )
        snapshot = _flagged_snapshot(detector, tiny_world)
        first = pipeline.analyze(snapshot)
        second = pipeline.analyze(snapshot)
        assert first.degraded and second.degraded
        # The second page never reached the engine: circuit open.
        assert breaker.stats["rejected"] > 0

    def test_healthy_search_not_degraded(self, detector, tiny_world):
        pipeline = KnowYourPhish(
            detector,
            TargetIdentifier(tiny_world.search, ocr=SimulatedOcr(0.02)),
        )
        verdict = pipeline.analyze(_flagged_snapshot(detector, tiny_world))
        assert not verdict.degraded
        assert verdict.identification is not None


class TestOcrFailureDegradation:
    def test_ocr_failure_skips_ocr_keyterms(self, detector, tiny_world):
        broken_ocr = FlakyOcr(SimulatedOcr(0.02), failure_rate=1.0)
        pipeline = KnowYourPhish(
            detector, TargetIdentifier(tiny_world.search, ocr=broken_ocr)
        )
        verdict = pipeline.analyze(_flagged_snapshot(detector, tiny_world))
        # The verdict exists, tagged; identification either completed
        # without step 4 or confirmed/flagged as usual.
        assert verdict.verdict in ("phish", "suspicious", "legitimate")
        if verdict.identification is not None:
            assert verdict.identification.keyterms.ocr_prominent == []
        assert "ocr_failed" in verdict.degradations


class TestPartialSnapshotDegradation:
    def test_load_degradations_tag_the_verdict(self, detector, tiny_world):
        clock = ManualClock()
        plan = FaultPlan(seed=1, truncate_rate=1.0, drop_screenshot_rate=1.0)
        browser = ResilientBrowser(
            FlakyWeb(tiny_world.web, plan, clock=clock),
            policy=RetryPolicy(clock=clock), clock=clock,
        )
        pipeline = KnowYourPhish(
            detector,
            TargetIdentifier(tiny_world.search, ocr=SimulatedOcr(0.02)),
        )
        url = tiny_world.dataset("english")[0].snapshot.starting_url
        loaded = browser.load(url)
        verdict = pipeline.analyze(loaded)
        assert loaded.degraded
        assert verdict.degraded
        assert "truncated_html" in verdict.degradations


class TestBatchOverWorld:
    def test_analyze_many_quarantines_missing_pages(
        self, detector, tiny_world
    ):
        clock = ManualClock()
        browser = ResilientBrowser(
            tiny_world.web, policy=RetryPolicy(clock=clock), clock=clock
        )
        pipeline = KnowYourPhish(
            detector,
            TargetIdentifier(tiny_world.search, ocr=SimulatedOcr(0.02)),
        )
        urls = [
            page.snapshot.starting_url
            for page in tiny_world.dataset("english")[:5]
        ] + ["http://definitely-not-hosted.example/"]
        report = pipeline.analyze_many(urls, browser)
        assert len(report.analyzed) == 5
        assert len(report.quarantined) == 1
        assert report.quarantined[0].error_kind == "PageNotFound"
        assert report.quarantined[0].permanent
