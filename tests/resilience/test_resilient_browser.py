"""Tests for the resilient browser and batch quarantine API."""

import pytest

from repro.resilience.batch import BatchReport, QuarantinedPage, analyze_many
from repro.resilience.browser import LoadResult, ResilientBrowser
from repro.resilience.clock import ManualClock
from repro.resilience.errors import (
    DeadlineExceeded,
    FetchTimeout,
    PermanentFetchError,
    RetriesExhausted,
)
from repro.resilience.retry import RetryPolicy
from repro.web.browser import PageNotFound, RedirectLoopError
from repro.web.faults import FaultPlan, FlakyWeb
from repro.web.hosting import SyntheticWeb
from repro.web.page import Screenshot


@pytest.fixture()
def web():
    web = SyntheticWeb()
    web.host("http://a.com/", "<title>A</title>" + "y" * 500,
             Screenshot(rendered_text="A"))
    web.redirect("http://short.com/x", "http://a.com/")
    return web


def _browser(web, plan=None, max_attempts=6, page_budget=None):
    clock = ManualClock()
    flaky = FlakyWeb(web, plan or FaultPlan(), clock=clock)
    return ResilientBrowser(
        flaky,
        policy=RetryPolicy(max_attempts=max_attempts, clock=clock),
        page_budget=page_budget,
        clock=clock,
    )


class TestResilientBrowserLoad:
    def test_clean_load(self, web):
        result = _browser(web).load("http://a.com/")
        assert isinstance(result, LoadResult)
        assert result.snapshot.title == "A"
        assert result.attempts == 1
        assert not result.degraded

    def test_rides_out_transient_faults(self, web):
        plan = FaultPlan.transient(0.6, seed=2, max_consecutive_transient=3)
        result = _browser(web, plan, max_attempts=8).load("http://a.com/")
        assert result.snapshot.title == "A"

    def test_follows_redirects(self, web):
        result = _browser(web).load("http://short.com/x")
        assert result.snapshot.landing_url == "http://a.com/"

    def test_retries_exhausted(self, web):
        plan = FaultPlan.transient(
            0.999, seed=1, max_consecutive_transient=50
        )
        with pytest.raises(RetriesExhausted) as excinfo:
            _browser(web, plan, max_attempts=3).load("http://a.com/")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, Exception)

    def test_permanent_failure_not_retried(self, web):
        clock = ManualClock()
        flaky = FlakyWeb(web, FaultPlan(seed=0, permanent_rate=1.0),
                         clock=clock)
        browser = ResilientBrowser(
            flaky, policy=RetryPolicy(max_attempts=5, clock=clock),
            clock=clock,
        )
        with pytest.raises(PermanentFetchError):
            browser.load("http://a.com/")
        assert flaky.stats["permanent"] == 1  # one attempt, no retries

    def test_page_not_found_propagates(self, web):
        with pytest.raises(PageNotFound):
            _browser(web).load("http://missing.com/")

    def test_redirect_loop_propagates(self, web):
        web.redirect("http://l1.com/", "http://l2.com/")
        web.redirect("http://l2.com/", "http://l1.com/")
        with pytest.raises(RedirectLoopError):
            _browser(web).load("http://l1.com/")

    def test_deadline_blown_by_slow_faulty_responses(self, web):
        # Each attempt burns 3 simulated seconds before timing out; the
        # 5-second page budget admits two attempts, then gives up even
        # though the retry policy would allow ten.
        clock = ManualClock()

        class SlowThenTimeout:
            def get(self, url):
                clock.sleep(3.0)
                raise FetchTimeout(url)

        browser = ResilientBrowser(
            SlowThenTimeout(),
            policy=RetryPolicy(max_attempts=10, base_delay=0.01,
                               clock=clock),
            page_budget=5.0,
            clock=clock,
        )
        with pytest.raises(DeadlineExceeded):
            browser.load("http://a.com/")
        assert clock.now() < 8.0  # gave up after ~2 attempts, not 10

    def test_degradations_reported(self, web):
        plan = FaultPlan(seed=0, truncate_rate=1.0, drop_screenshot_rate=1.0)
        result = _browser(web, plan).load("http://a.com/")
        assert result.degraded
        assert "truncated_html" in result.degradations
        assert "missing_screenshot" in result.degradations

    def test_stale_degradations_not_leaked_across_attempts(self, web):
        # A degradation recorded on a failed attempt must not leak into
        # the next attempt's result.
        plan = FaultPlan(
            seed=5, timeout_rate=0.4, truncate_rate=0.4,
            max_consecutive_transient=2,
        )
        browser = _browser(web, plan, max_attempts=8)
        for _ in range(10):
            result = browser.load("http://a.com/")
            full_html = len(result.snapshot.html) > 500
            assert full_html == ("truncated_html" not in result.degradations)

    def test_try_load(self, web):
        assert _browser(web).try_load("http://missing.com/") is None
        assert _browser(web).try_load("http://a.com/") is not None

    def test_works_over_plain_synthetic_web(self, web):
        clock = ManualClock()
        browser = ResilientBrowser(
            web, policy=RetryPolicy(clock=clock), clock=clock
        )
        result = browser.load("http://a.com/")
        assert result.snapshot.title == "A"
        assert result.degradations == []


class _FakePipeline:
    """Counts pages; flags any page whose title contains 'phish'."""

    def analyze(self, loaded):
        class Verdict:
            def __init__(self, degraded):
                self.degraded = degraded
                self.verdict = "legitimate"

        return Verdict(degraded=bool(loaded.degradations))


class TestAnalyzeMany:
    def test_quarantines_instead_of_raising(self, web):
        web.redirect("http://l1.com/", "http://l2.com/")
        web.redirect("http://l2.com/", "http://l1.com/")
        browser = _browser(web)
        report = analyze_many(
            _FakePipeline(), browser,
            ["http://a.com/", "http://missing.com/", "http://l1.com/"],
        )
        assert isinstance(report, BatchReport)
        assert len(report.analyzed) == 1
        assert len(report.quarantined) == 2
        kinds = {q.error_kind for q in report.quarantined}
        assert kinds == {"PageNotFound", "RedirectLoopError"}
        assert all(q.permanent for q in report.quarantined)

    def test_exhausted_retries_quarantined_as_transient(self, web):
        plan = FaultPlan.transient(
            0.999, seed=1, max_consecutive_transient=50
        )
        browser = _browser(web, plan, max_attempts=2)
        report = analyze_many(_FakePipeline(), browser, ["http://a.com/"])
        assert len(report.quarantined) == 1
        record = report.quarantined[0]
        assert record.error_kind == "RetriesExhausted"
        assert not record.permanent
        assert record.attempts == 2

    def test_summary_shape(self, web):
        report = analyze_many(_FakePipeline(), _browser(web),
                              ["http://a.com/", "http://missing.com/"])
        summary = report.summary()
        assert summary["total"] == 2
        assert summary["analyzed"] == 1
        assert summary["completion_rate"] == 0.5
        assert summary["quarantined_permanent"] == 1

    def test_plain_browser_supported(self, web):
        from repro.web.browser import Browser

        report = analyze_many(
            _FakePipeline(), Browser(web), ["http://a.com/"]
        )
        assert len(report.analyzed) == 1
        assert report.analyzed[0].attempts == 1

    def test_batch_pipeline_used_and_report_equivalent(self, web):
        class _FakeBatchPipeline(_FakePipeline):
            def __init__(self):
                self.batches = []

            def analyze_batch(self, loads):
                self.batches.append(len(loads))
                return [self.analyze(load) for load in loads]

        from repro.parallel import WorkerPool

        urls = ["http://a.com/", "http://missing.com/", "http://short.com/x",
                "http://a.com/"]
        per_page = analyze_many(_FakePipeline(), _browser(web), urls)
        batch_pipeline = _FakeBatchPipeline()
        with WorkerPool(workers=3, backend="thread") as pool:
            batched = analyze_many(
                batch_pipeline, _browser(web), urls, pool=pool
            )
        # the three loadable pages went through batch analysis — one
        # chunk, because the thread backend gains nothing from fanning
        # a GIL-bound columnar pass out — and the report is
        # indistinguishable from the per-page serial path
        assert batch_pipeline.batches == [3]
        assert [p.url for p in batched.analyzed] == \
            [p.url for p in per_page.analyzed]
        assert [p.verdict.verdict for p in batched.analyzed] == \
            [p.verdict.verdict for p in per_page.analyzed]
        assert [q.url for q in batched.quarantined] == \
            [q.url for q in per_page.quarantined]

    def test_quarantine_record_fields(self):
        record = QuarantinedPage.from_error(
            "http://x.com/", FetchTimeout("http://x.com/")
        )
        assert record.error_kind == "FetchTimeout"
        assert not record.permanent
        assert "x.com" in record.message
