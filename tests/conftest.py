"""Shared fixtures: a tiny synthetic world reused across test modules.

Setting ``PHL_LOCK_SANITIZER=1`` additionally arms the runtime
lock-order sanitizer for the whole session: every ``threading.Lock`` /
``threading.RLock`` created by ``repro.*`` code is instrumented, the
acquisition orders actually taken are witnessed, and the session fails
if any observed order inverts the static lock graph PHL502 checks (or
if both orders of the same pair are seen at runtime).  Set
``PHL_LOCK_WITNESS_OUT`` to also write the order-witness report there
(the CI ``lock-sanitizer`` job uploads it as an artifact).
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.corpus.brands import default_brands
from repro.corpus.datasets import CorpusConfig, build_world
from repro.corpus.legitimate import LegitimateSiteGenerator
from repro.corpus.phishing import PhishingSiteGenerator
from repro.web.browser import Browser
from repro.web.hosting import SyntheticWeb


@pytest.fixture(scope="session", autouse=True)
def lock_order_sanitizer():
    """Session-wide lock-order witness, armed by PHL_LOCK_SANITIZER=1."""
    if os.environ.get("PHL_LOCK_SANITIZER") != "1":
        yield None
        return
    from repro.lint.sanitizer import (
        LockOrderWitness,
        LockSanitizer,
        static_lock_edges,
        verify_witness,
        write_witness_report,
    )

    root = Path(__file__).resolve().parents[1]
    witness = LockOrderWitness()
    sanitizer = LockSanitizer(witness, include=("repro.",))
    sanitizer.install()
    try:
        yield witness
    finally:
        sanitizer.uninstall()
        static = static_lock_edges([root / "src"], root=root)
        violations = verify_witness(witness, static)
        out = os.environ.get("PHL_LOCK_WITNESS_OUT")
        if out:
            write_witness_report(witness, static, violations, Path(out))
        assert violations == [], "\n".join(
            f"{v.kind}: {v.detail}" for v in violations
        )


@pytest.fixture(scope="session")
def tiny_world():
    """A small but complete world: every dataset, fast to build."""
    config = CorpusConfig(
        leg_train=80, phish_train=40, phish_test=40, phish_brand=30,
        english_test=150, other_language_test=40, seed=5,
    )
    return build_world(config)


@pytest.fixture()
def fresh_web():
    """An empty synthetic web with a browser."""
    web = SyntheticWeb()
    return web, Browser(web)


@pytest.fixture()
def site_generators(fresh_web):
    """Legitimate and phishing generators over a fresh web."""
    web, browser = fresh_web
    rng = np.random.default_rng(42)
    brands = default_brands()
    legit = LegitimateSiteGenerator(web, rng)
    for brand in list(brands)[:8]:
        legit.generate_brand_site(brand)
    phish = PhishingSiteGenerator(web, rng, brands)
    return web, browser, legit, phish
