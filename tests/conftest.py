"""Shared fixtures: a tiny synthetic world reused across test modules."""

import numpy as np
import pytest

from repro.corpus.brands import default_brands
from repro.corpus.datasets import CorpusConfig, build_world
from repro.corpus.legitimate import LegitimateSiteGenerator
from repro.corpus.phishing import PhishingSiteGenerator
from repro.web.browser import Browser
from repro.web.hosting import SyntheticWeb


@pytest.fixture(scope="session")
def tiny_world():
    """A small but complete world: every dataset, fast to build."""
    config = CorpusConfig(
        leg_train=80, phish_train=40, phish_test=40, phish_brand=30,
        english_test=150, other_language_test=40, seed=5,
    )
    return build_world(config)


@pytest.fixture()
def fresh_web():
    """An empty synthetic web with a browser."""
    web = SyntheticWeb()
    return web, Browser(web)


@pytest.fixture()
def site_generators(fresh_web):
    """Legitimate and phishing generators over a fresh web."""
    web, browser = fresh_web
    rng = np.random.default_rng(42)
    brands = default_brands()
    legit = LegitimateSiteGenerator(web, rng)
    for brand in list(brands)[:8]:
        legit.generate_brand_site(brand)
    phish = PhishingSiteGenerator(web, rng, brands)
    return web, browser, legit, phish
