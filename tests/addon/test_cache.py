"""Tests for the add-on verdict cache."""

import pytest

from repro.addon.cache import VerdictCache
from repro.core.pipeline import PageVerdict


def verdict(kind="legitimate"):
    return PageVerdict(verdict=kind, confidence=0.5, targets=[])


class TestVerdictCache:
    def test_put_get(self):
        cache = VerdictCache()
        cache.put("http://a.com/", verdict(), now=0.0)
        assert cache.get("http://a.com/", now=10.0) is not None

    def test_miss(self):
        cache = VerdictCache()
        assert cache.get("http://a.com/", now=0.0) is None
        assert cache.misses == 1

    def test_ttl_expiry(self):
        cache = VerdictCache(ttl=100.0)
        cache.put("http://a.com/", verdict(), now=0.0)
        assert cache.get("http://a.com/", now=50.0) is not None
        assert cache.get("http://a.com/", now=101.0) is None
        assert len(cache) == 0  # expired entry removed

    def test_lru_eviction(self):
        cache = VerdictCache(max_entries=2)
        cache.put("http://1.com/", verdict(), now=0)
        cache.put("http://2.com/", verdict(), now=1)
        cache.get("http://1.com/", now=2)        # touch 1 -> 2 is LRU
        cache.put("http://3.com/", verdict(), now=3)
        assert cache.get("http://1.com/", now=4) is not None
        assert cache.get("http://2.com/", now=4) is None

    def test_put_refreshes_existing(self):
        cache = VerdictCache(ttl=100)
        cache.put("http://a.com/", verdict("legitimate"), now=0)
        cache.put("http://a.com/", verdict("phish"), now=90)
        result = cache.get("http://a.com/", now=150)
        assert result is not None and result.verdict == "phish"

    def test_invalidate(self):
        cache = VerdictCache()
        cache.put("http://a.com/", verdict(), now=0)
        assert cache.invalidate("http://a.com/")
        assert not cache.invalidate("http://a.com/")

    def test_clear_keeps_counters(self):
        cache = VerdictCache()
        cache.put("http://a.com/", verdict(), now=0)
        cache.get("http://a.com/", now=1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_hit_rate(self):
        cache = VerdictCache()
        cache.put("http://a.com/", verdict(), now=0)
        cache.get("http://a.com/", now=1)
        cache.get("http://b.com/", now=1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            VerdictCache(max_entries=0)
        with pytest.raises(ValueError):
            VerdictCache(ttl=0)
