"""Tests for the end-to-end phishing-prevention add-on."""

import itertools

import pytest

from repro.addon import Action, PhishingPreventionAddon, VerdictCache, WarningPolicy
from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.core.pipeline import KnowYourPhish
from repro.core.target import TargetIdentifier
from repro.web.ocr import SimulatedOcr


@pytest.fixture(scope="module")
def addon(tiny_world):
    extractor = FeatureExtractor(alexa=tiny_world.alexa)
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    detector = PhishingDetector(extractor, n_estimators=40)
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    pipeline = KnowYourPhish(
        detector,
        TargetIdentifier(tiny_world.search, ocr=SimulatedOcr(error_rate=0.02)),
    )
    clock = itertools.count().__next__
    return PhishingPreventionAddon(
        pipeline,
        tiny_world.browser,
        cache=VerdictCache(ttl=10_000),
        clock=lambda: float(clock()),
    )


class TestNavigation:
    def test_legitimate_page_allowed(self, addon, tiny_world):
        page = tiny_world.dataset("english")[0]
        result = addon.navigate(page.url)
        assert result.allowed

    def test_phish_blocked_or_warned(self, addon, tiny_world):
        outcomes = []
        for page in tiny_world.dataset("phishTest")[:10]:
            outcomes.append(addon.navigate(page.url).action)
        assert Action.BLOCK in outcomes or Action.WARN in outcomes
        blocked = sum(action is not Action.ALLOW for action in outcomes)
        assert blocked >= 7

    def test_cache_hit_on_revisit(self, addon, tiny_world):
        page = tiny_world.dataset("english")[1]
        first = addon.navigate(page.url)
        second = addon.navigate(page.url)
        assert not first.from_cache
        assert second.from_cache
        assert second.analysis_ms == 0.0

    def test_unreachable_url_allowed(self, addon):
        result = addon.navigate("http://no-such-site.example/")
        assert result.allowed
        assert result.verdict is None
        assert addon.stats.navigation_failures >= 1

    def test_trusted_domain_skips_analysis(self, addon, tiny_world):
        page = tiny_world.dataset("phishTest")[3]
        from repro.urls.parsing import parse_url
        rdn = parse_url(page.url).rdn
        if rdn is None:
            pytest.skip("IP-hosted phish has no RDN to trust")
        addon.policy.trust_domain(rdn)
        result = addon.navigate(page.url)
        assert result.allowed
        assert result.verdict is None
        addon.policy.revoke_trust(rdn)

    def test_proceed_anyway_suppresses_rewarn(self, addon, tiny_world):
        for page in tiny_world.dataset("phishTest")[10:20]:
            result = addon.navigate(page.url)
            if result.action in (Action.WARN, Action.BLOCK):
                addon.proceed_anyway(page.url)
                again = addon.navigate(page.url)
                assert again.allowed
                return
        pytest.skip("no warning raised in sample")

    def test_stats_accumulate(self, addon, tiny_world):
        before = addon.stats.navigations
        addon.navigate(tiny_world.dataset("english")[2].url)
        assert addon.stats.navigations == before + 1
        assert addon.stats.analyses >= 1

    def test_median_latency_exposed(self, addon):
        # With the fake counting clock each analysis "takes" 1000ms.
        assert addon.stats.median_analysis_ms >= 0.0
