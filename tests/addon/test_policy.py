"""Tests for the add-on warning policy."""

from repro.addon.policy import Action, WarningPolicy
from repro.core.pipeline import PageVerdict


def verdict(kind):
    return PageVerdict(verdict=kind, confidence=0.9, targets=[])


class TestDecisions:
    def test_legitimate_allowed(self):
        policy = WarningPolicy()
        assert policy.decide("http://a.com/", verdict("legitimate")) is Action.ALLOW

    def test_phish_blocked_by_default(self):
        policy = WarningPolicy()
        assert policy.decide("http://a.com/", verdict("phish")) is Action.BLOCK

    def test_phish_warn_when_configured(self):
        policy = WarningPolicy(block_confirmed_phish=False)
        assert policy.decide("http://a.com/", verdict("phish")) is Action.WARN

    def test_suspicious_warns_by_default(self):
        policy = WarningPolicy()
        assert policy.decide("http://a.com/", verdict("suspicious")) is Action.WARN

    def test_suspicious_allowed_when_lenient(self):
        policy = WarningPolicy(warn_on_suspicious=False)
        assert policy.decide("http://a.com/", verdict("suspicious")) is Action.ALLOW


class TestTrust:
    def test_trusted_domain_always_allowed(self):
        policy = WarningPolicy()
        policy.trust_domain("mybank.com")
        assert policy.decide(
            "https://www.mybank.com/login", verdict("phish")
        ) is Action.ALLOW

    def test_trust_is_rdn_scoped(self):
        policy = WarningPolicy()
        policy.trust_domain("mybank.com")
        # A different RDN with mybank in the subdomain is NOT trusted.
        assert policy.decide(
            "http://mybank.com.evil.xyz/login", verdict("phish")
        ) is Action.BLOCK

    def test_revoke_trust(self):
        policy = WarningPolicy()
        policy.trust_domain("a.com")
        assert policy.revoke_trust("a.com")
        assert not policy.revoke_trust("a.com")
        assert policy.decide("http://a.com/", verdict("phish")) is Action.BLOCK

    def test_trust_case_insensitive(self):
        policy = WarningPolicy()
        policy.trust_domain("MyBank.COM")
        assert policy.is_trusted("https://mybank.com/")

    def test_unparsable_url_not_trusted(self):
        assert not WarningPolicy().is_trusted(":::")


class TestOverrides:
    def test_override_allows_exact_url(self):
        policy = WarningPolicy()
        policy.record_override("http://a.com/page")
        assert policy.decide(
            "http://a.com/page", verdict("suspicious")
        ) is Action.ALLOW
        # Other URLs on the same host still warn.
        assert policy.decide(
            "http://a.com/other", verdict("suspicious")
        ) is Action.WARN

    def test_session_reset_clears_overrides(self):
        policy = WarningPolicy()
        policy.record_override("http://a.com/")
        policy.reset_session()
        assert not policy.was_overridden("http://a.com/")
