"""Tests for term distributions and the Hellinger distance."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.distributions import TermDistribution, hellinger_distance


class TestConstruction:
    def test_from_counts(self):
        dist = TermDistribution.from_counts({"pay": 3, "bank": 1})
        assert dist.probability("pay") == pytest.approx(0.75)
        assert dist.probability("bank") == pytest.approx(0.25)

    def test_from_terms(self):
        dist = TermDistribution.from_terms(["a" * 3, "a" * 3, "bbb"])
        assert dist.probability("aaa") == pytest.approx(2 / 3)

    def test_from_text(self):
        dist = TermDistribution.from_text("secure secure login")
        assert dist.probability("secure") == pytest.approx(2 / 3)

    def test_zero_counts_dropped(self):
        dist = TermDistribution.from_counts({"pay": 1, "gone": 0})
        assert "gone" not in dist

    def test_empty(self):
        dist = TermDistribution()
        assert not dist
        assert len(dist) == 0
        assert dist.probability("x") == 0.0

    def test_rejects_non_normalised(self):
        with pytest.raises(ValueError):
            TermDistribution({"a": 0.5, "b": 0.2})

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TermDistribution({"a": 0.0, "b": 1.0})


class TestAccessors:
    def test_terms(self):
        dist = TermDistribution.from_counts({"aaa": 1, "bbb": 1})
        assert dist.terms == {"aaa", "bbb"}

    def test_contains_and_iter(self):
        dist = TermDistribution.from_counts({"aaa": 1})
        assert "aaa" in dist
        assert list(dist) == ["aaa"]

    def test_top(self):
        dist = TermDistribution.from_counts({"low": 1, "high": 5, "mid": 3})
        assert [term for term, _p in dist.top(2)] == ["high", "mid"]

    def test_top_ties_alphabetical(self):
        dist = TermDistribution.from_counts({"bbb": 1, "aaa": 1})
        assert [term for term, _p in dist.top(2)] == ["aaa", "bbb"]

    def test_substring_mass(self):
        dist = TermDistribution.from_counts({"bank": 1, "america": 1, "xyz": 2})
        mass = dist.probability_mass_of_substrings("bankofamerica")
        assert mass == pytest.approx(0.5)

    def test_substring_mass_empty_text(self):
        dist = TermDistribution.from_counts({"bank": 1})
        assert dist.probability_mass_of_substrings("") == 0.0

    def test_equality(self):
        first = TermDistribution.from_counts({"aaa": 2})
        second = TermDistribution.from_counts({"aaa": 5})
        assert first == second  # both are point masses on "aaa"


class TestHellinger:
    def test_identical_is_zero(self):
        dist = TermDistribution.from_counts({"aaa": 1, "bbb": 3})
        assert hellinger_distance(dist, dist) == 0.0

    def test_disjoint_is_one(self):
        first = TermDistribution.from_counts({"aaa": 1})
        second = TermDistribution.from_counts({"bbb": 1})
        assert hellinger_distance(first, second) == 1.0

    def test_both_empty_is_zero(self):
        assert hellinger_distance(TermDistribution(), TermDistribution()) == 0.0

    def test_one_empty_is_one(self):
        dist = TermDistribution.from_counts({"aaa": 1})
        assert hellinger_distance(dist, TermDistribution()) == 1.0
        assert hellinger_distance(TermDistribution(), dist) == 1.0

    def test_known_value(self):
        # P = {a: 1}, Q = {a: 1/2, b: 1/2}:
        # H^2 = 1/2 [ (1 - sqrt(.5))^2 + .5 ] = 1 - sqrt(0.5)
        first = TermDistribution.from_counts({"aaa": 1})
        second = TermDistribution.from_counts({"aaa": 1, "bbb": 1})
        expected = 1 - math.sqrt(0.5)
        assert hellinger_distance(first, second) == pytest.approx(expected)

    @given(
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=3, max_size=5),
            st.integers(min_value=1, max_value=20),
            min_size=1, max_size=8,
        ),
        st.dictionaries(
            st.text(alphabet="abcdef", min_size=3, max_size=5),
            st.integers(min_value=1, max_value=20),
            min_size=1, max_size=8,
        ),
    )
    def test_properties(self, first_counts, second_counts):
        first = TermDistribution.from_counts(first_counts)
        second = TermDistribution.from_counts(second_counts)
        distance = hellinger_distance(first, second)
        # Bounded, symmetric, zero iff same distribution.
        assert 0.0 <= distance <= 1.0
        assert distance == pytest.approx(
            hellinger_distance(second, first)
        )
        if first == second:
            assert distance == pytest.approx(0.0, abs=1e-12)
