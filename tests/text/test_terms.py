"""Tests for term extraction (Section III-B), incl. property-based checks."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.text.terms import MIN_TERM_LENGTH, canonicalize, extract_terms, term_counts


class TestCanonicalize:
    def test_lowercases(self):
        assert canonicalize("ABC") == "abc"

    def test_accents_mapped(self):
        assert canonicalize("bé") == "be"
        assert canonicalize("América") == "america"

    def test_paper_example_greek_beta(self):
        # { B, β, b̀, b̂ } -> b
        assert canonicalize("B") == "b"
        assert canonicalize("β") == "b"
        assert canonicalize("b̀") == "b"
        assert canonicalize("b̂") == "b"

    def test_cyrillic_homoglyphs(self):
        assert canonicalize("ра") == "pa"  # Cyrillic er+a

    def test_digits_become_separators(self):
        assert canonicalize("a1b") == "a b"

    def test_punctuation_becomes_separators(self):
        assert canonicalize("a-b_c.d") == "a b c d"

    def test_eszett_expands(self):
        assert canonicalize("straße") == "strasse"


class TestExtractTerms:
    def test_basic(self):
        assert extract_terms("secure bank login") == ["secure", "bank", "login"]

    def test_short_terms_dropped(self):
        assert extract_terms("go to my bank") == ["bank"]

    def test_repetitions_preserved(self):
        assert extract_terms("pay pay payment") == ["pay", "pay", "payment"]

    def test_splitting_on_non_letters(self):
        assert extract_terms("bank-of-america") == ["bank", "america"]

    def test_digit_separated_brand_destroyed(self):
        # The paper's dl4a limitation: digit-split fragments are too short.
        assert extract_terms("dl4a") == []

    def test_long_concatenation_is_single_term(self):
        # theinstantexchange stays one unsplittable term.
        assert extract_terms("theinstantexchange") == ["theinstantexchange"]

    def test_empty_input(self):
        assert extract_terms("") == []
        assert extract_terms("12 34 !!") == []

    def test_custom_min_length(self):
        assert extract_terms("go to my bank", min_length=2) == \
            ["go", "to", "my", "bank"]

    def test_url_extraction(self):
        terms = extract_terms("https://www.paypal.com/signin?cmd=login")
        assert "paypal" in terms
        assert "signin" in terms
        assert "https" in terms

    def test_term_counts(self):
        counts = term_counts("pay pay bank")
        assert counts["pay"] == 2
        assert counts["bank"] == 1


class TestProperties:
    @given(st.text(max_size=300))
    def test_terms_are_lowercase_letters_only(self, text):
        for term in extract_terms(text):
            assert len(term) >= MIN_TERM_LENGTH
            assert all(char in string.ascii_lowercase for char in term)

    @given(st.text(max_size=300))
    def test_canonicalize_idempotent(self, text):
        once = canonicalize(text)
        assert canonicalize(once) == once

    @given(st.text(alphabet=string.ascii_lowercase + " ", max_size=200))
    def test_ascii_lowercase_text_roundtrips(self, text):
        expected = [word for word in text.split() if len(word) >= 3]
        assert extract_terms(text) == expected

    @given(st.text(max_size=200), st.text(max_size=200))
    def test_concatenation_with_separator_is_union(self, first, second):
        combined = extract_terms(first + " " + second)
        assert combined == extract_terms(first) + extract_terms(second)
