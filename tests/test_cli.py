"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import _EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for experiment_id in _EXPERIMENTS:
            assert experiment_id in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_seed_flags_parsed(self):
        args = build_parser().parse_args(
            ["--scale", "0.01", "--seed", "3", "list-experiments"]
        )
        assert args.scale == 0.01
        assert args.seed == 3

    def test_serve_bench_flags_parsed(self):
        args = build_parser().parse_args([
            "serve-bench", "--serve-workers", "2", "--overload", "4.0",
            "--duration", "1.5", "--budget", "0.9",
            "--queue-limit", "16", "--json",
        ])
        assert args.serve_workers == 2
        assert args.overload == 4.0
        assert args.duration == 1.5
        assert args.budget == 0.9
        assert args.queue_limit == 16
        assert args.json


class TestCommands:
    """Smoke runs at minimum scale (slow-ish: builds a world)."""

    @pytest.fixture(scope="class")
    def base_args(self):
        return ["--scale", "0.002", "--seed", "21", "--estimators", "15"]

    def test_experiment_table5(self, base_args, capsys):
        assert main(base_args + ["experiment", "table5"]) == 0
        out = capsys.readouterr().out
        assert "phishTrain" in out and "english" in out

    def test_experiment_table9(self, base_args, capsys):
        assert main(base_args + ["experiment", "table9"]) == 0
        out = capsys.readouterr().out
        assert "top-1" in out and "success_rate" in out

    def test_demo(self, base_args, capsys):
        assert main(base_args + ["demo"]) == 0
        out = capsys.readouterr().out
        assert "->" in out

    def test_analyze(self, base_args, capsys):
        assert main(base_args + ["analyze"]) == 0
        out = capsys.readouterr().out
        assert "feature-group importances" in out
        assert "false positives" in out

    def test_serve_bench(self, base_args, capsys):
        assert main(base_args + [
            "serve-bench", "--duration", "1.0", "--serve-workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "shed_rate" in out
        assert "verdict_mismatches" in out

    def test_serve_bench_json(self, base_args, capsys):
        import json

        assert main(base_args + [
            "serve-bench", "--duration", "1.0", "--serve-workers", "2",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["terminated"] == payload["requests"]
        assert payload["verdict_mismatches"] == 0


class TestErrorHandling:
    """Navigation/resilience failures exit cleanly, never with a traceback."""

    def _failing_list(self, error):
        def fail(_args):
            raise error
        return fail

    def test_page_not_found_clean_exit(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.web import PageNotFound

        monkeypatch.setattr(
            cli, "_cmd_list",
            self._failing_list(PageNotFound("http://gone.example/")),
        )
        assert cli.main(["list-experiments"]) == 1
        captured = capsys.readouterr()
        assert "error: navigation failed" in captured.err
        assert "gone.example" in captured.err
        assert "Traceback" not in captured.err

    def test_redirect_loop_clean_exit(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.web import RedirectLoopError

        monkeypatch.setattr(
            cli, "_cmd_list",
            self._failing_list(RedirectLoopError("more than 10 redirects")),
        )
        assert cli.main(["list-experiments"]) == 1
        assert "navigation failed" in capsys.readouterr().err

    def test_fetch_errors_clean_exit(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.resilience import FetchTimeout

        monkeypatch.setattr(
            cli, "_cmd_list",
            self._failing_list(FetchTimeout("http://slow.example/")),
        )
        assert cli.main(["list-experiments"]) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "slow.example" in captured.err


class TestObservabilityCommands:
    """`analyze --trace-out/--metrics-out` + `obs report` round trip."""

    @pytest.fixture(scope="class")
    def base_args(self):
        return ["--scale", "0.002", "--seed", "21", "--estimators", "15"]

    @pytest.fixture(scope="class")
    def artifacts(self, base_args, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs")
        spans = out / "spans.jsonl"
        metrics = out / "metrics.prom"
        assert main(
            base_args + ["--workers", "2", "analyze",
                         "--trace-out", str(spans),
                         "--metrics-out", str(metrics)]
        ) == 0
        return spans, metrics

    def test_analyze_writes_both_artifacts(self, artifacts):
        spans, metrics = artifacts
        assert spans.exists() and spans.stat().st_size > 0
        assert metrics.exists() and metrics.stat().st_size > 0
        assert "verdicts_total" in metrics.read_text()
        assert '"name":"analyze"' in spans.read_text()

    def test_obs_report_reconstructs_the_run(self, artifacts, capsys):
        spans, metrics = artifacts
        assert main(
            ["obs", "report", "--spans", str(spans),
             "--metrics", str(metrics)]
        ) == 0
        out = capsys.readouterr().out
        assert "Per-stage timing (from spans)" in out
        assert "Verdicts" in out
        assert "Caches" in out
        assert "extract" in out

    def test_obs_report_metrics_only(self, artifacts, capsys):
        _spans, metrics = artifacts
        assert main(["obs", "report", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "Verdicts" in out
        assert "Per-stage timing" not in out

    def test_obs_report_without_artifacts_errors(self, capsys):
        assert main(["obs", "report"]) == 2
        assert "artifact paths" in capsys.readouterr().err

    def test_obs_report_missing_file_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "report", "--spans", str(missing)]) == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "Traceback" not in err
