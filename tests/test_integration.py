"""End-to-end integration tests: the full paper pipeline on a small world."""

import numpy as np
import pytest

from repro import KnowYourPhish, PhishingDetector, TargetIdentifier
from repro.core import FeatureExtractor
from repro.ml import binary_metrics, roc_auc
from repro.web.ocr import SimulatedOcr


@pytest.fixture(scope="module")
def system(tiny_world):
    extractor = FeatureExtractor(alexa=tiny_world.alexa)
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    detector = PhishingDetector(extractor, n_estimators=60)
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    identifier = TargetIdentifier(
        tiny_world.search, ocr=SimulatedOcr(error_rate=0.02)
    )
    return KnowYourPhish(detector, identifier)


class TestEndToEnd:
    def test_detector_quality_on_held_out_data(self, system, tiny_world):
        test = tiny_world.dataset("english") + tiny_world.dataset("phishTest")
        X = system.detector.extractor.extract_many(
            page.snapshot for page in test
        )
        scores = system.detector.predict_proba(X)
        y = test.labels()
        assert roc_auc(y, scores) > 0.97
        metrics = binary_metrics(y, (scores >= 0.7).astype(int))
        assert metrics.recall > 0.8
        assert metrics.fpr < 0.05

    def test_language_independence(self, system, tiny_world):
        """The same model must work on every language (Section VI-C)."""
        for language in ("french", "german", "spanish"):
            legit = tiny_world.dataset(language)
            X = system.detector.extractor.extract_many(
                page.snapshot for page in legit
            )
            fpr = float(system.detector.predict(X).mean())
            assert fpr < 0.1, f"{language} FPR too high: {fpr}"

    def test_pipeline_reduces_false_positives(self, system, tiny_world):
        """Section VI-D: target-ID second stage removes detector FPs."""
        english = tiny_world.dataset("english")
        X = system.detector.extractor.extract_many(
            page.snapshot for page in english
        )
        detector_fp = int(system.detector.predict(X).sum())
        pipeline_fp = 0
        for page, flagged in zip(english, system.detector.predict(X)):
            if not flagged:
                continue
            verdict = system.analyze(page.snapshot)
            pipeline_fp += system.is_blocked(verdict)
        assert pipeline_fp <= detector_fp

    def test_target_identification_end_to_end(self, system, tiny_world):
        known = [
            page for page in tiny_world.dataset("phishBrand")
            if page.target_mld
        ]
        top3 = 0
        for page in known:
            verdict = system.analyze(page.snapshot)
            if page.target_mld in verdict.targets[:3]:
                top3 += 1
        assert top3 / len(known) > 0.6

    def test_brand_independence(self, system, tiny_world):
        """Phish against brands unseen in training are still caught."""
        train_targets = {
            page.target_mld for page in tiny_world.dataset("phishTrain")
        }
        unseen = [
            page for page in tiny_world.dataset("phishTest")
            if page.target_mld and page.target_mld not in train_targets
        ]
        if len(unseen) < 5:
            pytest.skip("too few unseen-brand phish")
        X = system.detector.extractor.extract_many(
            page.snapshot for page in unseen
        )
        recall = float(system.detector.predict(X).mean())
        assert recall > 0.7

    def test_snapshot_serialisation_preserves_verdict(self, system, tiny_world):
        from repro.web.page import PageSnapshot
        page = tiny_world.dataset("phishTest")[0]
        rebuilt = PageSnapshot.from_dict(page.snapshot.to_dict())
        original = system.detector.score_snapshot(page.snapshot)
        roundtrip = system.detector.score_snapshot(rebuilt)
        assert original == pytest.approx(roundtrip)
