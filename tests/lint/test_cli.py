"""CLI behaviour: exit codes, formats, baselines, rule introspection."""

import json
from pathlib import Path

from repro.lint.cli import main
from repro.lint.registry import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write_clean(tmp_path: Path) -> Path:
    target = tmp_path / "clean.py"
    target.write_text("import hashlib\nkey = hashlib.sha256(b'x')\n")
    return target


def _write_dirty(tmp_path: Path) -> Path:
    target = tmp_path / "dirty.py"
    target.write_text("import time\nstamp = time.time()\n")
    return target


def _pyproject_without_contract(tmp_path: Path) -> None:
    # Fixture trees have no golden file; disable the project-scope
    # PHL3xx rules so module rules are tested in isolation.
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\nselect = ['PHL1', 'PHL2', 'PHL4']\n"
    )


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    _pyproject_without_contract(tmp_path)
    target = _write_clean(tmp_path)
    code = main([str(target), "--config-root", str(tmp_path)])
    assert code == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_exit_one_with_rendered_findings(tmp_path, capsys):
    _pyproject_without_contract(tmp_path)
    target = _write_dirty(tmp_path)
    code = main([str(target), "--config-root", str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "PHL102" in out
    assert "dirty.py:2:" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    code = main(
        [str(tmp_path / "nope.py"), "--config-root", str(tmp_path)]
    )
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_select_and_ignore_flags(tmp_path):
    _pyproject_without_contract(tmp_path)
    target = _write_dirty(tmp_path)
    root = ["--config-root", str(tmp_path)]
    assert main([str(target), "--select", "PHL105", *root]) == 0
    assert main([str(target), "--select", "PHL102", *root]) == 1
    assert main(
        [str(target), "--select", "PHL102", "--ignore", "PHL102", *root]
    ) == 0


def test_json_format(tmp_path, capsys):
    _pyproject_without_contract(tmp_path)
    target = _write_dirty(tmp_path)
    code = main(
        [str(target), "--format", "json", "--config-root", str(tmp_path)]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["code"] == "PHL102"
    assert payload[0]["rule"] == "direct-wall-clock"
    assert payload[0]["line"] == 2


def test_statistics_output(tmp_path, capsys):
    _pyproject_without_contract(tmp_path)
    target = _write_dirty(tmp_path)
    main([str(target), "--statistics", "--config-root", str(tmp_path)])
    out = capsys.readouterr().out
    assert "PHL102 (direct-wall-clock): 1" in out
    assert "total: 1 finding(s)" in out


def test_write_then_apply_baseline(tmp_path, capsys):
    _pyproject_without_contract(tmp_path)
    target = _write_dirty(tmp_path)
    baseline = tmp_path / "baseline.json"
    root = ["--config-root", str(tmp_path)]
    assert main(
        [str(target), "--write-baseline", str(baseline), *root]
    ) == 0
    assert "1 finding(s)" in capsys.readouterr().out
    assert main([str(target), "--baseline", str(baseline), *root]) == 0


def test_list_rules_covers_every_code(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_explain_known_and_unknown(capsys):
    assert main(["--explain", "PHL101"]) == 0
    out = capsys.readouterr().out
    assert "unseeded-rng" in out
    assert "# phl: ignore[PHL101]" in out
    assert main(["--explain", "PHL999"]) == 2


def test_default_paths_come_from_repo_config(capsys):
    """With no paths, the repo pyproject supplies src+tests — and the
    live tree is clean (the acceptance criterion, via the CLI)."""
    import os

    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        code = main(["--config-root", str(REPO_ROOT)])
    finally:
        os.chdir(cwd)
    assert code == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_github_format_emits_error_annotations(tmp_path, capsys):
    _pyproject_without_contract(tmp_path)
    target = _write_dirty(tmp_path)
    code = main(
        [str(target), "--format", "github", "--config-root", str(tmp_path)]
    )
    assert code == 1
    out = capsys.readouterr().out
    (line,) = [l for l in out.splitlines() if l.startswith("::error")]
    assert line.startswith("::error file=")
    assert "dirty.py,line=2,col=" in line
    assert "title=repro.lint PHL102::" in line


def test_github_format_escapes_annotation_payload(tmp_path, capsys):
    from repro.lint.cli import _escape_annotation

    assert _escape_annotation("a%b\r\nc") == "a%25b%0D%0Ac"
    # Clean tree emits no annotations and stays silent-but-green.
    _pyproject_without_contract(tmp_path)
    target = _write_clean(tmp_path)
    code = main(
        [str(target), "--format", "github", "--config-root", str(tmp_path)]
    )
    assert code == 0
    assert "::error" not in capsys.readouterr().out


def test_jobs_flag_validated_and_parallel_run_matches(tmp_path, capsys):
    _pyproject_without_contract(tmp_path)
    target = _write_dirty(tmp_path)
    assert main([str(target), "--jobs", "0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err
    code = main(
        [str(target), "--jobs", "2", "--config-root", str(tmp_path)]
    )
    serial_out = capsys.readouterr().out
    assert code == 1
    main([str(target), "--config-root", str(tmp_path)])
    assert capsys.readouterr().out == serial_out


def test_report_unused_suppressions_flag(tmp_path, capsys):
    _pyproject_without_contract(tmp_path)
    target = tmp_path / "stale.py"
    target.write_text("x = 1  # phl: ignore[PHL102]\n")
    assert main([str(target), "--config-root", str(tmp_path)]) == 0
    capsys.readouterr()
    code = main(
        [
            str(target),
            "--report-unused-suppressions",
            "--config-root",
            str(tmp_path),
        ]
    )
    assert code == 1
    assert "PHL601" in capsys.readouterr().out
