"""Engine mechanics: suppression, config, selection, baseline, imports."""

import json
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, lint_source, load_config
from repro.lint.engine import iter_python_files, write_baseline
from repro.lint.findings import Finding, parse_suppressions
from repro.lint.imports import ImportMap

import ast

#: A module with one violation per determinism family member.
DIRTY = (
    "import random\n"
    "import time\n"
    "rng = random.Random()\n"
    "stamp = time.time()\n"
    "key = hash('x')\n"
)

FIXTURE_PATH = "src/repro/_engine_fixture.py"


def _no_contract(root: Path, **kwargs) -> LintConfig:
    """A config whose project-scope contract rules are disabled."""
    kwargs.setdefault("select", ("PHL1", "PHL2", "PHL4"))
    return LintConfig(root=root, contract_golden=None, **kwargs)


# ----------------------------------------------------------------------
# Inline suppression.

def test_inline_suppression_single_code():
    source = "import time\nstamp = time.time()  # phl: ignore[PHL102]\n"
    assert lint_source(source, path=FIXTURE_PATH) == []


def test_inline_suppression_is_code_specific():
    source = "import time\nstamp = time.time()  # phl: ignore[PHL105]\n"
    assert [f.code for f in lint_source(source, path=FIXTURE_PATH)] == [
        "PHL102"
    ]


def test_inline_suppression_bare_form_silences_all():
    source = (
        "import time, random\n"
        "x = (time.time(), random.random())  # phl: ignore\n"
    )
    assert lint_source(source, path=FIXTURE_PATH) == []


def test_inline_suppression_multiple_codes():
    source = (
        "import time, random\n"
        "x = (time.time(), random.random())"
        "  # phl: ignore[PHL102,PHL101]\n"
    )
    assert lint_source(source, path=FIXTURE_PATH) == []


def test_parse_suppressions_shapes():
    mapping = parse_suppressions(
        "a = 1\n"
        "b = 2  # phl: ignore\n"
        "c = 3  # phl: ignore[PHL101, PHL105]\n"
    )
    assert mapping == {2: None, 3: frozenset({"PHL101", "PHL105"})}


# ----------------------------------------------------------------------
# Selection and exclusion.

def test_select_prefix_limits_rules():
    config = LintConfig(select=("PHL105",), contract_golden=None)
    findings = lint_source(DIRTY, path=FIXTURE_PATH, config=config)
    assert [f.code for f in findings] == ["PHL105"]


def test_ignore_prefix_disables_family():
    config = LintConfig(ignore=("PHL10",), contract_golden=None)
    findings = lint_source(DIRTY, path=FIXTURE_PATH, config=config)
    assert findings == []


def test_exclude_glob_skips_file(tmp_path):
    (tmp_path / "generated.py").write_text("import time\nt = time.time()\n")
    config = _no_contract(tmp_path, exclude=("generated.py",))
    assert lint_paths([tmp_path], config) == []


def test_clock_exempt_path_allows_wall_clock(tmp_path):
    # The default exemption glob is `*/resilience/clock.py`, which
    # requires at least one leading path component.
    clock_dir = tmp_path / "pkg" / "resilience"
    clock_dir.mkdir(parents=True)
    (clock_dir / "clock.py").write_text("import time\nt = time.time()\n")
    config = _no_contract(tmp_path)
    assert lint_paths([tmp_path], config) == []


def test_per_rule_exempt_path(tmp_path):
    # The default exemption glob is `*/cli.py` (any nested cli.py).
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "cli.py").write_text("print('usage: ...')\n")
    (pkg / "core.py").write_text("print('leak')\n")
    config = _no_contract(tmp_path)
    findings = lint_paths([tmp_path], config)
    assert [(f.path, f.code) for f in findings] == [
        ("pkg/core.py", "PHL403")
    ]


# ----------------------------------------------------------------------
# Discovery and ordering.

def test_iter_python_files_sorted_and_filtered(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "c.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    config = LintConfig(root=tmp_path)
    files = iter_python_files([tmp_path], config)
    assert [f.name for f in files] == ["a.py", "b.py", "c.py"]


def test_findings_sorted_by_location(tmp_path):
    (tmp_path / "zz.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "aa.py").write_text(
        "import time\nt = time.time()\nu = time.time()\n"
    )
    config = _no_contract(tmp_path)
    findings = lint_paths([tmp_path], config)
    assert [(f.path, f.line) for f in findings] == [
        ("aa.py", 2), ("aa.py", 3), ("zz.py", 2),
    ]


# ----------------------------------------------------------------------
# Baseline.

def test_baseline_roundtrip(tmp_path):
    (tmp_path / "legacy.py").write_text("import time\nt = time.time()\n")
    config = _no_contract(tmp_path)
    findings = lint_paths([tmp_path], config)
    assert [f.code for f in findings] == ["PHL102"]
    write_baseline(findings, tmp_path / "baseline.json")
    baselined = _no_contract(tmp_path, baseline="baseline.json")
    assert lint_paths([tmp_path], baselined) == []
    # New findings in the same file still surface.
    (tmp_path / "legacy.py").write_text(
        "import time\nt = time.time()\nkey = hash('x')\n"
    )
    assert [f.code for f in lint_paths([tmp_path], baselined)] == ["PHL105"]


def test_baseline_file_is_stable_json(tmp_path):
    finding = Finding(
        path="a.py", line=3, col=1, code="PHL105", message="msg"
    )
    write_baseline([finding], tmp_path / "baseline.json")
    payload = json.loads((tmp_path / "baseline.json").read_text())
    assert payload["format"] == "phl-baseline/1"
    assert payload["findings"] == [
        {"path": "a.py", "code": "PHL105", "message": "msg"}
    ]


# ----------------------------------------------------------------------
# pyproject configuration.

def test_load_config_reads_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\n"
        'paths = ["lib"]\n'
        'select = ["PHL1"]\n'
        'ignore = ["PHL103"]\n'
        'exclude = ["lib/generated/*"]\n'
        'clock-exempt = ["lib/clock.py"]\n'
        'contract-golden = "contract.json"\n'
        'baseline = "accepted.json"\n'
        "[tool.repro-lint.per-rule-exempt]\n"
        'PHL105 = ["lib/fingerprint.py"]\n'
    )
    config = load_config(root=tmp_path)
    assert config.paths == ("lib",)
    assert config.select == ("PHL1",)
    assert config.ignore == ("PHL103",)
    assert config.exclude == ("lib/generated/*",)
    assert config.clock_exempt == ("lib/clock.py",)
    assert config.contract_golden == "contract.json"
    assert config.baseline == "accepted.json"
    assert config.per_rule_exempt["PHL105"] == ("lib/fingerprint.py",)
    # Defaults that were not overridden survive the merge.
    assert "PHL403" in config.per_rule_exempt


def test_load_config_defaults_without_pyproject(tmp_path):
    config = load_config(root=tmp_path, pyproject=tmp_path / "missing.toml")
    assert config.select == ("PHL",)
    assert config.paths == ("src", "tests")


def test_load_config_rejects_bad_types(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\nselect = 'PHL1'\n"
    )
    with pytest.raises(ValueError):
        load_config(root=tmp_path)


def test_repo_pyproject_parses():
    repo_root = Path(__file__).resolve().parents[2]
    config = load_config(root=repo_root)
    assert config.paths == ("src", "tests")
    assert config.contract_golden == "tests/data/golden_features.json"


# ----------------------------------------------------------------------
# Alias-aware import resolution.

@pytest.mark.parametrize(
    "source,expr_source,expected",
    [
        ("import numpy as np", "np.random.default_rng",
         "numpy.random.default_rng"),
        ("from numpy.random import default_rng as rng_factory",
         "rng_factory", "numpy.random.default_rng"),
        ("from time import time", "time", "time.time"),
        ("import time", "time.time", "time.time"),
        ("from datetime import datetime", "datetime.now",
         "datetime.datetime.now"),
        ("", "hash", "hash"),
        ("from . import helpers", "helpers.fn", "..helpers.fn"),
    ],
)
def test_import_map_resolution(source, expr_source, expected):
    tree = ast.parse(source)
    imports = ImportMap(tree)
    expr = ast.parse(expr_source, mode="eval").body
    assert imports.resolve(expr) == expected


def test_import_map_rejects_non_dotted_expressions():
    imports = ImportMap(ast.parse(""))
    expr = ast.parse("f().attr", mode="eval").body
    assert imports.resolve(expr) is None


# ----------------------------------------------------------------------
# Parallel linting (--jobs).


def _dirty_tree(tmp_path: Path, files: int = 6) -> Path:
    src = tmp_path / "src"
    src.mkdir()
    for index in range(files):
        (src / f"mod_{index}.py").write_text(
            "import time\n"
            f"stamp_{index} = time.time()\n"
            "key = hash('x')\n"
        )
    (src / "broken.py").write_text("def broken(:\n")
    return src


def test_jobs_output_identical_to_serial(tmp_path):
    src = _dirty_tree(tmp_path)
    config = _no_contract(tmp_path)
    serial = lint_paths([src], config, jobs=1)
    parallel = lint_paths([src], config, jobs=4)
    assert serial == parallel
    assert serial, "fixture tree should produce findings"
    # Byte-identical rendering, not just equal dataclasses.
    assert [f.render() for f in serial] == [f.render() for f in parallel]


def test_jobs_parity_includes_graph_and_suppression_state(tmp_path):
    src = _dirty_tree(tmp_path, files=3)
    (src / "flow.py").write_text(
        "def fetch(url, browser, deadline=None):\n"
        "    return browser.load(url)\n"
    )
    (src / "quiet.py").write_text(
        "import time\n"
        "stamp = time.time()  # phl: ignore[PHL102]\n"
    )
    config = LintConfig(root=tmp_path, contract_golden=None)
    serial = lint_paths(
        [src], config, jobs=1, report_unused_suppressions=True
    )
    parallel = lint_paths(
        [src], config, jobs=3, report_unused_suppressions=True
    )
    assert serial == parallel
    assert "PHL501" in {f.code for f in serial}
    assert "PHL102" not in {
        f.code for f in serial if f.path.endswith("quiet.py")
    }


# ----------------------------------------------------------------------
# Unused-suppression reporting (PHL601).


def test_unused_suppression_reported(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "clean.py").write_text("x = 1  # phl: ignore[PHL102]\n")
    config = _no_contract(tmp_path)
    quiet = lint_paths([src], config)
    assert quiet == []
    findings = lint_paths([src], config, report_unused_suppressions=True)
    assert [f.code for f in findings] == ["PHL601"]
    assert "PHL102" in findings[0].message
    assert findings[0].line == 1


def test_used_suppression_not_reported(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "used.py").write_text(
        "import time\n"
        "stamp = time.time()  # phl: ignore[PHL102]\n"
    )
    config = _no_contract(tmp_path)
    findings = lint_paths([src], config, report_unused_suppressions=True)
    assert findings == []


def test_unknown_code_in_suppression_reported(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "typo.py").write_text(
        "import time\n"
        "stamp = time.time()  # phl: ignore[PHL999]\n"
    )
    config = _no_contract(tmp_path)
    findings = lint_paths([src], config, report_unused_suppressions=True)
    codes = [f.code for f in findings]
    assert "PHL601" in codes
    (meta,) = [f for f in findings if f.code == "PHL601"]
    assert "PHL999" in meta.message and "unknown" in meta.message


def test_docstring_mention_is_not_a_suppression():
    """The marker inside a docstring or string literal is inert."""
    source = (
        '"""Docs showing `# phl: ignore[PHL102]` usage."""\n'
        "import time\n"
        "stamp = time.time()\n"
    )
    findings = lint_source(source, path=FIXTURE_PATH)
    assert "PHL102" in {f.code for f in findings}
    assert parse_suppressions(source) == {}


def test_bare_suppression_counts_as_used_by_any_finding(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "bare.py").write_text(
        "import time\n"
        "stamp = time.time()  # phl: ignore\n"
    )
    config = _no_contract(tmp_path)
    findings = lint_paths([src], config, report_unused_suppressions=True)
    assert findings == []
