"""PHL3xx feature-contract rules: flagged and clean fixtures.

The contract rules read repository state (the live extractor registry
and the golden contract file), so their fixtures are tampered copies of
``tests/data/golden_features.json`` in a temporary root — the clean
fixture is the real golden file itself.
"""

import json
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths
from repro.lint.rules.contract import (
    EXPECTED_TOTAL,
    FeatureNameUniquenessRule,
    FeatureOrderRule,
    FeaturePartitionRule,
    live_feature_groups,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = REPO_ROOT / "tests" / "data" / "golden_features.json"


def _config_with_golden(tmp_path: Path, payload: dict) -> LintConfig:
    golden = tmp_path / "golden.json"
    golden.write_text(json.dumps(payload))
    return LintConfig(root=tmp_path, contract_golden="golden.json")


def _golden_payload() -> dict:
    return json.loads(GOLDEN.read_text())


def _contract_codes(config: LintConfig) -> set[str]:
    # Lint no files: only the project-scope rules run.
    return {f.code for f in lint_paths([], config)}


# ----------------------------------------------------------------------
# Clean fixture: the real repository golden file and live registry.

def test_clean_real_golden_contract():
    config = LintConfig(
        root=REPO_ROOT, contract_golden="tests/data/golden_features.json"
    )
    assert _contract_codes(config) == set()


# ----------------------------------------------------------------------
# PHL301 — partition drift.

def test_phl301_flagged_on_total_drift(tmp_path):
    payload = _golden_payload()
    payload["n_features"] = EXPECTED_TOTAL - 12
    config = _config_with_golden(tmp_path, payload)
    assert "PHL301" in _contract_codes(config)


def test_phl301_flagged_on_partition_drift(tmp_path):
    payload = _golden_payload()
    payload["group_counts"]["f1"] -= 1
    payload["group_counts"]["f5"] += 1
    config = _config_with_golden(tmp_path, payload)
    assert "PHL301" in _contract_codes(config)


def test_phl301_flagged_on_missing_golden(tmp_path):
    config = LintConfig(root=tmp_path, contract_golden="absent.json")
    assert "PHL301" in _contract_codes(config)


def test_phl301_registry_drift_via_injected_groups():
    """A registry that is not 212-total or self-consistent is flagged."""
    rule = FeaturePartitionRule()
    groups = [("f1", ("a", "b"), 2), ("f2", ("c",), 2)]
    findings = list(rule.check(groups, _golden_payload(), "golden.json"))
    codes = {f.code for f in findings}
    assert codes == {"PHL301"}
    messages = " | ".join(f.message for f in findings)
    assert "N_FEATURES=2" in messages  # f2 declares 2 but names 1
    assert f"requires exactly {EXPECTED_TOTAL}" in messages


def test_phl301_clean_on_live_registry(tmp_path):
    rule = FeaturePartitionRule()
    findings = list(
        rule.check(live_feature_groups(), _golden_payload(), "golden.json")
    )
    assert findings == []


# ----------------------------------------------------------------------
# PHL302 — duplicate names.

def test_phl302_flagged_on_duplicate_golden_name(tmp_path):
    payload = _golden_payload()
    payload["feature_names"][1] = payload["feature_names"][0]
    config = _config_with_golden(tmp_path, payload)
    assert "PHL302" in _contract_codes(config)


def test_phl302_flagged_on_duplicate_registry_name():
    rule = FeatureNameUniquenessRule()
    groups = [("f1", ("dup", "dup"), 2)]
    findings = list(rule.check(groups, None, "golden.json"))
    assert [f.code for f in findings] == ["PHL302"]
    assert "'dup'" in findings[0].message


def test_phl302_clean_on_live_registry():
    rule = FeatureNameUniquenessRule()
    findings = list(
        rule.check(live_feature_groups(), _golden_payload(), "golden.json")
    )
    assert findings == []


# ----------------------------------------------------------------------
# PHL303 — name/order drift.

def test_phl303_flagged_on_reordered_names(tmp_path):
    payload = _golden_payload()
    names = payload["feature_names"]
    names[0], names[1] = names[1], names[0]
    config = _config_with_golden(tmp_path, payload)
    codes = _contract_codes(config)
    assert "PHL303" in codes


def test_phl303_reports_first_divergent_index():
    rule = FeatureOrderRule()
    payload = _golden_payload()
    payload["feature_names"] = list(payload["feature_names"])
    payload["feature_names"][5] = "renamed_feature"
    findings = list(
        rule.check(live_feature_groups(), payload, "golden.json")
    )
    assert [f.code for f in findings] == ["PHL303"]
    assert "index 5" in findings[0].message


def test_phl303_flagged_on_missing_names_key(tmp_path):
    payload = _golden_payload()
    del payload["feature_names"]
    config = _config_with_golden(tmp_path, payload)
    assert "PHL303" in _contract_codes(config)


def test_phl303_clean_on_live_registry():
    rule = FeatureOrderRule()
    findings = list(
        rule.check(live_feature_groups(), _golden_payload(), "golden.json")
    )
    assert findings == []


# ----------------------------------------------------------------------
# The contract data itself.

def test_live_registry_matches_paper_partition():
    groups = live_feature_groups()
    assert [(name, len(names)) for name, names, _ in groups] == [
        ("f1", 106), ("f2", 66), ("f3", 22), ("f4", 13), ("f5", 5),
    ]
    assert sum(len(names) for _, names, _ in groups) == EXPECTED_TOTAL


@pytest.mark.parametrize("key", ["feature_names", "group_counts"])
def test_golden_file_carries_contract_fields(key):
    assert key in _golden_payload()
