"""Direct coverage for :class:`repro.lint.imports.ImportMap`.

The resolver underpins every alias-sensitive rule and the whole
interprocedural graph, so its binding semantics are pinned here:
root-binding of plain ``import a.b.c``, ``from x import y as z``
chains, relative imports keeping their leading dots, and local-name
shadowing (last import wins, mirroring runtime rebinding).
"""

import ast

from repro.lint.imports import ImportMap


def _resolve(source: str, expr: str) -> str | None:
    imports = ImportMap(ast.parse(source))
    return imports.resolve(ast.parse(expr, mode="eval").body)


def test_plain_import_binds_only_the_root_name():
    src = "import numpy.random.mtrand\n"
    # The statement binds ``numpy`` — attribute access walks from it.
    assert _resolve(src, "numpy") == "numpy"
    assert (
        _resolve(src, "numpy.random.default_rng")
        == "numpy.random.default_rng"
    )
    # The dotted module path itself is NOT bound as a local name.
    imports = ImportMap(ast.parse(src))
    assert "numpy.random.mtrand" not in imports._aliases


def test_import_as_binds_the_full_dotted_path():
    src = "import numpy.random as npr\n"
    assert _resolve(src, "npr.default_rng") == "numpy.random.default_rng"
    # Without the alias the root is untouched by the as-form.
    assert _resolve(src, "numpy.random") == "numpy.random"


def test_from_import_and_as_aliases():
    src = "from time import time\nfrom time import monotonic as now\n"
    assert _resolve(src, "time()") is None  # calls are not dotted chains
    assert _resolve(src, "time") == "time.time"
    assert _resolve(src, "now") == "time.monotonic"
    # Attribute access through a from-alias extends the canonical name.
    assert _resolve(src, "now.__name__") == "time.monotonic.__name__"


def test_relative_imports_keep_leading_dots():
    src = (
        "from . import sibling\n"
        "from .helpers import tool\n"
        "from ..pkg import thing as renamed\n"
    )
    assert _resolve(src, "sibling") == "..sibling"
    assert _resolve(src, "tool") == ".helpers.tool"
    assert _resolve(src, "renamed") == "..pkg.thing"
    # The leading dot guarantees no overlap with absolute names.
    assert _resolve(src, "tool") != "helpers.tool"


def test_local_name_shadowing_last_import_wins():
    src = "from json import loads\nfrom pickle import loads\n"
    assert _resolve(src, "loads") == "pickle.loads"


def test_import_then_from_shadowing():
    src = "import threading\nfrom dummy import threading\n"
    assert _resolve(src, "threading.Lock") == "dummy.threading.Lock"


def test_unimported_bare_names_resolve_to_themselves():
    assert _resolve("x = 1\n", "hash") == "hash"
    assert _resolve("x = 1\n", "set.union") == "set.union"


def test_non_dotted_chains_resolve_to_none():
    src = "import numpy\n"
    assert _resolve(src, "numpy[0]") is None
    assert _resolve(src, "numpy().linalg") is None
    assert _resolve(src, "(numpy or math).cos") is None


def test_multiple_names_in_one_statement():
    src = "from os.path import join, split as cleave\n"
    assert _resolve(src, "join") == "os.path.join"
    assert _resolve(src, "cleave") == "os.path.split"
