"""Fixture-driven tests for the PHL5xx interprocedural flow rules.

Each case in :data:`tests.lint.fixtures.GRAPH_FIXTURES` is a
mini-project (display path -> source) linted through the public
:func:`repro.lint.lint_project_sources` entry point, so the tests cover
the graph construction, cross-module symbol resolution and the
suppression machinery around the rules — not just the rule predicates.
"""

import pytest

from repro.lint import RULES, lint_project_sources
from repro.lint.registry import GraphRule

from tests.lint.fixtures import GRAPH_FIXTURES


def _codes(sources: dict[str, str]) -> set[str]:
    return {f.code for f in lint_project_sources(sources)}


@pytest.mark.parametrize(
    "code,index,sources",
    [
        (code, index, sources)
        for code, (flagged, _clean) in sorted(GRAPH_FIXTURES.items())
        for index, sources in enumerate(flagged)
    ],
)
def test_flagged_graph_fixture_is_flagged(code, index, sources):
    assert code in _codes(sources), f"{code} missed case {index}"


@pytest.mark.parametrize(
    "code,index,sources",
    [
        (code, index, sources)
        for code, (_flagged, clean) in sorted(GRAPH_FIXTURES.items())
        for index, sources in enumerate(clean)
    ],
)
def test_clean_graph_fixture_is_clean(code, index, sources):
    assert code not in _codes(sources), f"{code} false positive, case {index}"


def test_every_graph_rule_has_fixture_pair():
    """Each PHL5xx code has >=1 flagged and >=1 clean mini-project."""
    graph_rules = {
        code
        for code, rule in RULES.items()
        if isinstance(rule, GraphRule)
    }
    assert graph_rules == set(GRAPH_FIXTURES)
    for code, (flagged, clean) in GRAPH_FIXTURES.items():
        assert flagged, f"{code} has no flagged fixture"
        assert clean, f"{code} has no clean fixture"


def test_deadline_drop_names_parameter_and_blocking_path():
    """PHL501 messages carry the dropped parameter and the sink."""
    (finding,) = lint_project_sources(GRAPH_FIXTURES["PHL501"][0][0])
    assert finding.code == "PHL501"
    assert "`deadline`" in finding.message
    assert "browser.load" in finding.message


def test_deadline_drop_reports_transitive_route():
    """The interprocedural case names the callee that blocks."""
    findings = lint_project_sources(GRAPH_FIXTURES["PHL501"][0][1])
    drops = [f for f in findings if f.code == "PHL501"]
    assert len(drops) == 1
    assert "run_batch" in drops[0].message


def test_lock_cycle_message_names_both_entities():
    findings = lint_project_sources(GRAPH_FIXTURES["PHL502"][0][0])
    cycles = [f for f in findings if f.code == "PHL502"]
    assert cycles, "cycle not detected"
    message = cycles[0].message
    assert "Alpha" in message and "Beta" in message


def test_self_deadlock_message_mentions_reacquire():
    findings = lint_project_sources(GRAPH_FIXTURES["PHL502"][0][1])
    cycles = [f for f in findings if f.code == "PHL502"]
    assert len(cycles) == 1
    assert "re-acquire" in cycles[0].message
    assert "Counter" in cycles[0].message


def test_taxonomy_escape_only_fires_on_guarded_paths():
    """The same raise outside taxonomy-paths globs is legal."""
    guarded = GRAPH_FIXTURES["PHL503"][0][0]
    free = GRAPH_FIXTURES["PHL503"][1][1]
    assert "PHL503" in _codes(guarded)
    assert "PHL503" not in _codes(free)


def test_graph_findings_are_suppressible_inline():
    """`# phl: ignore[...]` works for graph findings like any other."""
    sources = dict(GRAPH_FIXTURES["PHL501"][0][0])
    (display,) = sources
    sources[display] = sources[display].replace(
        "def fetch_verdict(url, browser, deadline=None):",
        "def fetch_verdict(url, browser, deadline=None):"
        "  # phl: ignore[PHL501]",
    )
    assert "PHL501" not in _codes(sources)


def test_unresolvable_raise_stays_silent():
    """Raising a caught exception variable is never flagged."""
    sources = {
        "src/repro/resilience/rethrow.py": (
            "def passthrough(exc):\n"
            "    raise exc\n"
        )
    }
    assert "PHL503" not in _codes(sources)
