"""Flagged/clean source fixtures for every AST-scope lint rule.

``AST_FIXTURES`` maps each module-scope rule code to ``(flagged,
clean)`` snippet pairs: every ``flagged`` snippet must produce at least
one finding with exactly that code, and every ``clean`` snippet must
produce none.  The project-scope PHL3xx rules are exercised separately
in ``test_contract.py`` with tampered golden files, since their inputs
are repository state rather than source text.

The snippets live as strings (not importable modules) so the self-check
run of ``repro.lint`` over the live ``tests/`` tree does not trip over
its own test data.
"""

#: code -> (list of flagged snippets, list of clean snippets)
AST_FIXTURES: dict[str, tuple[list[str], list[str]]] = {
    "PHL101": (
        [
            "import random\nrng = random.Random()\n",
            "import random\nrng = random.Random(None)\n",
            "import numpy as np\nrng = np.random.default_rng()\n",
            "from numpy.random import default_rng\nrng = default_rng()\n",
            "import random\nvalue = random.random()\n",
            "from random import choice\npick = choice([1, 2, 3])\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import random\nrng = random.SystemRandom()\n",
        ],
        [
            "import random\nrng = random.Random(42)\n",
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "from numpy.random import default_rng\nrng = default_rng(seed)\n",
            "rng.random()\n",  # drawing from an existing generator
            "import numpy as np\nrng = np.random.default_rng(config.seed)\n",
        ],
    ),
    "PHL102": (
        [
            "import time\nstamp = time.time()\n",
            "import time\nstamp = time.time_ns()\n",
            "from time import time\nstamp = time()\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "from datetime import datetime\nnow = datetime.utcnow()\n",
            "from datetime import date\ntoday = date.today()\n",
        ],
        [
            "import time\nelapsed = time.perf_counter()\n",
            "import time\nreading = time.monotonic()\n",
            "now = clock.now()\n",  # the injectable Clock interface
            "import time\ntime.sleep(0.1)\n",
        ],
    ),
    "PHL103": (
        [
            "for item in {1, 2, 3}:\n    use(item)\n",
            "for item in set(values):\n    use(item)\n",
            "out = [x for x in {v for v in values}]\n",
            "for item in set(a) | set(b):\n    use(item)\n",
            "for item in frozenset(values):\n    use(item)\n",
        ],
        [
            "for item in sorted({1, 2, 3}):\n    use(item)\n",
            "for item in sorted(set(values)):\n    use(item)\n",
            "present = value in {1, 2, 3}\n",  # membership, not iteration
            "for item in [1, 2, 3]:\n    use(item)\n",
        ],
    ),
    "PHL104": (
        [
            "import os\nnames = os.listdir(path)\n",
            "import os\nfor entry in os.scandir(path):\n    use(entry)\n",
            "for path in base.iterdir():\n    use(path)\n",
            "found = {p.stem: p for p in base.glob('*.txt')}\n",
            "for path in base.rglob('*.py'):\n    use(path)\n",
        ],
        [
            "import os\nnames = sorted(os.listdir(path))\n",
            "for path in sorted(base.glob('*.txt')):\n    use(path)\n",
            "import os\ncount = len(os.listdir(path))\n",
            "import os\npresent = set(os.listdir(path))\n",
        ],
    ),
    "PHL105": (
        [
            "key = hash(url)\n",
            "bucket = hash(name) % shards\n",
        ],
        [
            "import hashlib\nkey = hashlib.sha256(url.encode()).hexdigest()\n",
            "import zlib\nkey = zlib.crc32(url.encode())\n",
            "digest = obj.hash()\n",  # a method, not the builtin
        ],
    ),
    "PHL201": (
        [
            # Unguarded dict store in a lock-owning class.
            (
                "import threading\n"
                "class Cache:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._entries = {}\n"
                "    def put(self, key, value):\n"
                "        self._entries[key] = value\n"
            ),
            # Unguarded counter bump and container method.
            (
                "import threading\n"
                "class Pool:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.RLock()\n"
                "        self.pending = []\n"
                "        self.hits = 0\n"
                "    def record(self, item):\n"
                "        self.hits += 1\n"
                "        self.pending.append(item)\n"
            ),
        ],
        [
            # Same mutations, correctly guarded.
            (
                "import threading\n"
                "class Cache:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._entries = {}\n"
                "    def put(self, key, value):\n"
                "        with self._lock:\n"
                "            self._entries[key] = value\n"
            ),
            # Pickling hooks run unshared and are exempt.
            (
                "import threading\n"
                "class Cache:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def __getstate__(self):\n"
                "        state = self.__dict__.copy()\n"
                "        del state['_lock']\n"
                "        return state\n"
                "    def __setstate__(self, state):\n"
                "        self.__dict__.update(state)\n"
                "        self._lock = threading.Lock()\n"
            ),
            # No lock attribute: the class opted out of sharing.
            (
                "class Plain:\n"
                "    def __init__(self):\n"
                "        self._entries = {}\n"
                "    def put(self, key, value):\n"
                "        self._entries[key] = value\n"
            ),
        ],
    ),
    "PHL202": (
        [
            (
                "import threading\n"
                "class Registry:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n"
                "    def entries(self):\n"
                "        with self._lock:\n"
                "            for item in self._items:\n"
                "                yield item\n"
            ),
        ],
        [
            # Snapshot under the lock, yield after releasing it.
            (
                "import threading\n"
                "class Registry:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n"
                "    def entries(self):\n"
                "        with self._lock:\n"
                "            snapshot = list(self._items)\n"
                "        for item in snapshot:\n"
                "            yield item\n"
            ),
        ],
    ),
    "PHL106": (
        [
            "import time\nstart = time.perf_counter()\n",
            "from time import perf_counter\nstart = perf_counter()\n",
            "import time\nreading = time.monotonic()\n",
            "import time\nstamp = time.time()\n",
        ],
        [
            "start = tracer.clock.now()\n",  # the injected clock
            "now = clock.now()\n",
            "import time\ntime.sleep(0.1)\n",  # sleeping is not timing
        ],
    ),
    "PHL401": (
        [
            "def collect(item, bucket=[]):\n    bucket.append(item)\n",
            "def tally(counts={}):\n    return counts\n",
            "def gather(*, seen=set()):\n    return seen\n",
            "def build(rows=list()):\n    return rows\n",
        ],
        [
            "def collect(item, bucket=None):\n    bucket = bucket or []\n",
            "def tally(counts=()):\n    return dict(counts)\n",
            "def label(name='default'):\n    return name\n",
        ],
    ),
    "PHL402": (
        [
            "try:\n    risky()\nexcept:\n    pass\n",
        ],
        [
            "try:\n    risky()\nexcept ValueError:\n    pass\n",
            "try:\n    risky()\nexcept Exception:\n    pass\n",
        ],
    ),
    "PHL403": (
        [
            "print('debug value', value)\n",
            "def report(rows):\n    print(rows)\n",
        ],
        [
            "import logging\nlogging.getLogger(__name__).info('value')\n",
            "text = 'print this later'\n",
        ],
    ),
    "PHL404": (
        [
            "with tracer.span('Extract F1'):\n    pass\n",
            "tracer.span('extract..f1')\n",
            "with rec.span('extract-f1') as sp:\n    sp.set(ok=True)\n",
            "tracer.span('')\n",
            "tracer.span('frobnicate.step')\n",  # unknown dotted root
            "tracer.span('qualityx.dump')\n",  # near-miss of a real root
        ],
        [
            "with tracer.span('extract.f2', metric='h'):\n    pass\n",
            "tracer.span('browse.load')\n",
            "tracer.span('extract.f{group}')\n",  # template segment
            "tracer.span('serve.triage')\n",  # tier-0 triage span
            "tracer.span('cache.shard')\n",  # per-shard snapshot span
            "tracer.span('quality.evaluate')\n",  # SLO evaluation span
            "tracer.span('quality.drift')\n",  # drift evaluation span
            "tracer.span('frobnicate')\n",  # single segments: shape only
            "tracer.span(name)\n",  # non-literal names are dynamic
            "cell.span(2)\n",  # unrelated .span API, not a name
        ],
    ),
}

#: Path used when linting fixture snippets: inside ``src`` so no
#: per-rule path exemption (e.g. PHL403's CLI allowlist) applies, and
#: inside ``obs/`` so the instrumented-path scope of PHL106 does.
FIXTURE_PATH = "src/repro/obs/_lint_fixture.py"


#: Graph-rule fixtures: ``code -> (flagged, clean)`` where each case is
#: a mini-project (display path -> source) handed to
#: :func:`repro.lint.lint_project_sources`.  Display paths matter: the
#: PHL503 guarded-path globs match ``src/*/resilience/*``.
GRAPH_FIXTURES: dict[str, tuple[list[dict[str, str]], list[dict[str, str]]]] = {
    "PHL501": (
        [
            # Direct: deadline accepted, never touched, blocking call.
            {
                "src/repro/flowcase/direct.py": (
                    "def fetch_verdict(url, browser, deadline=None):\n"
                    "    return browser.load(url)\n"
                )
            },
            # Interprocedural: the blocking call is one frame down.
            {
                "src/repro/flowcase/chain.py": (
                    "def load_all(urls, pool, deadline=None):\n"
                    "    return run_batch(urls, pool)\n"
                    "\n"
                    "def run_batch(urls, pool):\n"
                    "    return pool.map(str, urls)\n"
                )
            },
            # Cross-module: caller and blocking helper in other files.
            {
                "src/repro/flowcase/outer.py": (
                    "from repro.flowcase.inner import run_batch\n"
                    "\n"
                    "def load_all(urls, pool, deadline=None):\n"
                    "    return run_batch(urls, pool)\n"
                ),
                "src/repro/flowcase/inner.py": (
                    "def run_batch(urls, pool):\n"
                    "    return pool.map(str, urls)\n"
                ),
            },
        ],
        [
            # Forwarded as a keyword argument.
            {
                "src/repro/flowcase/forwarded.py": (
                    "def fetch_verdict(url, browser, deadline=None):\n"
                    "    return browser.load(url, deadline=deadline)\n"
                )
            },
            # Consulted before the blocking call.
            {
                "src/repro/flowcase/checked.py": (
                    "def load_all(urls, pool, deadline=None):\n"
                    "    if deadline is not None:\n"
                    "        deadline.check('batch')\n"
                    "    return pool.map(str, urls)\n"
                )
            },
            # Accepted but nothing blocking is reachable: not a drop.
            {
                "src/repro/flowcase/harmless.py": (
                    "def score(value, deadline=None):\n"
                    "    return value + 1\n"
                )
            },
        ],
    ),
    "PHL502": (
        [
            # Two classes acquiring each other's locks in opposite
            # orders (the fuzzy cross-class edges close the cycle).
            {
                "src/repro/flowcase/pair.py": (
                    "import threading\n"
                    "\n"
                    "class Alpha:\n"
                    "    def __init__(self, beta):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.beta = beta\n"
                    "\n"
                    "    def poke(self):\n"
                    "        with self._lock:\n"
                    "            self.beta.bump()\n"
                    "\n"
                    "class Beta:\n"
                    "    def __init__(self, alpha):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.alpha = alpha\n"
                    "\n"
                    "    def bump(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                    "\n"
                    "    def cross(self):\n"
                    "        with self._lock:\n"
                    "            self.alpha.poke()\n"
                )
            },
            # Non-reentrant self-deadlock through a helper method.
            {
                "src/repro/flowcase/selfdead.py": (
                    "import threading\n"
                    "\n"
                    "class Counter:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.total = 0\n"
                    "\n"
                    "    def bump_locked(self):\n"
                    "        with self._lock:\n"
                    "            self.total += 1\n"
                    "\n"
                    "    def bump_twice(self):\n"
                    "        with self._lock:\n"
                    "            self.bump_locked()\n"
                )
            },
        ],
        [
            # Consistent order everywhere: Alpha before Beta.
            {
                "src/repro/flowcase/ordered.py": (
                    "import threading\n"
                    "\n"
                    "class Alpha:\n"
                    "    def __init__(self, beta):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.beta = beta\n"
                    "\n"
                    "    def poke(self):\n"
                    "        with self._lock:\n"
                    "            self.beta.bump()\n"
                    "\n"
                    "class Beta:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "\n"
                    "    def bump(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                )
            },
            # Re-entry through an RLock is deliberate and legal.
            {
                "src/repro/flowcase/reentrant.py": (
                    "import threading\n"
                    "\n"
                    "class Counter:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.RLock()\n"
                    "        self.total = 0\n"
                    "\n"
                    "    def bump_locked(self):\n"
                    "        with self._lock:\n"
                    "            self.total += 1\n"
                    "\n"
                    "    def bump_twice(self):\n"
                    "        with self._lock:\n"
                    "            self.bump_locked()\n"
                )
            },
        ],
    ),
    "PHL503": (
        [
            # A guarded path raising a raw builtin outside the allowlist.
            {
                "src/repro/resilience/escape.py": (
                    "def guard(flag):\n"
                    "    if flag:\n"
                    "        raise RuntimeError('upstream stalled')\n"
                )
            },
            # A third-party (dotted, non-project) exception class.
            {
                "src/repro/serve/vendor.py": (
                    "import requests\n"
                    "\n"
                    "def fetch(url):\n"
                    "    raise requests.HTTPError(url)\n"
                )
            },
        ],
        [
            # Taxonomy subclass (cross-module base resolution) and an
            # allowed programming-error builtin.
            {
                "src/repro/resilience/classified.py": (
                    "from repro.resilience.errors import ResilienceError\n"
                    "\n"
                    "class UpstreamStall(ResilienceError):\n"
                    "    pass\n"
                    "\n"
                    "def guard(flag):\n"
                    "    if flag:\n"
                    "        raise UpstreamStall('stalled')\n"
                    "    raise ValueError('bad flag')\n"
                )
            },
            # Outside the guarded paths anything goes.
            {
                "src/repro/web/free.py": (
                    "def boom():\n"
                    "    raise RuntimeError('not a guarded path')\n"
                )
            },
        ],
    ),
    "PHL504": (
        [
            # Span opened by hand, early return can leak it.
            {
                "src/repro/flowcase/leaky.py": (
                    "def serve_one(tracer, work):\n"
                    "    span = tracer.span('serve.request')\n"
                    "    if not work:\n"
                    "        return None\n"
                    "    span.__exit__(None, None, None)\n"
                    "    return work\n"
                )
            },
        ],
        [
            # The with-form closes the span on every exit.
            {
                "src/repro/flowcase/scoped.py": (
                    "def serve_one(tracer, work):\n"
                    "    with tracer.span('serve.request'):\n"
                    "        return work\n"
                )
            },
            # A bare start with no later return/raise edge.
            {
                "src/repro/flowcase/tail.py": (
                    "def start_root(tracer):\n"
                    "    tracer.span('serve.session')\n"
                )
            },
        ],
    ),
}
