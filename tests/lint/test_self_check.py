"""Self-check: the live repository tree is lint-clean.

This is the acceptance criterion made executable: ``repro.lint`` over
``src/`` and ``tests/`` with the repo's own pyproject configuration
must report zero findings — including the PHL3xx feature-contract
cross-check of the live registry against the golden file.  Any new
nondeterminism, lock-discipline breach or contract drift lands here
(and in the CI ``lint`` job) before it can reach the golden matrix.
"""

from pathlib import Path

from repro.lint import lint_paths, load_config
from repro.lint.engine import selected_rules
from repro.lint.registry import GraphRule, ProjectRule

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_live_tree_is_lint_clean():
    config = load_config(root=REPO_ROOT)
    findings = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"], config
    )
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"repro.lint found violations:\n{rendered}"


def test_repo_config_enables_every_family():
    config = load_config(root=REPO_ROOT)
    enabled = {rule.code for rule in selected_rules(config)}
    assert {code[:4] for code in enabled} == {
        "PHL1",
        "PHL2",
        "PHL3",
        "PHL4",
        "PHL5",
        "PHL6",
    }


def test_contract_rules_run_against_repo_golden():
    """The self-check genuinely includes the project-scope rules."""
    config = load_config(root=REPO_ROOT)
    project = [
        rule
        for rule in selected_rules(config)
        if isinstance(rule, ProjectRule) and not isinstance(rule, GraphRule)
    ]
    assert {rule.code for rule in project} == {
        "PHL301",
        "PHL302",
        "PHL303",
        "PHL601",
    }
    golden = config.golden_path()
    assert golden is not None and golden.is_file()


def test_graph_rules_enabled_for_repo():
    """The flow family runs in the self-check and in CI."""
    config = load_config(root=REPO_ROOT)
    graph = [
        rule
        for rule in selected_rules(config)
        if isinstance(rule, GraphRule)
    ]
    assert {rule.code for rule in graph} == {
        "PHL501",
        "PHL502",
        "PHL503",
        "PHL504",
    }


def test_live_tree_has_no_unused_suppressions():
    """Stale-suppression audit, kept green: every `phl: ignore` that
    parses as a real comment must suppress something (the historical
    docstring mentions are invisible to the tokenising parser)."""
    config = load_config(root=REPO_ROOT)
    findings = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"],
        config,
        report_unused_suppressions=True,
    )
    stale = [f for f in findings if f.code == "PHL601"]
    rendered = "\n".join(f.render() for f in stale)
    assert stale == [], f"stale suppressions:\n{rendered}"
