"""Tests for the runtime lock-order sanitizer.

The helper classes live at module scope so the locks they create get
clean static-graph entities (``tests.lint.test_sanitizer.Alpha``); the
sanitizer is installed with an include prefix covering only this module
so nothing else in the test session is instrumented.
"""

import threading

import pytest

from repro.lint.sanitizer import (
    LockOrderWitness,
    LockSanitizer,
    OrderViolation,
    _InstrumentedLock,
    static_lock_edges,
    verify_witness,
    write_witness_report,
)

#: Prefix selecting only locks created by this module.
INCLUDE = ("tests.lint.test_sanitizer",)

ALPHA = "tests.lint.test_sanitizer.Alpha"
BETA = "tests.lint.test_sanitizer.Beta"


class Alpha:
    def __init__(self):
        self._lock = threading.Lock()


class Beta:
    def __init__(self):
        self._lock = threading.Lock()


class Reentrant:
    def __init__(self):
        self._lock = threading.RLock()


def test_witness_records_nesting_edges():
    witness = LockOrderWitness()
    witness.on_acquire("A")
    witness.on_acquire("B")
    witness.on_release("B")
    witness.on_release("A")
    assert witness.observed_edges() == [("A", "B")]
    assert witness.acquisitions == {"A": 1, "B": 1}


def test_witness_reentry_is_not_an_edge():
    witness = LockOrderWitness()
    witness.on_acquire("A")
    witness.on_acquire("A")
    witness.on_release("A")
    witness.on_release("A")
    assert witness.observed_edges() == []
    assert witness.acquisitions == {"A": 2}


def test_sanitizer_instruments_included_module_locks():
    witness = LockOrderWitness()
    with LockSanitizer(witness, include=INCLUDE):
        alpha = Alpha()
        beta = Beta()
    assert isinstance(alpha._lock, _InstrumentedLock)
    assert isinstance(beta._lock, _InstrumentedLock)
    with alpha._lock:
        with beta._lock:
            pass
    assert witness.observed_edges() == [(ALPHA, BETA)]


def test_sanitizer_ignores_locks_outside_include():
    witness = LockOrderWitness()
    with LockSanitizer(witness, include=("some.other.package",)):
        alpha = Alpha()
    assert not isinstance(alpha._lock, _InstrumentedLock)
    with alpha._lock:
        pass
    assert witness.observed_edges() == []
    assert witness.acquisitions == {}


def test_sanitizer_uninstall_restores_factories():
    real_lock = threading.Lock
    real_rlock = threading.RLock
    sanitizer = LockSanitizer(LockOrderWitness(), include=INCLUDE)
    sanitizer.install()
    assert threading.Lock is not real_lock
    sanitizer.uninstall()
    assert threading.Lock is real_lock
    assert threading.RLock is real_rlock


def test_instrumented_rlock_supports_reentry_and_locked():
    witness = LockOrderWitness()
    with LockSanitizer(witness, include=INCLUDE):
        holder = Reentrant()
    lock = holder._lock
    assert isinstance(lock, _InstrumentedLock)
    assert lock.locked() is False
    with lock:
        assert lock.locked() is True
        with lock:  # re-entry must not deadlock
            pass
    assert lock.locked() is False
    assert witness.observed_edges() == []


def test_verify_consistent_order_passes():
    witness = LockOrderWitness()
    witness.on_acquire(ALPHA)
    witness.on_acquire(BETA)
    witness.on_release(BETA)
    witness.on_release(ALPHA)
    assert verify_witness(witness, {(ALPHA, BETA)}) == []


def test_verify_flags_static_inversion():
    witness = LockOrderWitness()
    witness.on_acquire(BETA)
    witness.on_acquire(ALPHA)
    violations = verify_witness(witness, {(ALPHA, BETA)})
    assert [v.kind for v in violations] == ["static-inversion"]
    assert violations[0].first == BETA
    assert violations[0].second == ALPHA


def test_verify_flags_runtime_mutual_once():
    witness = LockOrderWitness()
    witness.on_acquire("A")
    witness.on_acquire("B")
    witness.on_release("B")
    witness.on_release("A")
    witness.on_acquire("B")
    witness.on_acquire("A")
    violations = verify_witness(witness, set())
    assert [v.kind for v in violations] == ["runtime-mutual"]
    assert (violations[0].first, violations[0].second) == ("A", "B")


def test_verify_ignores_order_known_both_ways_statically():
    """An edge present in the static graph is never an inversion."""
    witness = LockOrderWitness()
    witness.on_acquire("A")
    witness.on_acquire("B")
    assert verify_witness(witness, {("A", "B"), ("B", "A")}) == []


def test_end_to_end_inversion_detected(tmp_path):
    """Instrumented locks + witness + verifier catch a real inversion."""
    witness = LockOrderWitness()
    with LockSanitizer(witness, include=INCLUDE):
        alpha = Alpha()
        beta = Beta()
    with alpha._lock:
        with beta._lock:
            pass
    with beta._lock:
        with alpha._lock:
            pass
    violations = verify_witness(witness, {(ALPHA, BETA)})
    kinds = {v.kind for v in violations}
    assert kinds == {"static-inversion", "runtime-mutual"}
    report_path = tmp_path / "witness.json"
    write_witness_report(witness, {(ALPHA, BETA)}, violations, report_path)
    import json

    payload = json.loads(report_path.read_text())
    assert payload["format"] == "phl-lock-witness/1"
    assert payload["static_edges"] == [
        {"held": ALPHA, "acquired": BETA}
    ]
    assert {v["kind"] for v in payload["violations"]} == kinds
    edges = {
        (edge["held"], edge["acquired"])
        for edge in payload["witness"]["edges"]
    }
    assert (ALPHA, BETA) in edges and (BETA, ALPHA) in edges


def test_static_lock_edges_over_repo_src():
    """The helper builds the same edge set PHL502 checks — and the live
    tree's graph is acyclic (otherwise the self-check would fail)."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    edges = static_lock_edges([root / "src"], root=root)
    assert isinstance(edges, set)
    for held, acquired in edges:
        assert isinstance(held, str) and isinstance(acquired, str)
        assert (acquired, held) not in edges


def test_threads_keep_independent_held_stacks():
    witness = LockOrderWitness()
    barrier = threading.Barrier(2)

    def worker(entity: str) -> None:
        witness.on_acquire(entity)
        barrier.wait()
        witness.on_release(entity)

    threads = [
        threading.Thread(target=worker, args=("A",)),
        threading.Thread(target=worker, args=("B",)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Each thread held one lock; neither saw the other's stack.
    assert witness.observed_edges() == []
    assert witness.acquisitions == {"A": 1, "B": 1}


def test_violation_to_dict_roundtrip():
    violation = OrderViolation(
        first="A", second="B", kind="runtime-mutual", detail="d"
    )
    assert violation.to_dict() == {
        "first": "A",
        "second": "B",
        "kind": "runtime-mutual",
        "detail": "d",
    }
