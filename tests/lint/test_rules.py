"""Fixture-driven rule tests: one flagged + one clean case per code.

Every module-scope rule is exercised through the public
:func:`repro.lint.lint_source` entry point, so these tests cover the
AST matching *and* the dispatch/suppression machinery around it.
"""

import pytest

from repro.lint import RULES, lint_source
from repro.lint.registry import ProjectRule

from tests.lint.fixtures import AST_FIXTURES, FIXTURE_PATH


def _codes(source: str) -> set[str]:
    return {f.code for f in lint_source(source, path=FIXTURE_PATH)}


@pytest.mark.parametrize(
    "code,snippet",
    [
        (code, snippet)
        for code, (flagged, _clean) in sorted(AST_FIXTURES.items())
        for snippet in flagged
    ],
)
def test_flagged_fixture_is_flagged(code, snippet):
    assert code in _codes(snippet), f"{code} missed:\n{snippet}"


@pytest.mark.parametrize(
    "code,snippet",
    [
        (code, snippet)
        for code, (_flagged, clean) in sorted(AST_FIXTURES.items())
        for snippet in clean
    ],
)
def test_clean_fixture_is_clean(code, snippet):
    assert code not in _codes(snippet), f"{code} false positive:\n{snippet}"


def test_every_ast_rule_has_fixture_pair():
    """Each module-scope rule code has >=1 flagged and >=1 clean case."""
    ast_rules = {
        code
        for code, rule in RULES.items()
        if not isinstance(rule, ProjectRule)
    }
    assert ast_rules == set(AST_FIXTURES)
    for code, (flagged, clean) in AST_FIXTURES.items():
        assert flagged, f"{code} has no flagged fixture"
        assert clean, f"{code} has no clean fixture"


def test_findings_carry_location_and_rule_name():
    findings = lint_source(
        "import time\nstamp = time.time()\n", path=FIXTURE_PATH
    )
    # At the obs fixture path a wall-clock read trips both PHL102 and
    # the instrumented-path timer rule; check the PHL102 finding.
    assert {f.code for f in findings} == {"PHL102", "PHL106"}
    (finding,) = [f for f in findings if f.code == "PHL102"]
    assert finding.line == 2
    assert finding.col >= 1
    assert finding.rule_name == "direct-wall-clock"
    assert FIXTURE_PATH in finding.render()


def test_rule_metadata_complete():
    """Every rule documents itself (used by --list-rules/--explain)."""
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.name, code
        assert rule.summary, code
        assert rule.rationale, code
        family = code[3]
        assert family in "123456", code


def test_syntax_error_reported_not_raised():
    findings = lint_source("def broken(:\n", path=FIXTURE_PATH)
    assert [f.code for f in findings] == ["PHL000"]
