"""Differential tests pinning the vectorised URL featurisation.

The tier-0 triage path scores URL batches through
:func:`~repro.baselines.url_lexical.crc32_batch` (a table-driven CRC32
over a padded byte matrix) and
:meth:`~repro.baselines.url_lexical.UrlLexicalClassifier.featurize_urls`
(one fancy-indexed scatter over the batch's unique tokens).  Both are
claimed *bit-identical* to the scalar reference — ``zlib.crc32`` per
token, :meth:`featurize_url` per URL — and these tests are the pin:
any drift in the vectorised hot path fails here before it can move a
triage verdict.
"""

import random
import zlib

import numpy as np

from repro.baselines.url_lexical import UrlLexicalClassifier, crc32_batch

EDGE_CASE_URLS = [
    "http://example.com/",
    "http://sub.deep.example.co.uk/path/to/page?q=1&r=2",
    "http://192.168.10.1/login.php?user=admin",
    "https://xn--pypal-4ve.com/verify-account_now",
    "http://a.com/" + "segment/" * 40,
    "not a url at all",
    "",
    "http://UPPER.CASE.COM/MiXeD?K=V",
    "http://tok.en/a-b_c.d=e&f?g",
    "http://dup.com/x/x/x/x",        # repeated tokens, one feature
]


class TestCrc32Batch:
    def test_matches_zlib_on_random_tokens(self):
        rng = random.Random(42)
        tokens = [
            bytes(rng.randrange(256) for _ in range(rng.randrange(0, 64)))
            for _ in range(500)
        ]
        expected = np.array(
            [zlib.crc32(token) for token in tokens], dtype=np.uint32
        )
        assert (crc32_batch(tokens) == expected).all()

    def test_empty_token_and_empty_batch(self):
        assert crc32_batch([b""])[0] == zlib.crc32(b"")
        assert crc32_batch([]).shape == (0,)

    def test_mixed_lengths_mask_correctly(self):
        # Length-skewed batch: the column mask must stop each token's
        # recurrence at its own length, not the matrix width.
        tokens = [b"a", b"ab" * 100, b"", b"xyz"]
        expected = np.array(
            [zlib.crc32(token) for token in tokens], dtype=np.uint32
        )
        assert (crc32_batch(tokens) == expected).all()

    def test_dtype_is_uint32(self):
        assert crc32_batch([b"token"]).dtype == np.uint32


class TestFeaturizeUrls:
    def test_batch_matches_per_url_reference_bit_for_bit(self):
        classifier = UrlLexicalClassifier()
        batch = classifier.featurize_urls(EDGE_CASE_URLS)
        reference = np.vstack(
            [classifier.featurize_url(url) for url in EDGE_CASE_URLS]
        )
        assert batch.shape == reference.shape
        assert (batch == reference).all()       # bit-identical, not close

    def test_small_hash_width_forces_collisions(self):
        # A tiny hash space exercises colliding tokens: the scatter
        # writes 1.0 idempotently exactly like the scalar loop.
        classifier = UrlLexicalClassifier(n_hash_features=7)
        batch = classifier.featurize_urls(EDGE_CASE_URLS)
        reference = np.vstack(
            [classifier.featurize_url(url) for url in EDGE_CASE_URLS]
        )
        assert (batch == reference).all()

    def test_empty_batch(self):
        classifier = UrlLexicalClassifier(n_hash_features=16)
        assert classifier.featurize_urls([]).shape == (0, 20)

    def test_url_training_round_trip(self):
        urls = [f"http://safe{i}.com/home" for i in range(10)] + [
            f"http://secure-login{i}.bad/verify" for i in range(10)
        ]
        labels = np.array([0] * 10 + [1] * 10)
        classifier = UrlLexicalClassifier(epochs=10).fit_urls(urls, labels)
        scores = classifier.predict_proba_urls(urls)
        assert scores.shape == (20,)
        assert classifier.score_url(urls[0]) == float(scores[0])
        hard = classifier.predict_urls(urls)
        assert set(hard) <= {0, 1}

    def test_snapshot_path_routes_through_url_path(self):
        class FakeSnapshot:
            def __init__(self, url):
                self.starting_url = url

        classifier = UrlLexicalClassifier()
        url = "http://example.com/login"
        snapshot_features = classifier.featurize_snapshot(FakeSnapshot(url))
        assert (snapshot_features == classifier.featurize_url(url)).all()
