"""Tests for the blacklist-defense model (§VIII deployment argument)."""

import pytest

from repro.baselines.blacklist import (
    BlacklistDefense,
    Campaign,
    exposure_analysis,
    generate_campaign_timeline,
)


class TestCampaign:
    def test_dies_at(self):
        campaign = Campaign("http://x/", launched_at=10, lifetime=5,
                            reported_at=11)
        assert campaign.dies_at == 15


class TestBlacklistDefense:
    def test_blocks_after_propagation(self):
        blacklist = BlacklistDefense(propagation_delay=6, coverage=1.0)
        campaign = Campaign("http://x/", 0.0, 20.0, reported_at=1.0)
        blacklist.observe_report(campaign)
        assert not blacklist.blocks("http://x/", at_time=5.0)
        assert blacklist.blocks("http://x/", at_time=7.0)

    def test_unreported_never_blocked(self):
        blacklist = BlacklistDefense(coverage=1.0)
        assert not blacklist.blocks("http://unknown/", at_time=100.0)

    def test_zero_coverage_lists_nothing(self):
        blacklist = BlacklistDefense(coverage=0.0)
        campaign = Campaign("http://x/", 0.0, 20.0, reported_at=1.0)
        blacklist.observe_report(campaign)
        assert blacklist.listed_time("http://x/") is None

    def test_duplicate_reports_keep_first_listing(self):
        blacklist = BlacklistDefense(propagation_delay=2, coverage=1.0)
        first = Campaign("http://x/", 0.0, 20.0, reported_at=1.0)
        later = Campaign("http://x/", 0.0, 20.0, reported_at=10.0)
        blacklist.observe_report(first)
        blacklist.observe_report(later)
        assert blacklist.listed_time("http://x/") == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlacklistDefense(propagation_delay=-1)
        with pytest.raises(ValueError):
            BlacklistDefense(coverage=2.0)


class TestTimeline:
    def test_generation(self):
        campaigns = generate_campaign_timeline(100, seed=1)
        assert len(campaigns) == 100
        for campaign in campaigns:
            assert campaign.lifetime > 0
            assert campaign.reported_at >= campaign.launched_at

    def test_median_lifetime_roughly_respected(self):
        import numpy as np
        campaigns = generate_campaign_timeline(
            2000, median_lifetime=9.0, seed=2
        )
        median = np.median([campaign.lifetime for campaign in campaigns])
        assert 6.0 < median < 13.0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_campaign_timeline(0)


class TestExposure:
    def test_blacklist_worse_than_client_side(self):
        campaigns = generate_campaign_timeline(300, median_lifetime=9.0,
                                               seed=3)
        blacklist = BlacklistDefense(propagation_delay=6.0, coverage=0.9,
                                     seed=3)
        result = exposure_analysis(campaigns, blacklist,
                                   client_side_recall=0.95)
        # A several-hour delay against few-hour lifetimes leaves victims
        # exposed for most of each campaign — the paper's argument.
        assert result["blacklist_mean_exposure"] > 0.4
        assert result["blacklist_mean_exposure"] > \
            result["client_side_mean_exposure"]

    def test_instant_blacklist_low_exposure(self):
        campaigns = generate_campaign_timeline(
            300, median_lifetime=9.0, report_lag=0.01, seed=4
        )
        instant = BlacklistDefense(propagation_delay=0.0, coverage=1.0)
        result = exposure_analysis(campaigns, instant)
        assert result["blacklist_mean_exposure"] < 0.1

    def test_empty_campaigns_rejected(self):
        with pytest.raises(ValueError):
            exposure_analysis([], BlacklistDefense())
