"""Tests for the Table X baseline re-implementations."""

import numpy as np
import pytest

from repro.baselines import (
    BagOfWordsClassifier,
    CantinaClassifier,
    UrlLexicalClassifier,
)
from repro.ml.metrics import binary_metrics, roc_auc


@pytest.fixture(scope="module")
def split(tiny_world):
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    test = (
        tiny_world.dataset("english").subset(range(100))
        + tiny_world.dataset("phishTest")
    )
    return train, test


class TestCantina:
    def test_better_than_chance(self, tiny_world, split):
        train, test = split
        cantina = CantinaClassifier(tiny_world.search)
        cantina.fit_idf(
            page.snapshot for page in tiny_world.dataset("legTrain")
        )
        predictions = cantina.predict_snapshots(
            [page.snapshot for page in test]
        )
        metrics = binary_metrics(test.labels(), predictions)
        assert metrics.recall > 0.5
        assert metrics.accuracy > 0.6

    def test_signature_ranks_repeated_terms(self, tiny_world):
        cantina = CantinaClassifier(tiny_world.search)
        cantina.fit_idf(
            page.snapshot for page in tiny_world.dataset("legTrain")[:50]
        )
        page = tiny_world.dataset("english")[0]
        signature = cantina.signature(page.snapshot)
        assert len(signature) <= 5

    def test_contentless_page_flagged(self, tiny_world):
        from repro.web.page import PageSnapshot
        cantina = CantinaClassifier(tiny_world.search)
        snapshot = PageSnapshot(
            starting_url="http://e.com/", landing_url="http://e.com/", html=""
        )
        assert cantina.classify_snapshot(snapshot) is True


class TestUrlLexical:
    def test_learns_url_patterns(self, split):
        train, test = split
        model = UrlLexicalClassifier(epochs=30)
        model.fit_snapshots([p.snapshot for p in train], train.labels())
        scores = model.predict_proba_snapshots([p.snapshot for p in test])
        assert roc_auc(test.labels(), scores) > 0.8

    def test_featurize_width(self):
        model = UrlLexicalClassifier(n_hash_features=64)
        vector = model.featurize_url("http://example.com/path?q=1")
        assert vector.shape == (68,)

    def test_ip_flag(self):
        model = UrlLexicalClassifier(n_hash_features=64)
        assert model.featurize_url("http://1.2.3.4/x")[-1] == 1.0
        assert model.featurize_url("http://a.com/x")[-1] == 0.0

    def test_unparsable_url(self):
        model = UrlLexicalClassifier(n_hash_features=64)
        vector = model.featurize_url(":::not a url:::")
        assert vector.shape == (68,)

    def test_predict_hard_labels(self, split):
        train, test = split
        model = UrlLexicalClassifier(epochs=10)
        model.fit_snapshots([p.snapshot for p in train], train.labels())
        predictions = model.predict_snapshots([p.snapshot for p in test][:5])
        assert set(predictions.tolist()) <= {0, 1}


class TestBagOfWords:
    def test_learns_content_patterns(self, split):
        train, test = split
        model = BagOfWordsClassifier(n_estimators=30)
        model.fit_snapshots([p.snapshot for p in train], train.labels())
        scores = model.predict_proba_snapshots([p.snapshot for p in test])
        assert roc_auc(test.labels(), scores) > 0.8

    def test_featurize_counts_terms(self, tiny_world):
        model = BagOfWordsClassifier(n_hash_features=128)
        page = tiny_world.dataset("english")[0]
        vector = model.featurize_snapshot(page.snapshot)
        assert vector.sum() > 0

    def test_brand_dependence_weakness(self, tiny_world):
        """The paper's adaptability argument: bag-of-words degrades on
        brands absent from training more than our feature set does."""
        train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
        train_targets = {
            page.target_mld for page in tiny_world.dataset("phishTrain")
        }
        unseen = [
            page for page in tiny_world.dataset("phishTest")
            if page.target_mld and page.target_mld not in train_targets
        ]
        if len(unseen) < 5:
            pytest.skip("not enough unseen-brand phish in tiny world")
        model = BagOfWordsClassifier(n_estimators=30)
        model.fit_snapshots([p.snapshot for p in train], train.labels())
        scores = model.predict_proba_snapshots([p.snapshot for p in unseen])
        # Sanity only at tiny-world scale: the baseline must at least
        # produce usable scores on unseen brands.  The *directional*
        # brand-dependence comparison (baseline degrades more than our
        # feature set) is measured at full scale in the Table X benchmark.
        assert 0.0 <= scores.mean() <= 1.0
        assert len(scores) == len(unseen)
