"""Tests for error and feature analysis (§VII-A/B)."""

import pytest

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.evaluation.analysis import (
    TERM_ISSUE_KINDS,
    assert_valid_group,
    feature_group_importances,
    misclassified_legitimate,
    missed_phish,
    top_features,
)
from repro.parallel import WorkerPool


@pytest.fixture(scope="module")
def trained(tiny_world):
    extractor = FeatureExtractor(alexa=tiny_world.alexa)
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    detector = PhishingDetector(extractor, n_estimators=40)
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    return detector


class TestMisclassification:
    def test_report_shape(self, trained, tiny_world):
        report = misclassified_legitimate(trained, tiny_world.dataset("english"))
        assert report.total_legitimate == len(tiny_world.dataset("english"))
        assert report.fp_count == sum(report.kind_counts.values())
        assert 0.0 <= report.fpr <= 1.0
        assert 0.0 <= report.term_issue_share <= 1.0
        assert report.hard_case_share <= 1.0 + 1e-9

    def test_rejects_mixed_dataset(self, trained, tiny_world):
        mixed = tiny_world.dataset("english") + tiny_world.dataset("phishTest")
        with pytest.raises(ValueError):
            misclassified_legitimate(trained, mixed)

    def test_accepts_precomputed_features(self, trained, tiny_world):
        dataset = tiny_world.dataset("french")
        features = trained.extractor.extract_many(
            page.snapshot for page in dataset
        )
        report = misclassified_legitimate(trained, dataset, features=features)
        assert report.total_legitimate == len(dataset)

    def test_empty_fp_shares_are_zero(self):
        from repro.evaluation.analysis import MisclassificationReport
        report = MisclassificationReport(total_legitimate=10)
        assert report.fpr == 0.0
        assert report.term_issue_share == 0.0
        assert report.degenerate_share == 0.0

    def test_term_issue_kinds_constant(self):
        assert "longword" in TERM_ISSUE_KINDS
        assert "abbrev" in TERM_ISSUE_KINDS


    def test_precomputed_features_match_reextraction(
        self, trained, tiny_world
    ):
        """Feeding a cached matrix must not change the attribution."""
        dataset = tiny_world.dataset("english")
        features = trained.extractor.extract_many(
            page.snapshot for page in dataset
        )
        from_matrix = misclassified_legitimate(
            trained, dataset, features=features
        )
        from_scratch = misclassified_legitimate(trained, dataset)
        assert from_matrix.fp_count == from_scratch.fp_count
        assert from_matrix.kind_counts == from_scratch.kind_counts

    def test_parallel_extraction_matches_serial_analysis(
        self, trained, tiny_world
    ):
        dataset = tiny_world.dataset("french")
        with WorkerPool(workers=2, backend="thread") as pool:
            features = trained.extractor.extract_many(
                [page.snapshot for page in dataset], pool=pool
            )
        parallel = misclassified_legitimate(
            trained, dataset, features=features
        )
        serial = misclassified_legitimate(trained, dataset)
        assert parallel.kind_counts == serial.kind_counts


class TestMissedPhish:
    def test_counts_by_hosting(self, trained, tiny_world):
        misses = missed_phish(trained, tiny_world.dataset("phishTest"))
        assert sum(misses.values()) <= len(tiny_world.dataset("phishTest"))

    def test_rejects_legit_dataset(self, trained, tiny_world):
        with pytest.raises(ValueError):
            missed_phish(trained, tiny_world.dataset("english"))

    def test_precomputed_features_match_reextraction(
        self, trained, tiny_world
    ):
        dataset = tiny_world.dataset("phishTest")
        features = trained.extractor.extract_many(
            page.snapshot for page in dataset
        )
        assert missed_phish(trained, dataset, features=features) == \
            missed_phish(trained, dataset)


class TestImportances:
    def test_groups_sum_to_one(self, trained):
        groups = feature_group_importances(trained)
        assert set(groups) == {"f1", "f2", "f3", "f4", "f5"}
        assert sum(groups.values()) == pytest.approx(1.0)

    def test_requires_fall_detector(self, tiny_world, trained):
        masked = PhishingDetector(trained.extractor, feature_set="f1")
        with pytest.raises(ValueError):
            feature_group_importances(masked)

    def test_top_features_named(self, trained):
        features = top_features(trained, count=5)
        assert len(features) == 5
        for name, importance in features:
            assert name.startswith("f")
            assert importance >= 0
        # Sorted descending.
        values = [importance for _name, importance in features]
        assert values == sorted(values, reverse=True)

    def test_assert_valid_group(self):
        for name in ("f1", "f2", "fall", "f2,3,4"):
            assert_valid_group(name)
        with pytest.raises(ValueError):
            assert_valid_group("f99")
