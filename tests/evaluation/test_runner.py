"""Tests for the experiment runner (smoke-level: keys, shapes, sanity)."""

import numpy as np
import pytest

from repro.corpus.datasets import CorpusConfig
from repro.corpus.wordlists import LANGUAGES
from repro.evaluation.runner import FEATURE_SETS, Lab

METRIC_KEYS = {"precision", "recall", "f1", "fpr", "accuracy", "auc"}


@pytest.fixture(scope="module")
def lab():
    config = CorpusConfig(
        leg_train=100, phish_train=45, phish_test=45, phish_brand=30,
        english_test=200, other_language_test=60, seed=13,
    )
    return Lab(config, n_estimators=30)


class TestPlumbing:
    def test_features_cached(self, lab):
        first = lab.features("english")
        second = lab.features("english")
        assert first is second
        assert first.shape == (200, 212)

    def test_detector_cached(self, lab):
        assert lab.detector("fall") is lab.detector("fall")

    def test_scenario2_scores(self, lab):
        y, scores = lab.scenario2_scores("french")
        assert len(y) == 60 + 45
        assert scores.min() >= 0 and scores.max() <= 1

    def test_scenario1_scores_cover_training_set(self, lab):
        y, scores = lab.scenario1_scores("f4", n_splits=3)
        assert len(y) == 145


class TestTables:
    def test_table5(self, lab):
        rows = lab.table5_rows()
        names = [row["name"] for row in rows]
        assert "phishTrain" in names and "english" in names
        for row in rows:
            assert row["initial"] >= row["clean"]

    def test_table6(self, lab):
        rows = lab.table6_rows()
        assert [row["language"] for row in rows] == list(LANGUAGES)
        for row in rows:
            assert METRIC_KEYS <= set(row)
            assert row["auc"] > 0.8

    def test_fig3_fig4_curves(self, lab):
        pr = lab.fig3_curves()
        roc = lab.fig4_curves()
        assert set(pr) == set(LANGUAGES) == set(roc)
        fpr, tpr = roc["english"]
        assert fpr[0] == 0.0 and tpr[-1] == pytest.approx(1.0)

    def test_fig6_scalability(self, lab):
        rows = lab.fig6_curve(steps=4)
        assert len(rows) == 4
        sizes = [row["sample_size"] for row in rows]
        assert sizes == sorted(sizes)

    def test_table8_timing(self, lab):
        timing = lab.table8_timing(sample_size=10)
        assert set(timing) == {
            "scraping", "loading", "features", "classification",
            "total_no_scraping",
        }
        for stage in timing.values():
            assert stage["median"] >= 0
            assert set(stage) == {"median", "average", "std"}

    def test_table9_target_id(self, lab):
        rows = lab.table9_target_id()
        assert set(rows) == {"top-1", "top-2", "top-3"}
        assert rows["top-1"]["success_rate"] <= rows["top-3"]["success_rate"]
        assert rows["top-3"]["success_rate"] > 0.5

    def test_sec6d(self, lab):
        result = lab.sec6d_fp_filtering()
        assert result["fpr_after"] <= result["fpr_before"]
        assert sum(result["breakdown"].values()) == result["false_positives"]

    def test_sec7_ip(self, lab):
        result = lab.sec7_ip_recall(count=8)
        assert 0.0 <= result["ip_recall"] <= 1.0
        assert 0.0 <= result["global_recall"] <= 1.0

    def test_feature_sets_constant(self):
        assert "fall" in FEATURE_SETS and len(FEATURE_SETS) == 8


class TestExtensions:
    def test_blacklist_exposure(self, lab):
        result = lab.sec8_blacklist_exposure(campaigns=100)
        assert 0.0 <= result["blacklist_mean_exposure"] <= 1.0
        assert result["client_side_mean_exposure"] <= 1.0

    def test_model_choice(self, lab):
        result = lab.model_choice_ablation()
        assert set(result) == {"gradient_boosting", "logistic_regression"}
        assert result["gradient_boosting"] > 0.9

    def test_temporal_drift(self, lab):
        result = lab.temporal_drift(count=10)
        assert 0.0 <= result["drifted_recall"] <= 1.0
        assert 0.0 <= result["baseline_recall"] <= 1.0
