"""Tests for the reproduction-report compiler."""

import pytest

from repro.evaluation.report import compile_report


class TestCompileReport:
    def test_assembles_known_sections_in_order(self, tmp_path):
        (tmp_path / "table6_languages.txt").write_text("T6 CONTENT")
        (tmp_path / "table9_target_id.txt").write_text("T9 CONTENT")
        report = compile_report(tmp_path)
        assert "Table VI" in report
        assert "T6 CONTENT" in report
        assert report.index("Table VI") < report.index("Table IX")

    def test_unknown_artefacts_appended(self, tmp_path):
        (tmp_path / "custom_experiment.txt").write_text("CUSTOM")
        report = compile_report(tmp_path)
        assert "custom_experiment" in report
        assert "CUSTOM" in report

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compile_report(tmp_path / "nope")

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compile_report(tmp_path)

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "table5_datasets.txt").write_text("T5")
        out_file = tmp_path / "report.md"
        code = main([
            "report", "--results-dir", str(tmp_path), "--out", str(out_file)
        ])
        assert code == 0
        assert "Table V" in out_file.read_text()

    def test_cli_report_stdout(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "table5_datasets.txt").write_text("T5")
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        assert "T5" in capsys.readouterr().out

    def test_cli_report_missing_dir(self, tmp_path, capsys):
        from repro.cli import main
        assert main([
            "report", "--results-dir", str(tmp_path / "none")
        ]) == 1
