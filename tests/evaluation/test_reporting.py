"""Tests for ASCII table/curve rendering."""

import numpy as np

from repro.evaluation.reporting import format_curve, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"], [["alpha", 0.123456], ["b", 1]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "0.123" in table

    def test_small_floats_get_more_digits(self):
        table = format_table(["x"], [[0.0005]])
        assert "0.0005" in table

    def test_zero_rendered_compactly(self):
        assert "0" in format_table(["x"], [[0.0]])

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestFormatCurve:
    def test_subsampling(self):
        xs = np.linspace(0, 1, 100)
        ys = xs ** 2
        line = format_curve("roc", xs, ys, points=5)
        assert line.startswith("roc:")
        assert "(1.000,1.000)" in line

    def test_empty(self):
        assert "empty" in format_curve("x", [], [])

    def test_short_series(self):
        line = format_curve("c", np.array([0.5]), np.array([0.25]))
        assert "(0.500,0.250)" in line
