"""Tests for streaming evaluation."""

import numpy as np
import pytest

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.evaluation.streaming import StreamingEvaluator, interleave_stream
from repro.ml.metrics import binary_metrics


@pytest.fixture(scope="module")
def trained(tiny_world):
    extractor = FeatureExtractor(alexa=tiny_world.alexa)
    train = tiny_world.dataset("legTrain") + tiny_world.dataset("phishTrain")
    detector = PhishingDetector(extractor, n_estimators=40)
    detector.fit_snapshots([page.snapshot for page in train], train.labels())
    return detector


class TestInterleaveStream:
    def test_ratio_approximate(self, tiny_world):
        stream = interleave_stream(
            tiny_world.dataset("english"), tiny_world.dataset("phishTest"),
            legit_per_phish=10, seed=0, limit=2000,
        )
        labels = [page.label for page in stream]
        phish_share = sum(labels) / len(labels)
        assert 0.05 <= phish_share <= 0.15  # ~1/11

    def test_limit_respected(self, tiny_world):
        stream = interleave_stream(
            tiny_world.dataset("english"), tiny_world.dataset("phishTest"),
            limit=50,
        )
        assert len(list(stream)) == 50

    def test_deterministic(self, tiny_world):
        def urls(seed):
            return [
                page.url for page in interleave_stream(
                    tiny_world.dataset("english"),
                    tiny_world.dataset("phishTest"),
                    seed=seed, limit=30,
                )
            ]
        assert urls(3) == urls(3)
        assert urls(3) != urls(4)

    def test_validation(self, tiny_world):
        from repro.corpus.datasets import Dataset
        empty = Dataset("empty", [])
        with pytest.raises(ValueError):
            next(interleave_stream(empty, tiny_world.dataset("phishTest")))
        with pytest.raises(ValueError):
            next(interleave_stream(
                tiny_world.dataset("english"),
                tiny_world.dataset("phishTest"),
                legit_per_phish=0,
            ))


class TestStreamingEvaluator:
    def test_report_shape(self, trained, tiny_world):
        stream = interleave_stream(
            tiny_world.dataset("english"), tiny_world.dataset("phishTest"),
            legit_per_phish=20, seed=1, limit=120,
        )
        report = StreamingEvaluator(trained, window=50).run(stream)
        assert report.pages_processed == 120
        assert set(report.overall) == {
            "precision", "recall", "f1", "fpr", "accuracy"
        }
        assert len(report.latencies_ms) == 120
        assert report.latency_percentile(95) >= report.latency_percentile(50)

    def test_rolling_windows_emitted(self, trained, tiny_world):
        stream = interleave_stream(
            tiny_world.dataset("english"), tiny_world.dataset("phishTest"),
            legit_per_phish=10, seed=2, limit=80,
        )
        report = StreamingEvaluator(trained, window=40).run(stream)
        # Windows appear once the deque is full: 80 - 40 + 1 snapshots.
        assert len(report.window_fpr) == 41

    def test_quality_in_stream_regime(self, trained, tiny_world):
        """At a ~50:1 ratio the detector keeps low FPR and high recall."""
        stream = interleave_stream(
            tiny_world.dataset("english"), tiny_world.dataset("phishTest"),
            legit_per_phish=50, seed=3, limit=400,
        )
        report = StreamingEvaluator(trained, window=100).run(stream)
        assert report.overall["fpr"] < 0.05
        assert report.overall["recall"] > 0.7

    def test_streaming_matches_one_shot_aggregation(
        self, trained, tiny_world
    ):
        """Page-at-a-time scoring aggregates to batch-mode metrics.

        The same pages pushed through the streaming evaluator and
        through one ``extract_many`` + ``predict`` batch must yield
        identical overall metrics — streaming is an execution strategy,
        not a different measurement.
        """
        pages = list(interleave_stream(
            tiny_world.dataset("english"), tiny_world.dataset("phishTest"),
            legit_per_phish=15, seed=7, limit=150,
        ))
        report = StreamingEvaluator(trained, window=50).run(iter(pages))

        X = trained.extractor.extract_many(
            [page.snapshot for page in pages]
        )
        one_shot = binary_metrics(
            np.asarray([page.label for page in pages]),
            trained.predict(X),
        ).as_dict()
        assert report.overall == one_shot

    def test_final_window_matches_direct_computation(
        self, trained, tiny_world
    ):
        """The last rolling window equals metrics over the last N pages."""
        window = 60
        pages = list(interleave_stream(
            tiny_world.dataset("english"), tiny_world.dataset("phishTest"),
            legit_per_phish=10, seed=9, limit=100,
        ))
        report = StreamingEvaluator(trained, window=window).run(iter(pages))

        tail = pages[-window:]
        X = trained.extractor.extract_many([page.snapshot for page in tail])
        metrics = binary_metrics(
            np.asarray([page.label for page in tail]), trained.predict(X)
        )
        assert report.window_fpr[-1] == metrics.fpr
        assert report.window_recall[-1] == metrics.recall

    def test_window_validation(self, trained):
        with pytest.raises(ValueError):
            StreamingEvaluator(trained, window=5)

    def test_empty_stream(self, trained):
        report = StreamingEvaluator(trained).run(iter(()))
        assert report.pages_processed == 0
        assert report.latency_percentile(50) == 0.0
