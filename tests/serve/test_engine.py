"""Serving-engine unit tests over a stub pipeline and browser.

The stubs model exactly what the engine consumes: a browser with a
shared clock whose ``load`` can take simulated time or fail, and a
pipeline returning canned :class:`~repro.core.pipeline.PageVerdict`
objects.  Each test drives one defence in isolation.
"""

import pytest

from repro.core.pipeline import PageVerdict
from repro.obs import MetricsRegistry
from repro.resilience.clock import ManualClock
from repro.serve import (
    DEGRADED,
    SERVED,
    SHED_DEADLINE,
    SHED_DRAINING,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    SHED_UPSTREAM,
    AdmissionController,
    ServeRequest,
    ServingEngine,
    TokenBucket,
    build_requests,
    hot_key_storm,
    worker_loss,
)
from repro.serve.loadgen import _RawArrival
from repro.web.browser import PageNotFound


class StubSnapshot:
    """Duck-typed snapshot: ``snapshot_fingerprint`` only needs to_dict."""

    def __init__(self, content: str):
        self.content = content

    def to_dict(self) -> dict:
        return {"content": self.content}


class StubLoaded:
    def __init__(self, content: str):
        self.snapshot = StubSnapshot(content)


class StubBrowser:
    """Loads take configurable simulated time; some URLs are dead."""

    def __init__(self, clock, delays=None, dead=(), content=None):
        self.clock = clock
        self.delays = delays or {}
        self.dead = set(dead)
        self.content = content or {}
        self.loads = 0

    def load(self, url, deadline=None):
        self.loads += 1
        delay = self.delays.get(url, 0.0)
        if delay:
            self.clock.sleep(delay)
        if deadline is not None:
            deadline.check("page load")
        if url in self.dead:
            raise PageNotFound(url)
        return StubLoaded(self.content.get(url, url))


class StubPipeline:
    """Returns a canned verdict; records what it analyzed."""

    def __init__(self, degraded_urls=()):
        self.degraded_urls = set(degraded_urls)
        self.analyzed = []

    def analyze(self, loaded, deadline=None):
        content = loaded.snapshot.content
        self.analyzed.append(content)
        if content in self.degraded_urls:
            return PageVerdict(
                verdict="phish", confidence=0.9, targets=[],
                degraded=True, degradations=["search_unavailable"],
            )
        return PageVerdict(
            verdict="legitimate", confidence=0.1, targets=["mld"]
        )


class BatchStubPipeline(StubPipeline):
    """Stub that also exposes ``analyze_batch``, recording each batch."""

    def __init__(self, degraded_urls=()):
        super().__init__(degraded_urls)
        self.batches = []

    def analyze_batch(self, pages, tracer=None, metrics=None):
        self.batches.append([page.snapshot.content for page in pages])
        return [self.analyze(page) for page in pages]


def _arrivals(*specs):
    """specs: (time, url) pairs -> one raw schedule."""
    return [_RawArrival(time=t, url=u) for t, u in specs]


def _engine(
    clock=None,
    browser=None,
    pipeline=None,
    workers=2,
    queue_limit=8,
    rate=100.0,
    capacity=100.0,
    analysis_cost=0.1,
    **kwargs,
):
    clock = clock or ManualClock()
    browser = browser or StubBrowser(clock)
    pipeline = pipeline or StubPipeline()
    admission = AdmissionController(
        TokenBucket(rate=rate, capacity=capacity), queue_limit=queue_limit
    )
    engine = ServingEngine(
        pipeline, browser, admission,
        clock=clock, workers=workers, analysis_cost=analysis_cost, **kwargs,
    )
    return engine, browser, pipeline


class TestHappyPath:
    def test_under_capacity_everything_is_served_on_time(self):
        engine, _browser, _pipeline = _engine()
        requests = build_requests(
            _arrivals((0.0, "http://a.com/"), (0.3, "http://b.com/")),
            budget=1.0,
        )
        report = engine.run(requests)
        assert report.total == 2
        assert report.served_count == 2
        assert report.shed_count == 0
        for response in report.responses:
            assert response.outcome == SERVED
            assert response.latency == pytest.approx(0.1)  # analysis only
            assert response.verdict == "legitimate"
            assert response.targets == ("mld",)

    def test_responses_come_back_in_request_order(self):
        engine, _browser, _pipeline = _engine(workers=1)
        requests = build_requests(
            _arrivals(*[(0.01 * i, f"http://u{i}.com/") for i in range(6)]),
        )
        report = engine.run(requests)
        assert [r.request_id for r in report.responses] == list(range(6))

    def test_load_time_counts_into_latency(self):
        clock = ManualClock()
        browser = StubBrowser(clock, delays={"http://slow.com/": 0.4})
        engine, _b, _p = _engine(clock=clock, browser=browser)
        report = engine.run(build_requests(
            _arrivals((0.0, "http://slow.com/")), budget=2.0,
        ))
        assert report.responses[0].latency == pytest.approx(0.5)

    def test_degraded_verdict_reports_degraded_outcome(self):
        engine, _b, _p = _engine(
            pipeline=StubPipeline(degraded_urls={"http://x.com/"})
        )
        report = engine.run(build_requests(_arrivals((0.0, "http://x.com/"))))
        response = report.responses[0]
        assert response.outcome == DEGRADED
        assert response.degradations == ("search_unavailable",)
        assert report.degradation_tags() == {"search_unavailable": 1}


class TestOverload:
    def test_queue_never_exceeds_its_bound(self):
        # 1 worker x 0.1 s/analysis; 30 simultaneous arrivals vs
        # queue_limit 4: the surplus sheds queue_full at admission.
        engine, _b, _p = _engine(workers=1, queue_limit=4)
        requests = build_requests(
            _arrivals(*[(0.0, f"http://u{i}.com/") for i in range(30)]),
        )
        report = engine.run(requests)
        assert report.total == 30
        assert report.max_queue_depth <= 4
        assert report.shed_reasons()[SHED_QUEUE_FULL] > 0
        assert report.served_count + report.shed_count == 30

    def test_sustained_over_rate_sheds_rate_limited(self):
        engine, _b, _p = _engine(rate=5.0, capacity=2.0, queue_limit=100)
        requests = build_requests(
            _arrivals(*[(0.01 * i, f"http://u{i}.com/") for i in range(20)]),
        )
        report = engine.run(requests)
        sheds = report.shed_reasons()
        assert sheds[SHED_RATE_LIMITED] > 0
        shed = next(r for r in report.responses if r.shed)
        assert shed.retry_after is not None and shed.retry_after > 0

    def test_every_request_terminates_exactly_once(self):
        engine, _b, _p = _engine(workers=1, queue_limit=3, rate=8.0,
                                 capacity=4.0)
        requests = build_requests(
            _arrivals(*[(0.02 * i, f"http://u{i % 5}.com/")
                        for i in range(40)]),
            budget=0.5,
        )
        report = engine.run(requests)
        assert report.total == 40
        assert {r.request_id for r in report.responses} == set(range(40))
        assert report.served_count + report.degraded_count \
            + report.shed_count == 40


class TestCoalescing:
    def test_storm_costs_one_analysis(self):
        engine, browser, pipeline = _engine(workers=1)
        report = engine.run(build_requests(
            hot_key_storm("http://viral.com/", at=0.0, count=10),
        ))
        assert browser.loads == 1
        assert len(pipeline.analyzed) == 1
        assert report.served_count == 10
        assert report.coalesced == 9
        followers = [r for r in report.responses if r.coalesced]
        assert len(followers) == 9
        assert all(r.verdict == "legitimate" for r in followers)

    def test_followers_join_while_leader_is_queued(self):
        # Worker busy with the first URL; storm arrivals coalesce onto
        # the queued leader instead of consuming queue slots.
        engine, _b, _p = _engine(workers=1, queue_limit=2)
        requests = build_requests(
            _arrivals((0.0, "http://first.com/")),
            hot_key_storm("http://viral.com/", at=0.01, count=8),
        )
        report = engine.run(requests)
        assert report.served_count == 9
        assert report.max_queue_depth <= 2

    def test_memo_hits_by_content_across_urls(self):
        clock = ManualClock()
        browser = StubBrowser(
            clock,
            content={"http://a.com/": "same", "http://mirror.com/": "same"},
        )
        engine, _b, pipeline = _engine(clock=clock, browser=browser)
        report = engine.run(build_requests(
            _arrivals((0.0, "http://a.com/"), (0.5, "http://mirror.com/")),
        ))
        assert len(pipeline.analyzed) == 1    # second run hit the memo
        assert report.memo_hits == 1
        assert report.served_count == 2
        # Memo hit is charged the cheap cost, not a full analysis.
        second = report.responses[1]
        assert second.latency == pytest.approx(engine.memo_cost)

    def test_follower_past_its_own_budget_is_shed(self):
        clock = ManualClock()
        browser = StubBrowser(clock, delays={"http://slow.com/": 0.5})
        engine, _b, _p = _engine(clock=clock, browser=browser, workers=1)
        # The unbudgeted leader can afford the 0.5 s load, but the
        # shared result lands past the follower's own tighter budget.
        requests = [
            ServeRequest(request_id=0, url="http://slow.com/", arrival=0.0),
            ServeRequest(request_id=1, url="http://slow.com/", arrival=0.1,
                         budget=0.3),
        ]
        report = engine.run(requests)
        leader, follower = report.responses
        assert leader.outcome == SERVED
        assert follower.shed
        assert follower.shed_reason == SHED_DEADLINE
        assert follower.coalesced


class TestDeadlines:
    def test_budget_dying_in_queue_sheds_without_work(self):
        # One 0.6 s analysis at a time: by the time the worker frees,
        # every queued budget (0.5 s) has already expired.
        engine, browser, _p = _engine(workers=1, analysis_cost=0.6)
        requests = [
            ServeRequest(request_id=0, url="http://u0.com/", arrival=0.0)
        ] + [
            ServeRequest(request_id=i, url=f"http://u{i}.com/", arrival=0.0,
                         budget=0.5)
            for i in range(1, 4)
        ]
        report = engine.run(requests)
        assert report.shed_reasons() == {SHED_DEADLINE: 3}
        # Shed-in-queue requests never reached the browser.
        assert browser.loads == report.completed_count == 1

    def test_slow_load_blowing_the_budget_sheds(self):
        clock = ManualClock()
        browser = StubBrowser(clock, delays={"http://stall.com/": 2.0})
        engine, _b, pipeline = _engine(clock=clock, browser=browser)
        report = engine.run(build_requests(
            _arrivals((0.0, "http://stall.com/")), budget=1.0,
        ))
        response = report.responses[0]
        assert response.shed
        assert response.shed_reason == SHED_DEADLINE
        assert pipeline.analyzed == []    # never analyzed

    def test_load_eating_the_budget_skips_analysis(self):
        clock = ManualClock()
        browser = StubBrowser(clock, delays={"http://slowish.com/": 0.45})
        engine, _b, pipeline = _engine(
            clock=clock, browser=browser, analysis_cost=0.1
        )
        report = engine.run(build_requests(
            _arrivals((0.0, "http://slowish.com/")), budget=0.5,
        ))
        # 0.05 s left < 0.1 s analysis: the verdict would land past the
        # deadline, so the engine sheds instead of wasting the worker.
        assert report.responses[0].shed_reason == SHED_DEADLINE
        assert pipeline.analyzed == []

    def test_unlimited_budget_never_sheds_on_deadline(self):
        clock = ManualClock()
        browser = StubBrowser(clock, delays={"http://slow.com/": 5.0})
        engine, _b, _p = _engine(clock=clock, browser=browser)
        report = engine.run(build_requests(
            _arrivals((0.0, "http://slow.com/")),
        ))
        assert report.responses[0].outcome == SERVED


class TestFailuresAndChaos:
    def test_dead_url_sheds_upstream_with_followers(self):
        clock = ManualClock()
        browser = StubBrowser(clock, dead={"http://gone.com/"})
        engine, _b, _p = _engine(clock=clock, browser=browser, workers=1)
        report = engine.run(build_requests(
            hot_key_storm("http://gone.com/", at=0.0, count=3),
        ))
        assert report.shed_count == 3
        assert report.shed_reasons() == {SHED_UPSTREAM: 3}
        assert browser.loads == 1    # followers shed without a retry

    def test_worker_loss_shrinks_capacity(self):
        engine, _b, _p = _engine(workers=3)
        engine.run(
            build_requests(_arrivals((0.0, "http://a.com/"))),
            chaos=worker_loss(at=0.0, count=5),
        )
        assert engine.workers == 1    # floor at one, never zero

    def test_drain_sheds_late_arrivals_and_finishes_admitted(self):
        engine, _b, _p = _engine(workers=1)
        requests = build_requests(
            _arrivals(*[(0.1 * i, f"http://u{i}.com/") for i in range(10)]),
        )
        report = engine.run(requests, drain_at=0.45)
        drained = [r for r in report.responses if
                   r.shed_reason == SHED_DRAINING]
        assert len(drained) == 5     # arrivals at 0.5..0.9
        assert report.served_count == 5   # everything admitted completed
        assert {r.request_id for r in drained} == {5, 6, 7, 8, 9}


class TestDeterminismAndObservability:
    def _scenario(self):
        clock = ManualClock()
        browser = StubBrowser(
            clock,
            delays={"http://slow.com/": 0.3},
            dead={"http://gone.com/"},
        )
        engine, _b, _p = _engine(
            clock=clock, browser=browser, workers=2, queue_limit=4,
            rate=10.0, capacity=5.0,
        )
        requests = build_requests(
            _arrivals(*[(0.05 * i, f"http://u{i % 3}.com/")
                        for i in range(20)]),
            hot_key_storm("http://slow.com/", at=0.2, count=6),
            hot_key_storm("http://gone.com/", at=0.4, count=3),
            budget=0.8,
        )
        return engine.run(requests, drain_at=1.2)

    def test_two_runs_are_byte_identical(self):
        assert self._scenario().summary() == self._scenario().summary()
        assert self._scenario().responses == self._scenario().responses

    def test_metrics_account_for_every_request(self):
        metrics = MetricsRegistry()
        engine, _b, _p = _engine(workers=1, queue_limit=2, metrics=metrics)
        report = engine.run(build_requests(
            _arrivals(*[(0.0, f"http://u{i}.com/") for i in range(8)]),
            hot_key_storm("http://u0.com/", at=0.0, count=2),
        ))
        assert metrics.counter_total("serve_requests_total") == report.total
        assert metrics.counter_total("serve_shed_total") == report.shed_count
        assert metrics.counter_value("serve_coalesced_total") \
            == report.coalesced

    def test_spans_cover_run_drain_and_requests(self):
        from repro.obs import Tracer

        tracer = Tracer(clock=ManualClock())
        engine, _b, _p = _engine(tracer=tracer)
        engine.run(build_requests(
            _arrivals((0.0, "http://a.com/"), (0.1, "http://b.com/")),
        ))
        names = [span.name for span in tracer.iter_spans()]
        assert "serve.run" in names
        assert "serve.drain" in names
        assert names.count("serve.request") == 2


class TestMicroBatching:
    """Tick-level batched analysis must be invisible to the simulation.

    When the pipeline exposes ``analyze_batch`` and nothing is traced
    or budgeted, the engine runs all analyses dispatched in one tick as
    a single batch.  Every observable — responses, memo counters,
    latencies — must match the per-request path exactly.
    """

    WORKLOAD = (
        (0.0, "http://a.com/"),
        (0.0, "http://b.com/"),
        (0.0, "http://dup-of-a.com/"),   # same content as a.com
        (0.0, "http://dead.com/"),       # upstream failure
        (0.5, "http://a.com/"),          # warm memo hit, later tick
    )

    def _run(self, pipeline, budget=None, **kwargs):
        clock = ManualClock()
        browser = StubBrowser(
            clock,
            dead=("http://dead.com/",),
            content={"http://dup-of-a.com/": "http://a.com/"},
        )
        engine, _browser, _pipeline = _engine(
            clock=clock, browser=browser, pipeline=pipeline,
            workers=4, **kwargs,
        )
        report = engine.run(
            build_requests(_arrivals(*self.WORKLOAD), budget=budget)
        )
        return report, pipeline

    def test_batched_run_matches_per_request_run_exactly(self):
        batched, batch_pipeline = self._run(BatchStubPipeline())
        serial, serial_pipeline = self._run(StubPipeline())
        assert batched.responses == serial.responses
        assert batched.memo_hits == serial.memo_hits
        assert batched.memo_misses == serial.memo_misses
        assert batch_pipeline.analyzed == serial_pipeline.analyzed
        # ...and batching really engaged: one two-page batch (a, b).
        assert batch_pipeline.batches == [
            ["http://a.com/", "http://b.com/"]
        ]

    def test_within_tick_duplicate_and_warm_hit_take_memo_path(self):
        report, pipeline = self._run(BatchStubPipeline())
        by_url = {}
        for response in report.responses:
            by_url.setdefault(response.url, response)
        assert report.memo_hits == 2          # dup-of-a + the 0.5s a.com
        assert report.memo_misses == 2        # a.com, b.com
        memo_latency = by_url["http://dup-of-a.com/"].latency
        assert memo_latency == pytest.approx(0.1 * 0.1)  # memo_cost
        assert by_url["http://dead.com/"].shed_reason == SHED_UPSTREAM

    def test_budgeted_requests_bypass_batching(self):
        report, pipeline = self._run(BatchStubPipeline(), budget=1.0)
        assert pipeline.batches == []
        assert pipeline.analyzed          # per-request path still ran
        assert report.completed_count == 4

    def test_traced_engine_bypasses_batching(self):
        from repro.obs import Tracer

        tracer = Tracer(clock=ManualClock())
        report, pipeline = self._run(BatchStubPipeline(), tracer=tracer)
        assert pipeline.batches == []
        names = [span.name for span in tracer.iter_spans()]
        assert names.count("serve.request") == 5  # sheds are spanned too
        assert report.completed_count == 4


class TestValidation:
    def test_bad_parameters_rejected(self):
        admission = AdmissionController(
            TokenBucket(rate=1.0, capacity=1.0), queue_limit=4
        )
        with pytest.raises(ValueError):
            ServingEngine(StubPipeline(), StubBrowser(ManualClock()),
                          admission, workers=0)
        with pytest.raises(ValueError):
            ServingEngine(StubPipeline(), StubBrowser(ManualClock()),
                          admission, analysis_cost=0.0)
