"""Tests for in-flight coalescing and the content-hash verdict memo."""

from repro.serve.coalesce import InflightTable, VerdictMemo
from repro.serve.request import ServeRequest


def _request(request_id: int, url: str = "http://a.com/") -> ServeRequest:
    return ServeRequest(request_id=request_id, url=url, arrival=0.0)


class TestInflightTable:
    def test_lead_then_followers_in_arrival_order(self):
        table = InflightTable()
        leader = _request(1)
        table.lead(leader)
        assert table.leader_for("http://a.com/") == 1
        table.follow(1, _request(2))
        table.follow(1, _request(3))
        assert table.coalesced_total == 2
        followers = table.complete(leader)
        assert [f.request_id for f in followers] == [2, 3]

    def test_complete_clears_the_url(self):
        table = InflightTable()
        leader = _request(1)
        table.lead(leader)
        table.complete(leader)
        assert table.leader_for("http://a.com/") is None
        assert len(table) == 0
        # A later request for the same URL starts a fresh analysis.
        table.lead(_request(4))
        assert table.leader_for("http://a.com/") == 4

    def test_urls_are_independent(self):
        table = InflightTable()
        table.lead(_request(1, "http://a.com/"))
        table.lead(_request(2, "http://b.com/"))
        assert table.leader_for("http://a.com/") == 1
        assert table.leader_for("http://b.com/") == 2
        assert len(table) == 2

    def test_leader_without_followers_completes_empty(self):
        table = InflightTable()
        leader = _request(1)
        table.lead(leader)
        assert table.complete(leader) == []
        assert table.coalesced_total == 0


class TestVerdictMemo:
    def test_miss_then_hit(self):
        memo = VerdictMemo()
        assert memo.get("fp-1") is None
        memo.put("fp-1", "verdict")
        assert memo.get("fp-1") == "verdict"
        assert memo.hits == 1
        assert memo.misses == 1
        assert len(memo) == 1

    def test_keys_are_independent(self):
        memo = VerdictMemo()
        memo.put("fp-1", "a")
        memo.put("fp-2", "b")
        assert memo.get("fp-1") == "a"
        assert memo.get("fp-2") == "b"
