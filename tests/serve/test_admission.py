"""Tests for token-bucket admission control and watermark backpressure."""

import pytest

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.request import SHED_QUEUE_FULL, SHED_RATE_LIMITED


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(rate=10.0, capacity=3.0)
        assert bucket.tokens == 3.0
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_at_rate_up_to_capacity(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0)
        for _ in range(4):
            assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 1 second at 2 tokens/s -> exactly two more admissions.
        assert bucket.try_take(1.0)
        assert bucket.try_take(1.0)
        assert not bucket.try_take(1.0)
        # Long idle caps at capacity, not unbounded credit.
        assert bucket.try_take(100.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_variable_cost(self):
        bucket = TokenBucket(rate=1.0, capacity=4.0)
        assert bucket.try_take(0.0, cost=3.0)
        assert not bucket.try_take(0.0, cost=2.0)
        assert bucket.try_take(0.0, cost=1.0)

    def test_retry_after_measures_deficit(self):
        bucket = TokenBucket(rate=2.0, capacity=1.0)
        assert bucket.try_take(0.0)
        # Empty bucket, need 1 token at 2/s -> 0.5 s.
        assert bucket.retry_after(0.0) == pytest.approx(0.5)
        assert bucket.retry_after(0.25) == pytest.approx(0.25)
        # Once affordable, the wait is zero, never negative.
        assert bucket.retry_after(10.0) == 0.0

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        assert bucket.try_take(5.0)
        # An out-of-order earlier instant neither refills nor crashes.
        assert not bucket.try_take(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)


class TestAdmissionController:
    def _controller(self, **kwargs) -> AdmissionController:
        defaults = dict(
            bucket=TokenBucket(rate=10.0, capacity=100.0),
            queue_limit=8,
            high_watermark=6,
            low_watermark=2,
        )
        defaults.update(kwargs)
        return AdmissionController(**defaults)

    def test_admits_under_the_limits(self):
        controller = self._controller()
        decision = controller.decide(0.0, queue_depth=0)
        assert decision.admitted
        assert decision.reason is None
        assert controller.stats["admitted"] == 1

    def test_full_queue_sheds_with_retry_after(self):
        controller = self._controller()
        decision = controller.decide(0.0, queue_depth=8)
        assert not decision.admitted
        assert decision.reason == SHED_QUEUE_FULL
        assert decision.retry_after == pytest.approx(0.1)
        assert controller.stats["shed_queue"] == 1

    def test_empty_bucket_sheds_rate_limited(self):
        controller = self._controller(
            bucket=TokenBucket(rate=2.0, capacity=1.0)
        )
        assert controller.decide(0.0, queue_depth=0).admitted
        decision = controller.decide(0.0, queue_depth=0)
        assert not decision.admitted
        assert decision.reason == SHED_RATE_LIMITED
        assert decision.retry_after == pytest.approx(0.5)

    def test_watermark_hysteresis(self):
        controller = self._controller()
        assert not controller.throttled
        controller.decide(0.0, queue_depth=6)     # at high watermark
        assert controller.throttled
        # Between the watermarks the throttle holds (no flapping)...
        controller.decide(0.0, queue_depth=4)
        assert controller.throttled
        # ...and only releases at the low watermark.
        controller.decide(0.0, queue_depth=2)
        assert not controller.throttled
        assert controller.stats["throttle_engaged"] == 1

    def test_throttling_doubles_the_token_cost(self):
        bucket = TokenBucket(rate=1.0, capacity=4.0)
        controller = self._controller(bucket=bucket, shed_factor=0.5)
        controller.decide(0.0, queue_depth=6)     # engages throttle
        assert bucket.tokens == pytest.approx(2.0)   # cost 2, not 1
        controller.decide(0.0, queue_depth=6)
        assert bucket.tokens == pytest.approx(0.0)
        # Drained: the throttled rate is shed_factor * bucket rate.
        assert not controller.decide(0.0, queue_depth=6).admitted

    def test_default_watermarks_derived_from_limit(self):
        controller = AdmissionController(
            TokenBucket(rate=1.0, capacity=1.0), queue_limit=32
        )
        assert controller.high_watermark == 24
        assert controller.low_watermark == 8

    def test_validation(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        with pytest.raises(ValueError):
            AdmissionController(bucket, queue_limit=0)
        with pytest.raises(ValueError):
            AdmissionController(bucket, queue_limit=8, shed_factor=0.0)
        with pytest.raises(ValueError):
            AdmissionController(
                bucket, queue_limit=8, high_watermark=2, low_watermark=2
            )
