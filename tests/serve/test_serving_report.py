"""ServingReport guards: empty runs and tier-sliced percentiles.

Regression coverage for the zero-completed-responses case: an empty
run (or a tier with no completed responses) has no latency
distribution, and every exporter must degrade to zeros and empty
tables instead of indexing into an empty nearest-rank ordering.
"""

import pytest

from repro.serve import ServingReport
from repro.serve.request import SHED, TIER_TRIAGE, ServeResponse


def _completed(request_id, latency, tier="full"):
    return ServeResponse(
        request_id=request_id, url=f"http://u{request_id}.com/",
        outcome="served", finished=latency, latency=latency, tier=tier,
    )


class TestEmptyRun:
    def test_percentiles_on_zero_responses_read_zero(self):
        report = ServingReport()
        assert report.latency_percentile(0.50) == 0.0
        assert report.latency_percentile(0.99) == 0.0
        assert report.latency_percentile(0.50, tier=TIER_TRIAGE) == 0.0

    def test_summary_and_as_dict_survive_an_empty_run(self):
        report = ServingReport()
        summary = report.summary()
        assert summary["total"] == 0
        assert summary["shed_rate"] == 0.0
        assert summary["latency_p50"] == 0.0
        data = report.as_dict()
        assert data["tiers"] == {}
        assert data["cache"] == {}

    def test_all_shed_run_has_no_latency_distribution(self):
        report = ServingReport(responses=[
            ServeResponse(
                request_id=0, url="http://a.com/", outcome=SHED,
                finished=0.0, latency=0.0, shed_reason="queue_full",
            ),
        ])
        assert report.completed_count == 0
        assert report.latency_percentile(0.99) == 0.0
        assert report.summary()["latency_p50"] == 0.0
        # The shed response still shows up in the tier table, with a
        # zero percentile for its empty completed population.
        tiers = report.tier_summary()
        assert tiers["full"]["count"] == 1
        assert tiers["full"]["completed"] == 0
        assert tiers["full"]["latency_p50"] == 0.0


class TestTierSlicing:
    def test_percentiles_slice_by_tier(self):
        report = ServingReport(responses=[
            _completed(0, 0.001, tier=TIER_TRIAGE),
            _completed(1, 0.002, tier=TIER_TRIAGE),
            _completed(2, 0.5),
            _completed(3, 0.7),
        ])
        assert report.latency_percentile(0.99, tier=TIER_TRIAGE) == 0.002
        assert report.latency_percentile(0.99, tier="full") == 0.7
        assert report.latency_percentile(0.99) == 0.7

    def test_tier_counts_are_key_sorted(self):
        report = ServingReport(responses=[
            _completed(0, 0.5),
            _completed(1, 0.001, tier=TIER_TRIAGE),
            _completed(2, 0.6),
        ])
        assert list(report.tier_counts()) == ["full", TIER_TRIAGE]
        assert report.tier_counts() == {"full": 2, TIER_TRIAGE: 1}

    def test_quantile_validation(self):
        report = ServingReport()
        with pytest.raises(ValueError):
            report.latency_percentile(0.0)
        with pytest.raises(ValueError):
            report.latency_percentile(1.5)
