"""Integration tests: the quality monitor tapped into the serving engine.

The monitor is a read-only sidecar: a monitored run's responses and
span/metric dumps must stay byte-identical to an unmonitored run's,
while the monitor's own artifact captures the taps (responses, memo
lookups, tier-0 escalation outcomes) and raises deterministic alerts.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.export import metrics_to_prometheus, spans_to_jsonl
from repro.obs.quality.monitor import QualityMonitor
from repro.obs.quality.slo import BurnRateWindow, SloObjective
from repro.obs.report import RunReport
from repro.obs.trace import Tracer
from repro.resilience.clock import ManualClock
from repro.serve import (
    AdmissionController,
    ServingEngine,
    TokenBucket,
    build_requests,
)
from repro.serve.loadgen import _RawArrival
from repro.serve.request import TIER_FULL, TIER_TRIAGE
from repro.serve.triage import TriageDecision

from tests.serve.test_engine import StubBrowser, StubPipeline


class StubTriage:
    """Canned tier-0 decisions keyed by URL; unknown URLs escalate."""

    def __init__(self, decisions=None):
        self.decisions = dict(decisions or {})

    def decide(self, url):
        return self.decisions.get(url, TriageDecision("escalate", 0.6))


def _arrivals(*specs):
    return [_RawArrival(time=t, url=u) for t, u in specs]


def _engine(clock=None, browser=None, pipeline=None, **kwargs):
    clock = clock or ManualClock()
    browser = browser or StubBrowser(clock)
    pipeline = pipeline or StubPipeline()
    admission = AdmissionController(
        TokenBucket(rate=100.0, capacity=100.0), queue_limit=8
    )
    engine = ServingEngine(
        pipeline, browser, admission,
        clock=clock, workers=2, analysis_cost=0.1, **kwargs,
    )
    return engine


def _monitor(**overrides):
    base = dict(
        objectives=(
            SloObjective("latency", "latency", budget=0.05, threshold=0.01),
            SloObjective("degraded", "degraded_rate", budget=0.5),
            SloObjective("escalation", "escalation_mismatch", budget=0.9),
            SloObjective("memo", "cache_hit", budget=0.999, store="memo"),
        ),
        windows=(BurnRateWindow("fast", long_s=1.0, short_s=0.2, factor=2.0),),
        clock=ManualClock(),
    )
    base.update(overrides)
    return QualityMonitor(**base)


def _workload(n=8):
    return build_requests(
        _arrivals(*[(0.05 * i, f"http://u{i}.com/") for i in range(n)]),
        budget=2.0,
    )


class TestMonitoredRunsAreByteIdentical:
    def test_responses_and_dumps_match_unmonitored_run(self):
        def run(quality):
            tracer, metrics = Tracer(clock=ManualClock()), MetricsRegistry()
            engine = _engine(tracer=tracer, metrics=metrics, quality=quality)
            report = engine.run(_workload())
            return report, spans_to_jsonl(tracer), metrics_to_prometheus(metrics)

        base_report, base_spans, base_metrics = run(None)
        mon_report, mon_spans, mon_metrics = run(_monitor())
        # ServeResponse is a dataclass: == compares every field.
        assert mon_report.responses == base_report.responses
        assert mon_spans == base_spans
        assert mon_metrics == base_metrics

    def test_monitor_observes_every_terminal_response(self):
        monitor = _monitor()
        engine = _engine(quality=monitor)
        report = engine.run(_workload())
        artifact = monitor.artifact()
        assert artifact["counts"]["serve"] == report.total
        serve_events = [
            e for e in monitor.recorder.snapshot() if e["kind"] == "serve"
        ]
        assert len(serve_events) == report.total
        assert all(e["tier"] == TIER_FULL for e in serve_events)

    def test_unmeetable_latency_objective_fires(self):
        # analysis_cost 0.1 vs threshold 0.01: every served response is
        # budget burn, so the alert must fire during the run.
        monitor = _monitor()
        engine = _engine(quality=monitor)
        engine.run(_workload(12))
        fired = [
            (a["objective"], a["state"]) for a in monitor.firing_alerts
        ]
        assert ("latency", "firing") in fired
        assert monitor.alert_dumps, "firing alert snapshots the recorder"


class TestCacheAndEscalationTaps:
    def test_memo_lookups_feed_the_cache_stream(self):
        clock = ManualClock()
        # Two URLs serving identical content: the second analysis is a
        # content-hash memo hit.
        browser = StubBrowser(
            clock, content={"http://a.com/": "same", "http://b.com/": "same"}
        )
        monitor = _monitor()
        engine = _engine(clock=clock, browser=browser, quality=monitor)
        engine.run(build_requests(
            _arrivals((0.0, "http://a.com/"), (1.0, "http://b.com/")),
            budget=2.0,
        ))
        artifact = monitor.artifact()
        assert artifact["counts"]["cache"] == 2
        memo_burn = next(
            row for row in artifact["slo"]["burn"] if row["objective"] == "memo"
        )
        assert memo_burn["events_long"] >= 1

    def test_escalation_mismatch_is_tapped(self):
        # Tier 0 leans phish (score 0.9) but the full pipeline says
        # legitimate: that disagreement is exactly one mismatch event.
        triage = StubTriage({
            "http://esc.com/": TriageDecision("escalate", 0.9),
            "http://ok.com/": TriageDecision("legitimate", 0.05),
        })
        monitor = _monitor()
        engine = _engine(triage=triage, quality=monitor)
        report = engine.run(build_requests(
            _arrivals((0.0, "http://esc.com/"), (0.1, "http://ok.com/")),
            budget=2.0,
        ))
        tiers = {r.url: r.tier for r in report.responses}
        assert tiers["http://esc.com/"] == TIER_FULL
        assert tiers["http://ok.com/"] == TIER_TRIAGE
        artifact = monitor.artifact()
        assert artifact["counts"]["escalation"] == 1
        assert artifact["counts"]["escalation_mismatch"] == 1

    def test_agreeing_escalation_is_not_a_mismatch(self):
        # Tier 0 leans legitimate-ish (score 0.4) and the pipeline
        # agrees: the escalation is tapped but carries no mismatch.
        triage = StubTriage({
            "http://esc.com/": TriageDecision("escalate", 0.4),
        })
        monitor = _monitor()
        engine = _engine(triage=triage, quality=monitor)
        engine.run(build_requests(_arrivals((0.0, "http://esc.com/")),
                                  budget=2.0))
        artifact = monitor.artifact()
        assert artifact["counts"]["escalation"] == 1
        assert "escalation_mismatch" not in artifact["counts"]


class TestRunReportFromArtifacts:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        from repro.obs.export import (
            write_metrics_prometheus,
            write_spans_jsonl,
        )

        tracer, metrics = Tracer(clock=ManualClock()), MetricsRegistry()
        monitor = _monitor()
        triage = StubTriage({
            "http://u0.com/": TriageDecision("legitimate", 0.02),
            "http://u1.com/": TriageDecision("phish", 0.98),
        })
        engine = _engine(
            tracer=tracer, metrics=metrics, quality=monitor, triage=triage,
        )
        engine.run(_workload(6))
        return {
            "spans": write_spans_jsonl(tracer, tmp_path / "spans.jsonl"),
            "metrics": write_metrics_prometheus(
                metrics, tmp_path / "metrics.prom"
            ),
            "quality": monitor.write_artifact(tmp_path / "quality.json"),
        }

    def test_tier_rows_reconstruct_counts_and_percentiles(self, artifacts):
        report = RunReport.from_artifacts(
            spans_path=artifacts["spans"], metrics_path=artifacts["metrics"]
        )
        rows = {row["tier"]: row for row in report.tier_rows()}
        assert rows[TIER_TRIAGE]["count"] == 2
        assert rows[TIER_FULL]["count"] == 4
        # Full-tier latency is analysis-dominated (~0.1 s); tier 0 is
        # orders of magnitude cheaper.
        assert rows[TIER_FULL]["latency_p50"] > rows[TIER_TRIAGE]["latency_p50"]

    def test_triage_actions_reconstruct(self, artifacts):
        report = RunReport.from_artifacts(metrics_path=artifacts["metrics"])
        actions = report.triage_actions()
        assert actions["legitimate"] == 1
        assert actions["phish"] == 1
        assert actions["escalate"] == 4

    def test_shard_rows_come_from_spans(self, artifacts):
        report = RunReport.from_artifacts(spans_path=artifacts["spans"])
        rows = report.shard_rows()
        assert rows, "engine dumps cache.shard spans on drain"
        assert {row["cache"] for row in rows} == {"memo"}
        assert [row["index"] for row in rows] == sorted(
            row["index"] for row in rows
        )

    def test_render_includes_quality_sections(self, artifacts):
        report = RunReport.from_artifacts(
            spans_path=artifacts["spans"],
            metrics_path=artifacts["metrics"],
            quality_path=artifacts["quality"],
        )
        text = report.render()
        assert "Serving tiers" in text
        assert "Triage" in text
        assert "Quality event streams" in text
        assert "SLO burn rates" in text
        assert "Flight recorder" in text
