"""TTL/LRU cache semantics under explicit, injected time.

Every test drives a :class:`~repro.serve.cache.TtlCacheShard` or a
:class:`~repro.serve.cache.ShardedTtlCache` on a
:class:`~repro.resilience.clock.ManualClock` (or explicit ``now``
arguments), so expiry, eviction, and counters are fully deterministic:
the properties asserted here are exactly what the serving engine's
memo and negative cache rely on.
"""

import pytest

from repro.resilience.clock import ManualClock
from repro.serve import ShardedTtlCache, TtlCacheShard, shard_index


class TestTtlExpiry:
    def test_entry_aged_exactly_ttl_is_still_valid(self):
        clock = ManualClock()
        cache = TtlCacheShard(ttl=10.0, clock=clock)
        cache.put("k", "v")
        clock.sleep(10.0)              # age == ttl: boundary inclusive
        assert cache.get("k") == "v"
        assert cache.stats()["expirations"] == 0

    def test_entry_strictly_past_ttl_expires_and_counts(self):
        clock = ManualClock()
        cache = TtlCacheShard(ttl=10.0, clock=clock)
        cache.put("k", "v")
        clock.sleep(10.0 + 1e-9)
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 0      # expired entry was removed

    def test_refresh_restarts_the_clock(self):
        clock = ManualClock()
        cache = TtlCacheShard(ttl=10.0, clock=clock)
        cache.put("k", "old")
        clock.sleep(8.0)
        cache.put("k", "new")          # re-put resets cached_at
        clock.sleep(8.0)               # 16 s after first put, 8 after second
        assert cache.get("k") == "new"

    def test_explicit_now_overrides_the_clock(self):
        cache = TtlCacheShard(ttl=5.0)
        cache.put("k", "v", now=100.0)
        assert cache.get("k", now=105.0) == "v"
        assert cache.get("k", now=105.1) is None

    def test_ttl_without_time_source_is_an_error(self):
        cache = TtlCacheShard(ttl=5.0)
        with pytest.raises(ValueError):
            cache.put("k", "v")        # no clock, no now

    def test_no_ttl_entries_never_expire(self):
        cache = TtlCacheShard()
        cache.put("k", "v")
        assert cache.get("k") == "v"


class TestNegativeEntries:
    def test_negative_ttl_is_separate_from_positive(self):
        clock = ManualClock()
        cache = TtlCacheShard(ttl=100.0, negative_ttl=5.0, clock=clock)
        cache.put("good", "verdict")
        cache.put("bad", "shed_upstream", negative=True)
        clock.sleep(6.0)               # past negative_ttl, within ttl
        assert cache.get("bad") is None
        assert cache.get("good") == "verdict"
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["hits"] == 1

    def test_negative_hits_are_tallied_apart(self):
        clock = ManualClock()
        cache = TtlCacheShard(ttl=10.0, clock=clock)
        cache.put("bad", "reason", negative=True)
        cache.put("good", "verdict")
        assert cache.get("bad") == "reason"
        assert cache.get("good") == "verdict"
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["negative_hits"] == 1

    def test_negative_ttl_defaults_to_ttl(self):
        cache = TtlCacheShard(ttl=7.0)
        assert cache.negative_ttl == 7.0


class TestLruEviction:
    def test_capacity_bound_evicts_least_recently_used(self):
        cache = TtlCacheShard(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1     # refresh a's recency
        cache.put("c", 3)              # evicts b, the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_eviction_under_pressure_is_deterministic(self):
        def run():
            cache = TtlCacheShard(capacity=4)
            for i in range(100):
                cache.put(f"k{i % 7}", i)
                cache.get(f"k{(i + 3) % 7}")
            return cache.stats(), sorted(
                key for key in (f"k{i}" for i in range(7))
                if cache.get(key) is not None
            )

        assert run() == run()

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = TtlCacheShard(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_invalidate(self):
        cache = TtlCacheShard()
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.get("a") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TtlCacheShard(capacity=0)
        with pytest.raises(ValueError):
            TtlCacheShard(ttl=0.0)
        with pytest.raises(ValueError):
            TtlCacheShard(negative_ttl=-1.0)


def _drive(cache, clock):
    """One fixed op sequence: puts, hits, misses, expiries, negatives."""
    for i in range(40):
        cache.put(f"url{i}", i)
    for i in range(0, 40, 2):
        assert cache.get(f"url{i}") == i
    for i in range(40, 50):
        assert cache.get(f"url{i}") is None
    cache.put("down", "shed_upstream", negative=True)
    assert cache.get("down") == "shed_upstream"
    clock.sleep(30.0)                  # expire everything (ttl=20)
    for i in range(40):
        assert cache.get(f"url{i}") is None


class TestShardedTtlCache:
    def test_shard_placement_is_a_pure_content_hash(self):
        cache = ShardedTtlCache(shards=4)
        for key in ("http://a.com/", "http://b.com/", "x" * 100):
            index = shard_index(key, 4)
            assert index == shard_index(key, 4)    # stable
            cache.put(key, "v")
            assert len(cache._shards[index]) >= 1

    def test_sharded_totals_equal_unsharded_totals(self):
        """Sharding must be invisible in the aggregate counters."""
        clock_sharded, clock_flat = ManualClock(), ManualClock()
        sharded = ShardedTtlCache(
            ttl=20.0, negative_ttl=5.0, clock=clock_sharded, shards=4
        )
        flat = TtlCacheShard(
            ttl=20.0, negative_ttl=5.0, clock=clock_flat
        )
        _drive(sharded, clock_sharded)
        _drive(flat, clock_flat)
        flat_stats = flat.stats()
        merged = sharded.stats()
        assert merged == {"shards": 4, **flat_stats}

    def test_stats_totals_equal_shard_wise_sums(self):
        clock = ManualClock()
        cache = ShardedTtlCache(ttl=20.0, clock=clock, shards=4)
        _drive(cache, clock)
        per_shard = list(cache.shard_stats())
        assert len(per_shard) == 4
        merged = cache.stats()
        for counter in ("size", "hits", "misses", "negative_hits",
                        "expirations", "evictions"):
            assert merged[counter] == sum(s[counter] for s in per_shard)

    def test_capacity_splits_across_shards(self):
        cache = ShardedTtlCache(capacity=10, shards=4)
        # 10 = 3 + 3 + 2 + 2: the first remainder shards take the extra.
        assert [shard.capacity for shard in cache._shards] == [3, 3, 2, 2]

    def test_shards_evict_independently_and_deterministically(self):
        def run():
            cache = ShardedTtlCache(capacity=8, shards=4)
            for i in range(200):
                cache.put(f"url{i % 23}", i)
                cache.get(f"url{(i + 5) % 23}")
            return cache.stats(), list(cache.shard_stats())

        first, second = run(), run()
        assert first == second
        assert first[0]["evictions"] > 0
        assert first[0]["size"] <= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedTtlCache(shards=0)
        with pytest.raises(ValueError):
            ShardedTtlCache(capacity=2, shards=4)   # a shard with no slot

    def test_clear_and_len_span_all_shards(self):
        cache = ShardedTtlCache(shards=4)
        for i in range(20):
            cache.put(f"k{i}", i)
        assert len(cache) == 20
        cache.clear()
        assert len(cache) == 0
        assert cache.hits + cache.misses == 0

    def test_hit_rate_aggregates(self):
        cache = ShardedTtlCache(shards=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == pytest.approx(0.5)
