"""Tests for the deterministic load generator and chaos scheduling."""

import pytest

from repro.serve.loadgen import (
    ZipfSampler,
    burst,
    build_requests,
    constant_rate,
    hot_key_storm,
    search_outage,
    worker_join,
    worker_loss,
)

URLS = [f"http://site-{index}.com/" for index in range(10)]


class TestZipfSampler:
    def test_deterministic_per_seed(self):
        first = ZipfSampler(URLS, exponent=1.1, seed=7)
        second = ZipfSampler(URLS, exponent=1.1, seed=7)
        draws = [first.sample() for _ in range(200)]
        assert draws == [second.sample() for _ in range(200)]
        other = ZipfSampler(URLS, exponent=1.1, seed=8)
        assert draws != [other.sample() for _ in range(200)]

    def test_skews_towards_the_head(self):
        sampler = ZipfSampler(URLS, exponent=1.2, seed=0)
        draws = [sampler.sample() for _ in range(2000)]
        head = draws.count(URLS[0])
        tail = draws.count(URLS[-1])
        assert head > 5 * max(tail, 1)

    def test_zero_exponent_is_roughly_uniform(self):
        sampler = ZipfSampler(URLS, exponent=0.0, seed=0)
        draws = [sampler.sample() for _ in range(5000)]
        for url in URLS:
            assert draws.count(url) == pytest.approx(500, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler([])
        with pytest.raises(ValueError):
            ZipfSampler(URLS, exponent=-1.0)


class TestSchedules:
    def test_constant_rate_spacing(self):
        sampler = ZipfSampler(URLS, seed=0)
        arrivals = constant_rate(sampler, rate=10.0, duration=1.0, start=2.0)
        assert len(arrivals) == 10
        assert arrivals[0].time == pytest.approx(2.0)
        assert arrivals[1].time - arrivals[0].time == pytest.approx(0.1)

    def test_burst_packs_into_spread(self):
        sampler = ZipfSampler(URLS, seed=0)
        arrivals = burst(sampler, at=5.0, count=4, spread=0.4)
        assert [a.time for a in arrivals] == pytest.approx(
            [5.0, 5.1, 5.2, 5.3]
        )

    def test_hot_key_storm_is_one_url(self):
        arrivals = hot_key_storm("http://viral.com/", at=1.0, count=5)
        assert {a.url for a in arrivals} == {"http://viral.com/"}
        assert all(a.time == 1.0 for a in arrivals)


class TestBuildRequests:
    def test_merges_sorted_with_stable_ids(self):
        sampler = ZipfSampler(URLS, seed=0)
        requests = build_requests(
            constant_rate(sampler, rate=5.0, duration=1.0),
            hot_key_storm("http://viral.com/", at=0.35, count=3),
            budget=2.0,
        )
        assert [r.request_id for r in requests] == list(range(8))
        times = [r.arrival for r in requests]
        assert times == sorted(times)
        assert all(r.budget == 2.0 for r in requests)

    def test_ties_break_by_schedule_order(self):
        first = hot_key_storm("http://a.com/", at=1.0, count=1)
        second = hot_key_storm("http://b.com/", at=1.0, count=1)
        requests = build_requests(first, second)
        assert [r.url for r in requests] == ["http://a.com/", "http://b.com/"]

    def test_no_budget_means_unlimited(self):
        requests = build_requests(
            hot_key_storm("http://a.com/", at=0.0, count=1)
        )
        assert requests[0].budget is None
        assert requests[0].remaining_at(1e9) is None


class TestChaosSchedules:
    class _Search:
        def __init__(self):
            self.down = False

        def force_down(self):
            self.down = True

        def restore(self):
            self.down = False

    class _Engine:
        def __init__(self):
            self.workers = 4

        def lose_worker(self):
            self.workers -= 1

        def add_worker(self):
            self.workers += 1

    def test_search_outage_brackets_the_window(self):
        search = self._Search()
        events = search_outage(search, at=1.0, duration=2.0)
        assert [(e.time, e.label) for e in events] == [
            (1.0, "search_down"), (3.0, "search_up"),
        ]
        events[0].action(None)
        assert search.down
        events[1].action(None)
        assert not search.down

    def test_worker_loss_and_join(self):
        engine = self._Engine()
        for event in worker_loss(at=1.0, count=2):
            event.action(engine)
        assert engine.workers == 2
        for event in worker_join(at=2.0):
            event.action(engine)
        assert engine.workers == 3
