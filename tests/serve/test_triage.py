"""Tier-0 triage: model unit tests and engine-ladder integration.

The unit tests drive :class:`~repro.serve.triage.TriageModel` over a
score-table stub so every band edge is exact; the integration tests
run the full :class:`~repro.serve.engine.ServingEngine` ladder on the
same stub browser/pipeline idiom as ``test_engine.py`` and assert the
tentpole contract: tier-0 resolution consumes no page load, no queue
slot, and no token, while escalation leaves the classic path — and
its verdicts — byte-identical to an untriaged engine.
"""

import pickle

import numpy as np
import pytest

from repro.core.pipeline import PageVerdict
from repro.obs import MetricsRegistry, Tracer
from repro.resilience.clock import ManualClock
from repro.serve import (
    SHED_DEADLINE,
    SHED_UPSTREAM,
    TIER_FULL,
    TIER_NEGATIVE,
    TIER_TRIAGE,
    TRIAGE_ESCALATE,
    TRIAGE_LEGITIMATE,
    TRIAGE_PHISH,
    AdmissionController,
    ServeRequest,
    ServingEngine,
    TokenBucket,
    TriageDecision,
    TriageModel,
    build_requests,
)
from repro.serve.loadgen import _RawArrival
from repro.web.browser import PageNotFound


class ScoreTable:
    """Stub classifier: a fixed URL -> score lookup (default 0.5)."""

    def __init__(self, scores=None, default=0.5):
        self.scores = scores or {}
        self.default = default

    def predict_proba_urls(self, urls):
        return np.array(
            [self.scores.get(url, self.default) for url in urls],
            dtype=float,
        )


class TestTriageModel:
    def _model(self, **scores):
        return TriageModel(
            ScoreTable(scores), legit_threshold=0.2, phish_threshold=0.8
        )

    def test_band_edges_are_inclusive(self):
        model = self._model()
        table = model.classifier.scores
        table.update({"hi": 0.8, "lo": 0.2, "mid": 0.5})
        assert model.decide("hi").action == TRIAGE_PHISH      # >= phish
        assert model.decide("lo").action == TRIAGE_LEGITIMATE  # <= legit
        assert model.decide("mid").action == TRIAGE_ESCALATE

    def test_decide_batch_matches_decide(self):
        model = self._model()
        model.classifier.scores.update(
            {"a": 0.05, "b": 0.5, "c": 0.95}
        )
        batch = model.decide_batch(["a", "b", "c"])
        assert batch == [model.decide(url) for url in ("a", "b", "c")]

    def test_resolved_property(self):
        assert TriageDecision(TRIAGE_PHISH, 0.9).resolved
        assert TriageDecision(TRIAGE_LEGITIMATE, 0.1).resolved
        assert not TriageDecision(TRIAGE_ESCALATE, 0.5).resolved

    def test_escalation_rate(self):
        model = self._model()
        model.classifier.scores.update({"a": 0.5, "b": 0.9, "c": 0.5})
        assert model.escalation_rate(["a", "b", "c"]) \
            == pytest.approx(2 / 3)
        assert model.escalation_rate([]) == 0.0

    def test_calibrate_separable_scores_leave_empty_band(self):
        # Perfectly separated validation scores: with zero error
        # budgets the confident regions meet, the band is empty, and
        # nothing between the classes escapes unresolved.
        scores = {f"l{i}": 0.1 + 0.01 * i for i in range(5)}
        scores.update({f"p{i}": 0.8 + 0.01 * i for i in range(5)})
        urls = list(scores)
        labels = np.array([0] * 5 + [1] * 5)
        model = TriageModel.calibrate(ScoreTable(scores), urls, labels)
        assert model.legit_threshold < model.phish_threshold <= 0.8
        assert all(d.resolved for d in model.decide_batch(urls))

    def test_calibrate_overlapping_scores_escalate_the_overlap(self):
        scores = {"l0": 0.1, "l1": 0.6, "p0": 0.4, "p1": 0.9}
        model = TriageModel.calibrate(
            ScoreTable(scores), list(scores), np.array([0, 0, 1, 1])
        )
        # Zero budgets: confident-phish above every legit (0.6),
        # confident-legit below every phish (0.4).
        assert model.decide("l1").action == TRIAGE_ESCALATE
        assert model.decide("p0").action == TRIAGE_ESCALATE
        assert model.decide("l0").action == TRIAGE_LEGITIMATE
        assert model.decide("p1").action == TRIAGE_PHISH

    def test_validation(self):
        stub = ScoreTable()
        with pytest.raises(ValueError):
            TriageModel(stub, legit_threshold=-0.1, phish_threshold=0.5)
        with pytest.raises(ValueError):
            TriageModel(stub, legit_threshold=0.5, phish_threshold=1.1)
        with pytest.raises(ValueError):
            TriageModel(stub, legit_threshold=0.8, phish_threshold=0.2)

    def test_model_is_picklable(self):
        from repro.baselines.url_lexical import UrlLexicalClassifier

        urls = [f"http://safe{i}.com/home" for i in range(8)] + [
            f"http://paypal-verify{i}.bad/login" for i in range(8)
        ]
        labels = np.array([0] * 8 + [1] * 8)
        classifier = UrlLexicalClassifier(epochs=5).fit_urls(urls, labels)
        model = TriageModel.calibrate(classifier, urls, labels)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.legit_threshold == model.legit_threshold
        assert clone.phish_threshold == model.phish_threshold
        assert clone.decide_batch(urls) == model.decide_batch(urls)


# -- engine integration ------------------------------------------------


class StubSnapshot:
    def __init__(self, content):
        self.content = content

    def to_dict(self):
        return {"content": self.content}


class StubLoaded:
    def __init__(self, content):
        self.snapshot = StubSnapshot(content)


class StubBrowser:
    def __init__(self, clock, dead=()):
        self.clock = clock
        self.dead = set(dead)
        self.loads = 0

    def load(self, url, deadline=None):
        self.loads += 1
        if url in self.dead:
            raise PageNotFound(url)
        return StubLoaded(url)


class StubPipeline:
    def __init__(self):
        self.analyzed = []

    def analyze(self, loaded, deadline=None):
        self.analyzed.append(loaded.snapshot.content)
        return PageVerdict(
            verdict="legitimate", confidence=0.1, targets=["mld"]
        )


def _engine(clock=None, browser=None, workers=2, queue_limit=8, **kwargs):
    clock = clock or ManualClock()
    browser = browser or StubBrowser(clock)
    pipeline = StubPipeline()
    admission = AdmissionController(
        TokenBucket(rate=100.0, capacity=100.0), queue_limit=queue_limit
    )
    engine = ServingEngine(
        pipeline, browser, admission,
        clock=clock, workers=workers, analysis_cost=0.1, **kwargs,
    )
    return engine, browser, pipeline


def _arrivals(*specs):
    return [_RawArrival(time=t, url=u) for t, u in specs]


CONFIDENT = TriageModel(
    ScoreTable({"http://phish.bad/": 0.99, "http://ok.com/": 0.01},
               default=0.5),
    legit_threshold=0.2,
    phish_threshold=0.8,
)
ESCALATE_ALL = TriageModel(
    ScoreTable(default=0.5), legit_threshold=0.2, phish_threshold=0.8
)


class TestEngineTriage:
    def test_confident_urls_resolve_at_tier0_without_a_page_load(self):
        engine, browser, pipeline = _engine(triage=CONFIDENT)
        report = engine.run(build_requests(_arrivals(
            (0.0, "http://phish.bad/"), (0.1, "http://ok.com/"),
        )))
        assert browser.loads == 0
        assert pipeline.analyzed == []
        phish, legit = report.responses
        assert phish.tier == legit.tier == TIER_TRIAGE
        assert phish.verdict == TRIAGE_PHISH
        assert legit.verdict == TRIAGE_LEGITIMATE
        assert phish.latency == pytest.approx(engine.triage_cost)
        assert phish.targets == ()

    def test_tier0_consumes_no_queue_slot_or_token(self):
        # 50 simultaneous confident arrivals against queue_limit=1 and
        # one worker: untriaged this sheds heavily; at tier 0 every
        # request resolves because the ladder answers before admission.
        engine, _b, _p = _engine(
            triage=CONFIDENT, workers=1, queue_limit=1
        )
        report = engine.run(build_requests(_arrivals(
            *[(0.0, "http://ok.com/") for _ in range(50)]
        )))
        assert report.shed_count == 0
        assert report.completed_count == 50
        assert report.tier_counts() == {TIER_TRIAGE: 50}
        assert report.max_queue_depth == 0

    def test_escalated_run_is_byte_identical_to_untriaged(self):
        def responses(triage):
            engine, _b, _p = _engine(triage=triage, workers=1,
                                     queue_limit=2)
            arrivals = _arrivals(
                *[(0.05 * i, f"http://u{i % 3}.com/") for i in range(12)]
            )
            return engine.run(build_requests(arrivals, budget=0.6))

        triaged = responses(ESCALATE_ALL)
        untriaged = responses(None)
        assert triaged.responses == untriaged.responses
        assert all(r.tier == TIER_FULL for r in triaged.responses)

    def test_budget_below_triage_cost_sheds_at_tier0(self):
        engine, browser, _p = _engine(triage=CONFIDENT, triage_cost=0.05)
        report = engine.run([ServeRequest(
            request_id=0, url="http://ok.com/", arrival=0.0, budget=0.01,
        )])
        response = report.responses[0]
        assert response.shed
        assert response.shed_reason == SHED_DEADLINE
        assert response.tier == TIER_TRIAGE
        assert browser.loads == 0

    def test_triage_metrics_and_spans(self):
        metrics = MetricsRegistry()
        tracer = Tracer(clock=ManualClock())
        engine, _b, _p = _engine(
            triage=CONFIDENT, metrics=metrics, tracer=tracer,
            memo_shards=4,
        )
        engine.run(build_requests(_arrivals(
            (0.0, "http://phish.bad/"),
            (0.1, "http://ok.com/"),
            (0.2, "http://unsure.com/"),      # 0.5 -> escalates
        )))
        assert metrics.counter_value(
            "serve_triage_total", action=TRIAGE_PHISH) == 1
        assert metrics.counter_value(
            "serve_triage_total", action=TRIAGE_LEGITIMATE) == 1
        assert metrics.counter_value(
            "serve_triage_total", action=TRIAGE_ESCALATE) == 1
        assert metrics.counter_value(
            "serve_tier_total", tier=TIER_TRIAGE) == 2
        assert metrics.counter_value(
            "serve_tier_total", tier=TIER_FULL) == 1
        names = [span.name for span in tracer.iter_spans()]
        assert names.count("serve.triage") == 3
        assert names.count("cache.shard") == 4    # one per memo shard

    def test_report_tiers_block_only_when_ladder_is_on(self):
        engine, _b, _p = _engine()
        plain = engine.run(build_requests(_arrivals((0.0, "http://a.com/"))))
        assert "tiers" not in plain.summary()       # chaos byte-identity
        assert "tiers" in plain.as_dict()
        assert "cache" in plain.as_dict()

        engine, _b, _p = _engine(triage=ESCALATE_ALL)
        tiered = engine.run(
            build_requests(_arrivals((0.0, "http://a.com/")))
        )
        assert "tiers" in tiered.summary()
        assert tiered.summary()["tiers"][TIER_FULL]["count"] == 1


class TestNegativeCache:
    def _engine_with_dead_url(self, negative_ttl):
        clock = ManualClock()
        browser = StubBrowser(clock, dead={"http://gone.bad/"})
        return _engine(
            clock=clock, browser=browser, negative_ttl=negative_ttl
        )

    def test_repeat_failure_is_refused_from_the_negative_cache(self):
        metrics = MetricsRegistry()
        engine, browser, _p = self._engine_with_dead_url(10.0)
        engine.metrics = metrics
        report = engine.run(build_requests(_arrivals(
            (0.0, "http://gone.bad/"),
            (1.0, "http://gone.bad/"),        # within negative TTL
        )))
        first, second = report.responses
        assert first.shed_reason == SHED_UPSTREAM
        assert first.tier == TIER_FULL
        assert second.shed_reason == SHED_UPSTREAM
        assert second.tier == TIER_NEGATIVE
        assert browser.loads == 1             # repeat never hit the browser
        assert metrics.counter_value("serve_negative_hits_total") == 1

    def test_negative_entry_expires_and_the_url_is_retried(self):
        engine, browser, _p = self._engine_with_dead_url(0.5)
        report = engine.run(build_requests(_arrivals(
            (0.0, "http://gone.bad/"),
            (2.0, "http://gone.bad/"),        # past negative TTL
        )))
        assert browser.loads == 2
        assert all(r.tier == TIER_FULL for r in report.responses)

    def test_negative_cache_stats_reach_the_report(self):
        engine, _b, _p = self._engine_with_dead_url(10.0)
        report = engine.run(build_requests(_arrivals(
            (0.0, "http://gone.bad/"), (1.0, "http://gone.bad/"),
        )))
        cache = report.as_dict()["cache"]
        assert cache["negative"]["negative_hits"] == 1
        assert "memo" in cache
