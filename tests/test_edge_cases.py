"""Edge-case tests across components: inputs real crawls actually produce."""

import numpy as np

from repro.core import FeatureExtractor
from repro.core.datasources import DataSources
from repro.core.keyterms import KeytermExtractor
from repro.html.extract import extract_elements
from repro.text.distributions import TermDistribution, hellinger_distance
from repro.text.terms import extract_terms
from repro.urls.parsing import parse_url
from repro.web.page import PageSnapshot


class TestUrlEdgeCases:
    def test_userinfo_stripped_from_host(self):
        # Classic obfuscation: http://paypal.com@evil.xyz/ — the real
        # host is evil.xyz.
        url = parse_url("http://paypal.com@evil.xyz/login")
        assert url.fqdn == "evil.xyz"
        assert url.rdn == "evil.xyz"

    def test_port_not_in_fqdn(self):
        url = parse_url("http://evil.xyz:8080/x")
        assert url.fqdn == "evil.xyz"
        assert url.port == 8080

    def test_percent_encoded_path(self):
        url = parse_url("http://a.com/p%20ath?q=%3Cscript%3E")
        assert url.path == "/p%20ath"

    def test_very_long_url(self):
        url = parse_url("http://a.com/" + "x" * 5000)
        assert len(url.raw) > 5000

    def test_single_label_host(self):
        url = parse_url("http://localhost/admin")
        assert url.fqdn == "localhost"
        # Whole host is treated as the (implicit-rule) public suffix.
        assert url.rdn is None

    def test_punycode_host_parses(self):
        url = parse_url("http://xn--pypal-4ve.com/")
        assert url.mld == "xn--pypal-4ve"


class TestHtmlEdgeCases:
    def test_nested_iframes_counted(self):
        html = "<iframe src='/a'><iframe src='/b'></iframe></iframe>"
        elements = extract_elements(html, base_url="http://x.com")
        assert elements.iframe_count == 2

    def test_comment_content_not_text(self):
        elements = extract_elements(
            "<body><!-- hidden secret --><p>visible</p></body>",
            base_url="http://x.com",
        )
        assert "secret" not in elements.text

    def test_attribute_less_tags(self):
        elements = extract_elements("<a>no href</a><img>", "http://x.com")
        assert elements.href_links == []
        assert elements.image_count == 1

    def test_uppercase_tags(self):
        elements = extract_elements(
            "<TITLE>Upper</TITLE><BODY><A HREF='/x'>l</A></BODY>",
            base_url="http://x.com",
        )
        assert elements.title == "Upper"
        assert elements.href_links == ["http://x.com/x"]

    def test_protocol_relative_resource(self):
        elements = extract_elements(
            '<img src="//cdn.example.net/a.png">',
            base_url="https://site.com/page",
        )
        assert elements.resource_links == ["https://cdn.example.net/a.png"]


class TestTermEdgeCases:
    def test_only_separators(self):
        assert extract_terms("...---///123") == []

    def test_mixed_script_word(self):
        # Cyrillic 'раураl' homoglyph spoof canonicalises into letters.
        terms = extract_terms("раyраl")
        assert terms  # recovered as a term, not dropped

    def test_distribution_of_one_repeated_term(self):
        dist = TermDistribution.from_terms(["aaa"] * 50)
        assert dist.probability("aaa") == 1.0

    def test_hellinger_subset_distributions(self):
        small = TermDistribution.from_counts({"aaa": 1})
        large = TermDistribution.from_counts(
            {"aaa": 1, "bbb": 1, "ccc": 1, "ddd": 1}
        )
        distance = hellinger_distance(small, large)
        assert 0.0 < distance < 1.0


class TestPipelineEdgeCases:
    def test_snapshot_with_no_links_or_text(self):
        snapshot = PageSnapshot(
            starting_url="http://bare.com/", landing_url="http://bare.com/",
            html="<html></html>",
        )
        vector = FeatureExtractor().extract(snapshot)
        assert vector.shape == (212,)
        assert np.all(np.isfinite(vector))

    def test_snapshot_with_hundreds_of_links(self):
        links = "".join(
            f'<a href="http://site{i}.com/page">l{i}</a>' for i in range(300)
        )
        snapshot = PageSnapshot(
            starting_url="http://hub.com/", landing_url="http://hub.com/",
            html=f"<title>hub</title><body>{links}</body>",
        )
        sources = DataSources(snapshot)
        assert len(sources.external_href) == 300
        vector = FeatureExtractor().extract(snapshot)
        assert np.all(np.isfinite(vector))

    def test_keyterms_on_whitespace_only_page(self):
        snapshot = PageSnapshot(
            starting_url="http://x.com/", landing_url="http://x.com/",
            html="<body>   \n\t  </body>",
        )
        keyterms = KeytermExtractor().extract(DataSources(snapshot))
        assert keyterms.prominent == []

    def test_unicode_heavy_page(self):
        snapshot = PageSnapshot(
            starting_url="http://unicode.com/",
            landing_url="http://unicode.com/",
            html=(
                "<title>Üñíçødé Bänk</title><body>"
                "<p>Überweisung tätigen — Crédit épargne</p></body>"
            ),
        )
        sources = DataSources(snapshot)
        assert "unicode" in sources.d_startrdn
        assert "uberweisung" in sources.d_text
        vector = FeatureExtractor().extract(snapshot)
        assert np.all(np.isfinite(vector))

    def test_identical_start_and_land_with_query(self):
        url = "http://a.com/page?x=1&y=2"
        snapshot = PageSnapshot(starting_url=url, landing_url=url, html="")
        sources = DataSources(snapshot)
        assert hellinger_distance(sources.d_start, sources.d_land) == 0.0
