"""Tests for calibration and threshold selection."""

import numpy as np
import pytest

from repro.ml.calibration import (
    expected_calibration_error,
    reliability_curve,
    threshold_for_fpr,
    threshold_for_miss_rate,
    threshold_for_precision,
    two_sided_thresholds,
)


class TestReliabilityCurve:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        scores = rng.random(20_000)
        y = (rng.random(20_000) < scores).astype(int)
        centers, observed, counts = reliability_curve(y, scores, n_bins=5)
        assert len(centers) == 5
        assert counts.sum() == 20_000
        mask = counts > 0
        assert np.allclose(centers[mask], observed[mask], atol=0.03)

    def test_empty_bins_are_nan(self):
        y = np.array([0, 1])
        scores = np.array([0.05, 0.95])
        _centers, observed, counts = reliability_curve(y, scores, n_bins=10)
        assert counts[0] == 1 and counts[-1] == 1
        assert np.isnan(observed[5])

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability_curve(np.ones(3), np.ones(3), n_bins=1)
        with pytest.raises(ValueError):
            reliability_curve(np.ones(3), np.ones(4))


class TestEce:
    def test_zero_for_calibrated(self):
        rng = np.random.default_rng(1)
        scores = rng.random(30_000)
        y = (rng.random(30_000) < scores).astype(int)
        assert expected_calibration_error(y, scores) < 0.02

    def test_large_for_anticalibrated(self):
        scores = np.array([0.95] * 100 + [0.05] * 100)
        y = np.array([0] * 100 + [1] * 100)
        assert expected_calibration_error(y, scores) > 0.8

    def test_empty(self):
        assert expected_calibration_error(np.array([]), np.array([])) == 0.0


class TestThresholdForFpr:
    def test_meets_budget(self):
        rng = np.random.default_rng(2)
        y = np.array([0] * 900 + [1] * 100)
        scores = np.concatenate([
            rng.beta(1, 6, 900), rng.beta(6, 1, 100)
        ])
        for budget in (0.0, 0.01, 0.05):
            threshold = threshold_for_fpr(y, scores, budget)
            fpr = float((scores[y == 0] >= threshold).mean())
            assert fpr <= budget + 1e-12

    def test_most_permissive_within_budget(self):
        y = np.array([0, 0, 0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.8, 0.85, 0.9])
        # 25% budget allows exactly one negative (0.8) above threshold.
        threshold = threshold_for_fpr(y, scores, 0.25)
        assert threshold <= 0.8
        assert (scores[y == 0] >= threshold).sum() == 1

    def test_no_negatives(self):
        assert threshold_for_fpr(np.array([1, 1]), np.array([0.5, 0.9]),
                                 0.01) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            threshold_for_fpr(np.array([0, 1]), np.array([0.1, 0.9]), 1.5)


class TestThresholdForMissRate:
    def test_meets_budget(self):
        rng = np.random.default_rng(3)
        y = np.array([0] * 900 + [1] * 100)
        scores = np.concatenate([
            rng.beta(1, 6, 900), rng.beta(6, 1, 100)
        ])
        for budget in (0.0, 0.01, 0.05):
            threshold = threshold_for_miss_rate(y, scores, budget)
            fnr = float((scores[y == 1] <= threshold).mean())
            assert fnr <= budget + 1e-12

    def test_most_permissive_within_budget(self):
        y = np.array([1, 1, 1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.2, 0.15, 0.1])
        # 25% budget allows exactly one positive (0.2) at or under it.
        threshold = threshold_for_miss_rate(y, scores, 0.25)
        assert (scores[y == 1] <= threshold).sum() == 1
        # Zero budget must sit strictly below the weakest positive.
        assert threshold_for_miss_rate(y, scores, 0.0) < 0.2

    def test_no_positives(self):
        assert threshold_for_miss_rate(
            np.array([0, 0]), np.array([0.5, 0.9]), 0.01
        ) == 1.0

    def test_full_budget_clears_everything(self):
        assert threshold_for_miss_rate(
            np.array([1, 1]), np.array([0.3, 0.7]), 1.0
        ) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            threshold_for_miss_rate(
                np.array([0, 1]), np.array([0.1, 0.9]), -0.1
            )


class TestTwoSidedThresholds:
    def test_separable_scores_give_a_tight_band(self):
        y = np.array([0, 0, 0, 1, 1, 1])
        scores = np.array([0.1, 0.2, 0.3, 0.7, 0.8, 0.9])
        legit, phish = two_sided_thresholds(y, scores)
        # Confident regions swallow all of each class, zero errors.
        assert (scores[y == 1] >= phish).all()
        assert (scores[y == 0] <= legit).all()
        assert legit < phish

    def test_regions_never_overlap(self):
        # Heavily overlapping classes with generous budgets would put
        # the one-sided thresholds out of order; the clamp keeps
        # legit strictly under phish.
        rng = np.random.default_rng(4)
        y = np.array([0] * 200 + [1] * 200)
        scores = np.concatenate([
            rng.beta(2, 3, 200), rng.beta(3, 2, 200)
        ])
        legit, phish = two_sided_thresholds(
            y, scores, max_fpr=0.5, max_fnr=0.5
        )
        assert legit < phish

    def test_budgets_bound_both_error_rates(self):
        rng = np.random.default_rng(5)
        y = np.array([0] * 500 + [1] * 500)
        scores = np.concatenate([
            rng.beta(1, 5, 500), rng.beta(5, 1, 500)
        ])
        legit, phish = two_sided_thresholds(
            y, scores, max_fpr=0.02, max_fnr=0.02
        )
        assert float((scores[y == 0] >= phish).mean()) <= 0.02
        assert float((scores[y == 1] <= legit).mean()) <= 0.02


class TestThresholdForPrecision:
    def test_achievable(self):
        y = np.array([0, 0, 1, 1, 1])
        scores = np.array([0.1, 0.55, 0.6, 0.8, 0.9])
        threshold = threshold_for_precision(y, scores, 0.75)
        assert threshold is not None
        predictions = scores >= threshold
        precision = (predictions & (y == 1)).sum() / predictions.sum()
        assert precision >= 0.75

    def test_unachievable_returns_none(self):
        y = np.array([0, 0, 0])
        scores = np.array([0.9, 0.8, 0.7])
        assert threshold_for_precision(y, scores, 0.5) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            threshold_for_precision(np.array([0, 1]), np.array([0.1, 0.9]), 0)
