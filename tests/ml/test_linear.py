"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.ml.linear import LogisticRegression
from repro.ml.metrics import roc_auc


class TestLogisticRegression:
    def _data(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 5))
        y = (2 * X[:, 0] - X[:, 1] > 0).astype(int)
        return X, y

    def test_learns_separable_data(self):
        X, y = self._data()
        model = LogisticRegression(epochs=50, random_state=0).fit(
            X[:200], y[:200]
        )
        assert roc_auc(y[200:], model.predict_proba(X[200:])) > 0.95

    def test_proba_bounds(self):
        X, y = self._data()
        model = LogisticRegression(epochs=10).fit(X, y)
        scores = model.predict_proba(X)
        assert scores.min() >= 0 and scores.max() <= 1

    def test_predict_threshold(self):
        X, y = self._data()
        model = LogisticRegression(epochs=10).fit(X, y)
        assert model.predict(X, threshold=0.9).sum() <= \
            model.predict(X, threshold=0.1).sum()

    def test_l2_shrinks_weights(self):
        X, y = self._data()
        free = LogisticRegression(epochs=30, l2=0.0, random_state=0).fit(X, y)
        shrunk = LogisticRegression(epochs=30, l2=1.0, random_state=0).fit(X, y)
        assert np.linalg.norm(shrunk.weights) < np.linalg.norm(free.weights)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(epochs=0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((4, 2)), np.ones(3))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.ones((1, 2)))
