"""Tests for the gradient boosting classifier."""

import numpy as np
import pytest

from repro.ml.boosting import PAPER_THRESHOLD, GradientBoostingClassifier
from repro.ml.metrics import roc_auc


def _linear_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = (X[:, 0] + 0.5 * X[:, 1] + rng.normal(scale=0.2, size=n) > 0)
    return X, y.astype(int)


def _xor_data(n=400, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestLearning:
    def test_learns_linear_boundary(self):
        X, y = _linear_data()
        model = GradientBoostingClassifier(
            n_estimators=50, random_state=0
        ).fit(X[:300], y[:300])
        assert roc_auc(y[300:], model.predict_proba(X[300:])) > 0.95

    def test_learns_xor(self):
        # XOR needs interactions: trees of depth >= 2 must capture it.
        X, y = _xor_data()
        model = GradientBoostingClassifier(
            n_estimators=80, max_depth=2, random_state=0
        ).fit(X[:300], y[:300])
        assert roc_auc(y[300:], model.predict_proba(X[300:])) > 0.95

    def test_train_deviance_decreases(self):
        X, y = _linear_data()
        model = GradientBoostingClassifier(n_estimators=30, random_state=0)
        model.fit(X, y)
        deviance = model.train_deviance_
        assert deviance[-1] < deviance[0]

    def test_subsample(self):
        X, y = _linear_data()
        model = GradientBoostingClassifier(
            n_estimators=30, subsample=0.5, random_state=0
        ).fit(X, y)
        assert roc_auc(y, model.predict_proba(X)) > 0.9

    def test_deterministic_given_seed(self):
        X, y = _linear_data()
        first = GradientBoostingClassifier(
            n_estimators=10, subsample=0.7, random_state=7
        ).fit(X, y).predict_proba(X)
        second = GradientBoostingClassifier(
            n_estimators=10, subsample=0.7, random_state=7
        ).fit(X, y).predict_proba(X)
        assert np.allclose(first, second)


class TestPrediction:
    def test_proba_in_unit_interval(self):
        X, y = _linear_data()
        model = GradientBoostingClassifier(n_estimators=20).fit(X, y)
        scores = model.predict_proba(X)
        assert scores.min() >= 0.0 and scores.max() <= 1.0

    def test_predict_threshold(self):
        X, y = _linear_data()
        model = GradientBoostingClassifier(n_estimators=20).fit(X, y)
        strict = model.predict(X, threshold=0.9).sum()
        lax = model.predict(X, threshold=0.1).sum()
        assert strict <= lax

    def test_default_threshold_is_papers_07(self):
        """Section VI-A: the discrimination threshold is 0.7, not 0.5.

        Pins the whole decision chain to the paper's value — the module
        constant, the ``predict`` default, and the pipeline-level
        default the detector is built with.
        """
        from repro.core.detector import DEFAULT_THRESHOLD, PhishingDetector

        assert PAPER_THRESHOLD == 0.7
        assert DEFAULT_THRESHOLD == PAPER_THRESHOLD
        assert PhishingDetector().threshold == PAPER_THRESHOLD

        X, y = _linear_data()
        model = GradientBoostingClassifier(
            n_estimators=20, random_state=0
        ).fit(X, y)
        scores = model.predict_proba(X)
        # The default cut equals an explicit 0.7 cut...
        assert np.array_equal(
            model.predict(X), (scores >= 0.7).astype(int)
        )
        # ...and genuinely differs from the conventional 0.5 cut: rows
        # with confidence in [0.5, 0.7) flip to legitimate.
        between = (scores >= 0.5) & (scores < 0.7)
        assert between.any(), "test data must populate the [0.5, 0.7) band"
        assert model.predict(X)[between].sum() == 0
        assert model.predict(X, threshold=0.5)[between].sum() == between.sum()

    def test_staged_predict_converges_to_final(self):
        X, y = _linear_data(n=100)
        model = GradientBoostingClassifier(n_estimators=15).fit(X, y)
        stages = list(model.staged_predict_proba(X))
        assert len(stages) == 15
        assert np.allclose(stages[-1], model.predict_proba(X))

    def test_feature_importances(self):
        X, y = _linear_data()
        model = GradientBoostingClassifier(n_estimators=30, random_state=0)
        model.fit(X, y)
        importances = model.feature_importances()
        assert importances.shape == (6,)
        assert importances.sum() == pytest.approx(1.0)
        # The informative features dominate.
        assert importances[0] + importances[1] > 0.5


class TestValidation:
    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=-1)

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(np.ones((4, 2)),
                                             np.array([0, 1, 2, 1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(np.ones((4, 2)), np.ones(3))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().predict_proba(np.ones((1, 2)))

    def test_predict_wrong_width(self):
        X, y = _linear_data(n=50)
        model = GradientBoostingClassifier(n_estimators=5).fit(X, y)
        with pytest.raises(ValueError):
            model.predict_proba(np.ones((2, 3)))

    def test_single_class_training(self):
        # Degenerate but should not crash: all-legitimate training data.
        X = np.random.default_rng(0).normal(size=(30, 3))
        model = GradientBoostingClassifier(n_estimators=5).fit(X, np.zeros(30))
        assert model.predict_proba(X).max() < 0.5
