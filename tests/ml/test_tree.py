"""Tests for the regression-tree base learner."""

import numpy as np
import pytest

from repro.ml.tree import RegressionTree


def _step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = np.where(X[:, 0] > 0.2, 2.0, -1.0)
    return X, y


class TestFit:
    def test_learns_step_function(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=2).fit(X, y)
        predictions = tree.predict(X)
        assert np.abs(predictions - y).mean() < 0.05

    def test_threshold_found_near_step(self):
        X, y = _step_data(n=500)
        tree = RegressionTree(max_depth=1).fit(X, y)
        assert tree.feature[0] == 0
        assert 0.1 < tree.threshold[0] < 0.3

    def test_constant_target_yields_leaf(self):
        X = np.random.default_rng(0).normal(size=(50, 4))
        tree = RegressionTree(max_depth=3).fit(X, np.ones(50))
        assert tree.n_nodes == 1
        assert tree.predict(X[:5]) == pytest.approx(np.ones(5))

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 5))
        y = rng.normal(size=300)
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.depth_used <= 2

    def test_min_samples_leaf(self):
        X, y = _step_data(n=100)
        tree = RegressionTree(max_depth=5, min_samples_leaf=30).fit(X, y)
        for leaf in tree.leaf_ids():
            assert len(tree.training_samples_in_leaf(leaf)) >= 30

    def test_min_samples_split(self):
        X, y = _step_data(n=10)
        tree = RegressionTree(max_depth=10, min_samples_split=100).fit(X, y)
        assert tree.n_nodes == 1

    def test_max_features_subsampling(self):
        X, y = _step_data()
        tree = RegressionTree(
            max_depth=2, max_features=1, rng=np.random.default_rng(3)
        ).fit(X, y)
        assert tree.n_nodes >= 1

    def test_single_sample(self):
        tree = RegressionTree().fit(np.array([[1.0, 2.0]]), np.array([5.0]))
        assert tree.predict(np.array([[0.0, 0.0]]))[0] == pytest.approx(5.0)


class TestValidation:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)

    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.ones(5), np.ones(5))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.ones((5, 2)), np.ones(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.empty((0, 2)), np.empty(0))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.ones((1, 2)))


class TestLeafApi:
    def test_apply_returns_leaves(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=2).fit(X, y)
        leaves = set(tree.leaf_ids().tolist())
        assert set(tree.apply(X).tolist()) <= leaves

    def test_set_leaf_value(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=1).fit(X, y)
        leaf = int(tree.leaf_ids()[0])
        tree.set_leaf_value(leaf, 99.0)
        assert 99.0 in tree.predict(X)

    def test_set_leaf_value_rejects_internal(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=1).fit(X, y)
        with pytest.raises(ValueError):
            tree.set_leaf_value(0, 1.0)  # root is internal here

    def test_training_samples_partition(self):
        X, y = _step_data(n=80)
        tree = RegressionTree(max_depth=3).fit(X, y)
        collected = np.concatenate([
            tree.training_samples_in_leaf(leaf) for leaf in tree.leaf_ids()
        ])
        assert sorted(collected.tolist()) == list(range(80))
