"""Tests for classification metrics and curves."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    auc,
    binary_metrics,
    confusion_counts,
    precision_recall_curve,
    recall_at_precision,
    roc_auc,
    roc_curve,
)


class TestConfusion:
    def test_counts(self):
        y_true = np.array([1, 1, 0, 0, 1, 0])
        y_pred = np.array([1, 0, 0, 1, 1, 0])
        assert confusion_counts(y_true, y_pred) == (2, 1, 2, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.ones(3), np.ones(4))


class TestBinaryMetrics:
    def test_hand_computed(self):
        y_true = np.array([1, 1, 1, 0, 0, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0, 0, 0])
        metrics = binary_metrics(y_true, y_pred)
        assert metrics.precision == pytest.approx(2 / 3)
        assert metrics.recall == pytest.approx(2 / 3)
        assert metrics.f1 == pytest.approx(2 / 3)
        assert metrics.fpr == pytest.approx(1 / 5)
        assert metrics.accuracy == pytest.approx(6 / 8)

    def test_perfect(self):
        y = np.array([1, 0, 1, 0])
        metrics = binary_metrics(y, y)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.fpr == 0.0

    def test_degenerate_no_predicted_positives(self):
        metrics = binary_metrics(np.array([1, 0]), np.array([0, 0]))
        assert metrics.precision == 0.0
        assert metrics.f1 == 0.0

    def test_degenerate_no_actual_positives(self):
        metrics = binary_metrics(np.array([0, 0]), np.array([1, 0]))
        assert metrics.recall == 0.0
        assert metrics.fpr == 0.5

    def test_as_dict_keys(self):
        metrics = binary_metrics(np.array([1, 0]), np.array([1, 0]))
        assert set(metrics.as_dict()) == {
            "precision", "recall", "f1", "fpr", "accuracy"
        }


class TestRocCurve:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert roc_auc(y, scores) == pytest.approx(1.0)

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(y, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_thresholds_descend(self):
        y = np.array([0, 1, 0, 1, 1])
        scores = np.array([0.3, 0.6, 0.1, 0.9, 0.6])
        _fpr, _tpr, thresholds = roc_curve(y, scores)
        assert all(
            first >= second
            for first, second in zip(thresholds, thresholds[1:])
        )

    def test_tied_scores_single_vertex(self):
        y = np.array([0, 1, 1, 0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        fpr, tpr, _ = roc_curve(y, scores)
        assert len(fpr) == 2  # origin + one vertex


class TestAuc:
    def test_unit_square_diagonal(self):
        assert auc(np.array([0, 1]), np.array([0, 1])) == pytest.approx(0.5)

    def test_unsorted_input(self):
        assert auc(np.array([1, 0]), np.array([1, 0])) == pytest.approx(0.5)

    def test_single_point(self):
        assert auc(np.array([0.5]), np.array([0.5])) == 0.0


class TestPrecisionRecallCurve:
    def test_monotone_recall(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 100)
        scores = rng.random(100)
        _precision, recall, _ = precision_recall_curve(y, scores)
        assert all(a <= b for a, b in zip(recall, recall[1:]))

    def test_perfect_classifier(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        precision, recall, _ = precision_recall_curve(y, scores)
        assert precision[0] == 1.0
        assert recall[-1] == 1.0

    def test_recall_at_precision(self):
        y = np.array([0, 0, 1, 1, 1, 0])
        scores = np.array([0.1, 0.95, 0.8, 0.9, 0.7, 0.2])
        # At precision >= 0.6 we can take the top-5 (3 TP, 2 FP): rec=1.
        assert recall_at_precision(y, scores, 0.6) == pytest.approx(1.0)
        # Demanding precision 1.0 is impossible past the first FP.
        assert recall_at_precision(y, scores, 1.0) < 1.0


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=60),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_auc_bounded(self, labels, seed):
        y = np.asarray(labels)
        if y.min() == y.max():
            return  # need both classes
        scores = np.random.default_rng(seed).random(len(y))
        value = roc_auc(y, scores)
        assert 0.0 <= value <= 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=60),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roc_endpoints(self, labels, seed):
        y = np.asarray(labels)
        if y.min() == y.max():
            return
        scores = np.random.default_rng(seed).random(len(y))
        fpr, tpr, _ = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0)
        assert tpr[-1] == pytest.approx(1.0)
