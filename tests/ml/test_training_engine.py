"""Property tests for the training performance engine.

Two families of guarantees:

* the presorted tree/boosting path is **bit-identical** to the seed
  exact greedy path (same splits, same stored floats, same
  ``predict_proba``) across subsampling, feature subsampling and heavy
  value ties — presort is an execution strategy, not an approximation;
* fold-parallel cross-validation returns results exactly equal to the
  serial run on the thread and process backends (schedule-independent
  fold seeds + order-preserving pool maps).

Plus the satellite fixes: the tree's default RNG is a fixed seed and
``cross_validate`` thresholds at the paper's 0.7 by default.
"""

import inspect

import numpy as np
import pytest

from repro.ml.boosting import PAPER_THRESHOLD, GradientBoostingClassifier
from repro.ml.histogram import bin_matrix
from repro.ml.tree import (
    DEFAULT_SEED,
    RegressionTree,
    presort_matrix,
    restrict_presort,
)
from repro.ml.validation import cross_validate, cross_validate_scores
from repro.parallel.executor import WorkerPool


def _problem(n=200, n_features=12, ties=False, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    if ties:
        # Low-cardinality columns force equal-value runs, the hard case
        # for stable-sort tie-breaking.
        X[:, ::2] = rng.integers(0, 4, size=(n, (n_features + 1) // 2))
    w = rng.normal(size=n_features)
    y = (X @ w + rng.normal(size=n) > 0).astype(float)
    return X, y


def _trees_identical(a: RegressionTree, b: RegressionTree) -> bool:
    return (
        np.array_equal(a.feature, b.feature)
        and np.array_equal(a.threshold, b.threshold)
        and np.array_equal(a.left, b.left)
        and np.array_equal(a.right, b.right)
        and np.array_equal(a.value, b.value)
    )


class _BoostFactory:
    """Picklable estimator factory for process-backend CV tests."""

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def __call__(self) -> GradientBoostingClassifier:
        return GradientBoostingClassifier(**self.kwargs)


class TestPresortMatrix:
    def test_matches_per_column_stable_argsort(self):
        X, _ = _problem(ties=True)
        sorted_idx = presort_matrix(X)
        for feat in range(X.shape[1]):
            expected = np.argsort(X[:, feat], kind="stable")
            assert np.array_equal(sorted_idx[feat], expected)

    def test_restriction_equals_presort_of_submatrix(self):
        X, _ = _problem(n=300, ties=True)
        rows = np.sort(
            np.random.default_rng(1).choice(300, size=200, replace=False)
        )
        restricted = restrict_presort(presort_matrix(X), rows, len(X))
        assert np.array_equal(restricted, presort_matrix(X[rows]))

    def test_restriction_filters_value_matrix_consistently(self):
        X, _ = _problem(n=250, ties=True)
        rows = np.sort(
            np.random.default_rng(2).choice(250, size=140, replace=False)
        )
        sorted_idx = presort_matrix(X)
        cols = np.arange(X.shape[1])[:, None]
        sub_idx, sub_vals = restrict_presort(
            sorted_idx, rows, len(X), X[sorted_idx, cols]
        )
        X_sub = X[rows]
        assert np.array_equal(sub_vals, X_sub[presort_matrix(X_sub), cols])
        assert np.array_equal(sub_idx, presort_matrix(X_sub))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            presort_matrix(np.arange(5.0))


class TestPresortedTreeBitIdentity:
    @pytest.mark.parametrize("ties", [False, True])
    @pytest.mark.parametrize("max_depth", [1, 3, 5])
    def test_tree_identical_to_exact(self, ties, max_depth):
        X, y = _problem(ties=ties)
        exact = RegressionTree(max_depth=max_depth).fit(X, y)
        fast = RegressionTree(max_depth=max_depth).fit(
            X, y, sorted_idx=presort_matrix(X)
        )
        assert _trees_identical(exact, fast)
        assert np.array_equal(exact.predict(X), fast.predict(X))

    def test_tree_identical_with_feature_subsampling(self):
        X, y = _problem(ties=True)
        exact = RegressionTree(max_features=5, rng=3).fit(X, y)
        fast = RegressionTree(max_features=5, rng=3).fit(
            X, y, sorted_idx=presort_matrix(X)
        )
        assert _trees_identical(exact, fast)

    def test_leaf_bookkeeping_identical(self):
        X, y = _problem()
        exact = RegressionTree().fit(X, y)
        fast = RegressionTree().fit(X, y, sorted_idx=presort_matrix(X))
        for leaf in exact.leaf_ids():
            assert np.array_equal(
                exact.training_samples_in_leaf(leaf),
                fast.training_samples_in_leaf(leaf),
            )

    def test_rejects_both_sorted_idx_and_binned(self):
        X, y = _problem(n=50, n_features=4)
        with pytest.raises(ValueError):
            RegressionTree().fit(
                X, y,
                sorted_idx=presort_matrix(X), binned=bin_matrix(X),
            )

    def test_rejects_wrong_sorted_idx_shape(self):
        X, y = _problem(n=50, n_features=4)
        with pytest.raises(ValueError):
            RegressionTree().fit(X, y, sorted_idx=presort_matrix(X).T)


class TestBoostingBitIdentity:
    @pytest.mark.parametrize("subsample", [1.0, 0.7])
    @pytest.mark.parametrize("max_features", [None, 5])
    def test_presort_equals_exact(self, subsample, max_features):
        X, y = _problem(ties=True)
        kwargs = dict(
            n_estimators=10, random_state=0,
            subsample=subsample, max_features=max_features,
        )
        exact = GradientBoostingClassifier(
            tree_method="exact", **kwargs
        ).fit(X, y)
        fast = GradientBoostingClassifier(
            tree_method="presort", **kwargs
        ).fit(X, y)
        assert np.array_equal(
            exact.predict_proba(X), fast.predict_proba(X)
        )
        assert exact.train_deviance_ == fast.train_deviance_
        for tree_a, tree_b in zip(exact._trees, fast._trees):
            assert _trees_identical(tree_a, tree_b)

    def test_histogram_is_approximate_but_learns(self):
        X, y = _problem(n=400)
        exact = GradientBoostingClassifier(
            n_estimators=15, random_state=0, tree_method="exact"
        ).fit(X, y)
        hist = GradientBoostingClassifier(
            n_estimators=15, random_state=0, tree_method="histogram"
        ).fit(X, y)
        # Same final deviance ballpark: the approximation must not cost
        # meaningful accuracy on an easy problem.
        assert hist.train_deviance_[-1] < exact.train_deviance_[-1] * 1.5
        assert hist.fit_stats_.tree_method == "histogram"

    def test_rejects_unknown_tree_method(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(tree_method="sorted")

    def test_fit_stats_populated(self):
        X, y = _problem(n=120, n_features=6)
        clf = GradientBoostingClassifier(
            n_estimators=7, random_state=0, tree_method="presort"
        ).fit(X, y)
        stats = clf.fit_stats_
        assert stats.n_stages == 7
        assert stats.n_samples == 120 and stats.n_features == 6
        assert stats.nodes_built == sum(t.n_nodes for t in clf._trees)
        assert stats.split_evaluations > 0
        assert stats.total_seconds > 0
        payload = stats.as_dict()
        assert payload["tree_method"] == "presort"
        assert payload["stages_per_sec"] > 0

    def test_tree_method_round_trips_through_dict(self):
        X, y = _problem(n=100, n_features=5)
        clf = GradientBoostingClassifier(
            n_estimators=5, random_state=0, tree_method="histogram",
            max_bins=32,
        ).fit(X, y)
        clone = GradientBoostingClassifier.from_dict(clf.to_dict())
        assert clone.tree_method == "histogram"
        assert clone.max_bins == 32
        assert np.array_equal(clone.predict_proba(X), clf.predict_proba(X))


class TestDefaultRngDeterminism:
    def test_feature_subsampling_reproducible_without_rng(self):
        X, y = _problem(ties=True)
        first = RegressionTree(max_features=4).fit(X, y)
        second = RegressionTree(max_features=4).fit(X, y)
        assert _trees_identical(first, second)

    def test_int_seed_accepted(self):
        X, y = _problem()
        a = RegressionTree(max_features=4, rng=11).fit(X, y)
        b = RegressionTree(
            max_features=4, rng=np.random.default_rng(11)
        ).fit(X, y)
        assert _trees_identical(a, b)

    def test_default_seed_is_fixed(self):
        assert DEFAULT_SEED == 0


class TestFoldParallelCrossValidation:
    def _data(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(150, 4))
        y = (X[:, 0] + 0.3 * rng.normal(size=150) > 0).astype(int)
        return X, y

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_cross_validate_matches_serial(self, backend):
        X, y = self._data()
        factory = _BoostFactory(n_estimators=8, random_state=0)
        serial = cross_validate(factory, X, y, n_splits=3, random_state=0)
        with WorkerPool(workers=3, backend=backend) as pool:
            parallel = cross_validate(
                factory, X, y, n_splits=3, random_state=0, pool=pool
            )
        assert parallel == serial

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_cross_validate_scores_matches_serial(self, backend):
        X, y = self._data()
        factory = _BoostFactory(n_estimators=8, random_state=0)
        serial_y, serial_scores = cross_validate_scores(
            factory, X, y, n_splits=3, random_state=0
        )
        with WorkerPool(workers=3, backend=backend) as pool:
            pool_y, pool_scores = cross_validate_scores(
                factory, X, y, n_splits=3, random_state=0, pool=pool
            )
        assert np.array_equal(serial_y, pool_y)
        assert np.array_equal(serial_scores, pool_scores)

    def test_threshold_defaults_to_paper_value(self):
        signature = inspect.signature(cross_validate)
        assert signature.parameters["threshold"].default == PAPER_THRESHOLD
        assert PAPER_THRESHOLD == 0.7

    def test_threshold_default_changes_metrics_consistently(self):
        X, y = self._data()
        factory = _BoostFactory(n_estimators=8, random_state=0)
        default = cross_validate(factory, X, y, n_splits=3, random_state=0)
        explicit = cross_validate(
            factory, X, y, n_splits=3,
            threshold=PAPER_THRESHOLD, random_state=0,
        )
        assert default == explicit
