"""Tests for cross-validation utilities."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.validation import (
    cross_validate,
    cross_validate_scores,
    stratified_kfold,
    train_test_split,
)


class TestStratifiedKfold:
    def test_folds_cover_everything_once(self):
        y = np.array([0] * 20 + [1] * 10)
        seen = []
        for _train, test in stratified_kfold(y, n_splits=5, random_state=0):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(30))

    def test_train_test_disjoint(self):
        y = np.array([0, 1] * 15)
        for train, test in stratified_kfold(y, n_splits=3, random_state=0):
            assert not set(train.tolist()) & set(test.tolist())

    def test_class_balance_preserved(self):
        y = np.array([0] * 40 + [1] * 10)
        for _train, test in stratified_kfold(y, n_splits=5, random_state=1):
            ratio = y[test].mean()
            assert 0.1 <= ratio <= 0.3

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            list(stratified_kfold(np.array([0, 0, 1]), n_splits=5))

    def test_rejects_bad_n_splits(self):
        with pytest.raises(ValueError):
            list(stratified_kfold(np.array([0, 1] * 10), n_splits=1))

    def test_deterministic(self):
        y = np.array([0, 1] * 20)
        first = [t.tolist() for _tr, t in stratified_kfold(y, random_state=3)]
        second = [t.tolist() for _tr, t in stratified_kfold(y, random_state=3)]
        assert first == second


class TestTrainTestSplit:
    def test_disjoint_and_complete(self):
        train, test = train_test_split(20, test_fraction=0.25, random_state=0)
        assert len(test) == 5
        assert sorted(np.concatenate([train, test]).tolist()) == list(range(20))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=1.5)


class TestCrossValidate:
    def _data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 4))
        y = (X[:, 0] > 0).astype(int)
        return X, y

    def test_metrics_keys_and_quality(self):
        X, y = self._data()
        result = cross_validate(
            lambda: GradientBoostingClassifier(n_estimators=15),
            X, y, n_splits=3, random_state=0,
        )
        assert set(result) == {
            "precision", "recall", "f1", "fpr", "accuracy", "auc"
        }
        assert result["auc"] > 0.9

    def test_scores_shapes(self):
        X, y = self._data()
        y_true, scores = cross_validate_scores(
            lambda: GradientBoostingClassifier(n_estimators=10),
            X, y, n_splits=3, random_state=0,
        )
        assert len(y_true) == len(y)
        assert len(scores) == len(y)
        assert scores.min() >= 0 and scores.max() <= 1
