"""Tests for the Alexa-style popularity ranking."""

import pytest

from repro.urls.alexa import DEFAULT_UNRANKED, AlexaRanking


class TestRank:
    def test_ordered_iterable_assigns_positions(self):
        ranking = AlexaRanking(["google.com", "facebook.com", "youtube.com"])
        assert ranking.rank("google.com") == 1
        assert ranking.rank("youtube.com") == 3

    def test_mapping_input(self):
        ranking = AlexaRanking({"example.com": 42})
        assert ranking.rank("example.com") == 42

    def test_default_for_unknown(self):
        ranking = AlexaRanking(["google.com"])
        assert ranking.rank("unknown.com") == DEFAULT_UNRANKED

    def test_default_for_none(self):
        assert AlexaRanking().rank(None) == DEFAULT_UNRANKED

    def test_case_insensitive(self):
        ranking = AlexaRanking(["Example.COM"])
        assert ranking.rank("EXAMPLE.com") == 1

    def test_custom_default(self):
        ranking = AlexaRanking(default=99)
        assert ranking.rank("x.com") == 99


class TestMembership:
    def test_contains(self):
        ranking = AlexaRanking(["a.com"])
        assert "a.com" in ranking
        assert "b.com" not in ranking

    def test_is_ranked(self):
        ranking = AlexaRanking(["a.com"])
        assert ranking.is_ranked("a.com")
        assert not ranking.is_ranked("b.com")
        assert not ranking.is_ranked(None)

    def test_len(self):
        assert len(AlexaRanking(["a.com", "b.com"])) == 2


class TestMutation:
    def test_add(self):
        ranking = AlexaRanking()
        ranking.add("new.com", 7)
        assert ranking.rank("new.com") == 7

    def test_add_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            AlexaRanking().add("x.com", 0)

    def test_top(self):
        ranking = AlexaRanking({"c.com": 3, "a.com": 1, "b.com": 2})
        assert ranking.top(2) == ["a.com", "b.com"]

    def test_from_popularity(self):
        ranking = AlexaRanking.from_popularity(["first.com", "second.com"])
        assert ranking.rank("first.com") < ranking.rank("second.com")
