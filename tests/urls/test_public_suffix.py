"""Tests for the public-suffix rules engine."""

import pytest

from repro.urls.public_suffix import PublicSuffixList, default_psl


@pytest.fixture(scope="module")
def psl():
    return default_psl()


class TestPublicSuffix:
    def test_simple_tld(self, psl):
        assert psl.public_suffix("example.com") == "com"

    def test_second_level_rule(self, psl):
        assert psl.public_suffix("www.amazon.co.uk") == "co.uk"

    def test_deep_subdomains(self, psl):
        assert psl.public_suffix("a.b.c.d.example.org") == "org"

    def test_wildcard_rule(self, psl):
        # *.ck makes any second-level label part of the suffix.
        assert psl.public_suffix("foo.bar.ck") == "bar.ck"

    def test_exception_rule(self, psl):
        # !www.ck overrides the *.ck wildcard.
        assert psl.public_suffix("www.ck") == "ck"
        assert psl.registered_domain("foo.www.ck") == "www.ck"

    def test_unknown_tld_falls_back_to_last_label(self, psl):
        assert psl.public_suffix("host.unknowntld") == "unknowntld"
        assert psl.registered_domain("host.unknowntld") == "host.unknowntld"

    def test_private_hosting_rule(self, psl):
        assert psl.public_suffix("me.github.io") == "github.io"
        assert psl.registered_domain("a.b.github.io") == "b.github.io"


class TestRegisteredDomain:
    def test_basic(self, psl):
        assert psl.registered_domain("www.example.com") == "example.com"

    def test_bare_suffix_has_no_rdn(self, psl):
        assert psl.registered_domain("com") is None
        assert psl.registered_domain("co.uk") is None

    def test_empty_input(self, psl):
        assert psl.registered_domain("") is None

    def test_case_and_trailing_dot_insensitive(self, psl):
        assert psl.registered_domain("WWW.Example.COM.") == "example.com"


class TestSplit:
    def test_full_split(self, psl):
        assert psl.split("www.amazon.co.uk") == ("www", "amazon", "co.uk")

    def test_no_subdomains(self, psl):
        assert psl.split("amazon.co.uk") == ("", "amazon", "co.uk")

    def test_suffix_only(self, psl):
        assert psl.split("co.uk") == ("", "", "co.uk")

    def test_multiple_subdomains(self, psl):
        subdomains, mld, suffix = psl.split("a.b.c.example.com")
        assert (subdomains, mld, suffix) == ("a.b.c", "example", "com")

    def test_empty(self, psl):
        assert psl.split("") == ("", "", "")


class TestIsPublicSuffix:
    def test_positive(self, psl):
        assert psl.is_public_suffix("co.uk")
        assert psl.is_public_suffix("com")

    def test_negative(self, psl):
        assert not psl.is_public_suffix("example.com")
        assert not psl.is_public_suffix("")


class TestCustomRules:
    def test_custom_rule_set(self):
        custom = PublicSuffixList(["com", "*.example", "!special.example"])
        # Wildcard: any label under .example is a suffix...
        assert custom.public_suffix("www.shop.example") == "shop.example"
        # ...except the exception rule, which registers at special.example.
        assert custom.public_suffix("special.example") == "example"
        assert custom.registered_domain("x.special.example") == "special.example"

    def test_len_counts_rules(self):
        assert len(PublicSuffixList(["com", "net"])) == 2

    def test_default_is_cached(self):
        assert default_psl() is default_psl()
