"""Tests for URL decomposition (Section II-B model)."""

import pytest

from repro.urls.parsing import ParsedUrl, UrlParseError, parse_url


class TestComponents:
    def test_paper_example(self):
        url = parse_url("https://www.amazon.co.uk/ap/signin?_encoding=UTF8")
        assert url.protocol == "https"
        assert url.fqdn == "www.amazon.co.uk"
        assert url.rdn == "amazon.co.uk"
        assert url.mld == "amazon"
        assert url.public_suffix == "co.uk"
        assert url.subdomains == "www"
        assert url.path == "/ap/signin"
        assert url.query == "_encoding=UTF8"

    def test_no_subdomains(self):
        url = parse_url("http://example.com/")
        assert url.subdomains == ""
        assert url.rdn == "example.com"

    def test_deep_subdomains(self):
        url = parse_url("http://paypal.com.secure.evil.xyz/login")
        assert url.rdn == "evil.xyz"
        assert url.mld == "evil"
        assert url.subdomains == "paypal.com.secure"

    def test_missing_scheme_defaults_to_http(self):
        url = parse_url("example.com/page")
        assert url.protocol == "http"
        assert url.fqdn == "example.com"

    def test_port(self):
        assert parse_url("http://example.com:8080/x").port == 8080
        assert parse_url("http://example.com/x").port is None

    def test_fragment(self):
        assert parse_url("http://example.com/a#sec").fragment == "sec"

    def test_host_case_normalised(self):
        assert parse_url("http://ExAmPle.COM/Path").fqdn == "example.com"

    def test_free_hosting_private_suffix(self):
        url = parse_url("http://victim-login.000webhostapp.com/x")
        assert url.rdn == "victim-login.000webhostapp.com"
        assert url.mld == "victim-login"


class TestIpUrls:
    def test_ipv4(self):
        url = parse_url("http://192.168.1.10/admin")
        assert url.is_ip
        assert url.rdn is None
        assert url.mld is None
        assert url.public_suffix is None
        assert url.level_domain_count == 0

    def test_ipv6(self):
        url = parse_url("http://[2001:db8::1]/x")
        assert url.is_ip

    def test_dotted_but_not_ip(self):
        assert not parse_url("http://10.20.30.example.com/").is_ip


class TestFreeUrl:
    def test_contains_subdomains_path_query(self):
        url = parse_url("https://www.shop.example.com/buy/now?id=3")
        assert "www.shop" in url.free_url
        assert "/buy/now" in url.free_url
        assert "id=3" in url.free_url

    def test_homepage_is_empty(self):
        assert parse_url("https://example.com/").free_url == ""

    def test_rdn_not_in_free_url(self):
        url = parse_url("https://sub.example.com/path")
        assert "example.com" not in url.free_url


class TestErrors:
    def test_empty_string(self):
        with pytest.raises(UrlParseError):
            parse_url("")

    def test_none(self):
        with pytest.raises(UrlParseError):
            parse_url(None)

    def test_no_host(self):
        with pytest.raises(UrlParseError):
            parse_url("http:///path-only")

    def test_bad_label(self):
        with pytest.raises(UrlParseError):
            parse_url("http://exa mple.com/")


class TestHelpers:
    def test_same_rdn(self):
        first = parse_url("http://a.example.com/1")
        second = parse_url("https://b.example.com/2")
        assert first.same_rdn(second)

    def test_same_rdn_ip_never_matches(self):
        first = parse_url("http://10.0.0.1/")
        second = parse_url("http://10.0.0.1/")
        assert not first.same_rdn(second)

    def test_uses_https(self):
        assert parse_url("https://example.com/").uses_https
        assert not parse_url("http://example.com/").uses_https

    def test_level_domain_count(self):
        assert parse_url("http://a.b.example.com/").level_domain_count == 4

    def test_frozen(self):
        url = parse_url("http://example.com/")
        with pytest.raises(AttributeError):
            url.fqdn = "other.com"

    def test_is_parsed_url(self):
        assert isinstance(parse_url("http://example.com/"), ParsedUrl)
