"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import string

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.core.pipeline import KnowYourPhish
from repro.core.target import TargetIdentifier
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.tree import RegressionTree
from repro.parallel import AnalysisCache, WorkerPool
from repro.urls.parsing import UrlParseError, parse_url
from repro.urls.public_suffix import default_psl
from repro.web.browser import Browser
from repro.web.ocr import SimulatedOcr
from repro.web.page import PageSnapshot, Screenshot

_LABEL = st.text(alphabet=string.ascii_lowercase + string.digits,
                 min_size=1, max_size=12)
_HOST = st.lists(_LABEL, min_size=1, max_size=5).map(".".join)


class TestUrlInvariants:
    @given(_HOST, st.sampled_from(["http", "https"]))
    def test_structural_invariants(self, host, scheme):
        """FQDN = subdomains + RDN; RDN = mld + public suffix."""
        try:
            url = parse_url(f"{scheme}://{host}/path")
        except UrlParseError:
            return
        if url.is_ip:
            assert url.rdn is None
            return
        if url.rdn is not None:
            assert url.fqdn.endswith(url.rdn)
            assert url.rdn == f"{url.mld}.{url.public_suffix}" or \
                url.rdn == url.mld
            if url.subdomains:
                assert url.fqdn == f"{url.subdomains}.{url.rdn}"
            else:
                assert url.fqdn == url.rdn
        assert url.protocol == scheme

    @given(_HOST)
    def test_free_url_carries_path_and_query(self, host):
        try:
            url = parse_url(f"http://{host}/some/path?q=1")
        except UrlParseError:
            return
        assert "/some/path" in url.free_url
        assert "q=1" in url.free_url

    @given(_HOST)
    def test_psl_split_reassembles(self, host):
        psl = default_psl()
        subdomains, mld, suffix = psl.split(host)
        parts = [part for part in (subdomains, mld, suffix) if part]
        assert ".".join(parts) == host.lower().strip(".")


class TestTreeInvariants:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_predictions_bounded_by_targets(self, seed, depth):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(60, 3))
        y = rng.normal(size=60)
        tree = RegressionTree(max_depth=depth).fit(X, y)
        predictions = tree.predict(rng.normal(size=(40, 3)))
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_apply_partitions_consistently(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(50, 4))
        y = rng.normal(size=50)
        tree = RegressionTree(max_depth=3).fit(X, y)
        leaves = tree.apply(X)
        values = tree.predict(X)
        # Same leaf -> same prediction.
        for leaf in np.unique(leaves):
            leaf_values = values[leaves == leaf]
            assert np.allclose(leaf_values, leaf_values[0])


class TestBoostingInvariants:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_probabilities_valid(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(80, 4))
        y = (X[:, 0] > 0).astype(int)
        if y.min() == y.max():
            return
        model = GradientBoostingClassifier(
            n_estimators=8, random_state=0
        ).fit(X, y)
        scores = model.predict_proba(X)
        assert np.all((scores >= 0) & (scores <= 1))
        assert np.array_equal(
            model.predict(X, threshold=0.5), (scores >= 0.5).astype(int)
        )


class TestFeatureInvariants:
    _WORD = st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=8)

    @given(
        st.lists(_WORD, min_size=0, max_size=30),
        _HOST,
    )
    @settings(max_examples=30, deadline=None)
    def test_extractor_always_yields_212_finite_features(self, words, host):
        try:
            parse_url(f"http://{host}/")
        except UrlParseError:
            return
        html = (
            "<title>" + " ".join(words[:5]) + "</title><body><p>"
            + " ".join(words) + "</p></body>"
        )
        snapshot = PageSnapshot(
            starting_url=f"http://{host}/",
            landing_url=f"http://{host}/",
            html=html,
            screenshot=Screenshot(rendered_text=" ".join(words)),
        )
        vector = FeatureExtractor().extract(snapshot)
        assert vector.shape == (212,)
        assert np.all(np.isfinite(vector))
        # All f2 features (Hellinger distances) stay in [0, 1].
        f2 = vector[106:172]
        assert np.all((f2 >= 0) & (f2 <= 1))

    @given(st.lists(_WORD, min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_extraction_deterministic(self, words):
        snapshot = PageSnapshot(
            starting_url="http://example.com/",
            landing_url="http://example.com/",
            html="<body>" + " ".join(words) + "</body>",
        )
        extractor = FeatureExtractor()
        assert np.array_equal(
            extractor.extract(snapshot), extractor.extract(snapshot)
        )


# Shared state for the parallel invariants below: one small trained
# pipeline per session, built lazily so test collection stays cheap.
_PIPELINE_CACHE: dict = {}


def _trained_pipeline(world):
    if "pipeline" not in _PIPELINE_CACHE:
        extractor = FeatureExtractor(
            alexa=world.alexa, cache=AnalysisCache()
        )
        train = world.dataset("legTrain") + world.dataset("phishTrain")
        detector = PhishingDetector(extractor, n_estimators=30)
        detector.fit_snapshots(
            [page.snapshot for page in train], train.labels()
        )
        _PIPELINE_CACHE["pipeline"] = KnowYourPhish(
            detector,
            TargetIdentifier(world.search, ocr=SimulatedOcr(error_rate=0.02)),
        )
    return _PIPELINE_CACHE["pipeline"]


def _verdict_key(verdict):
    return (
        verdict.verdict,
        verdict.confidence,
        tuple(verdict.targets),
        verdict.degraded,
        tuple(verdict.degradations),
        repr(verdict.identification),
    )


class TestParallelInvariants:
    """Caching and parallelism must be invisible in the results."""

    _WORD = st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=8)

    @given(st.lists(_WORD, min_size=0, max_size=25), _HOST)
    @settings(max_examples=25, deadline=None)
    def test_cached_extraction_matches_uncached(self, words, host):
        try:
            parse_url(f"http://{host}/")
        except UrlParseError:
            return
        snapshot = PageSnapshot(
            starting_url=f"http://{host}/login",
            landing_url=f"http://{host}/login",
            html="<title>" + " ".join(words[:4]) + "</title><body>"
            + " ".join(words) + "</body>",
            screenshot=Screenshot(rendered_text=" ".join(words)),
        )
        uncached = FeatureExtractor().extract(snapshot)
        caching = FeatureExtractor(cache=AnalysisCache())
        cold = caching.extract(snapshot)          # populates the cache
        warm = caching.extract(snapshot)          # served from the cache
        assert np.array_equal(uncached, cold)
        assert np.array_equal(uncached, warm)
        assert caching.cache.features.hits >= 1

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=4, deadline=None)
    def test_parallel_extract_many_matches_serial(self, tiny_world, seed):
        rng = np.random.default_rng(seed)
        pages = list(tiny_world.dataset("english"))
        rows = rng.choice(len(pages), size=6, replace=False)
        snapshots = [pages[int(i)].snapshot for i in rows]
        extractor = _trained_pipeline(tiny_world).detector.extractor
        serial = extractor.extract_many(snapshots)
        with WorkerPool(workers=2, backend="thread") as pool:
            parallel = extractor.extract_many(snapshots, pool=pool)
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=3, deadline=None)
    def test_parallel_analyze_many_matches_serial(
        self, tiny_world, backend, seed
    ):
        pipeline = _trained_pipeline(tiny_world)
        rng = np.random.default_rng(seed)
        pages = list(tiny_world.dataset("english")) + \
            list(tiny_world.dataset("phishTest"))
        rows = rng.choice(len(pages), size=6, replace=False)
        urls = [pages[int(i)].snapshot.starting_url for i in rows]
        serial = pipeline.analyze_many(urls, Browser(tiny_world.web))
        with WorkerPool(workers=2, backend=backend) as pool:
            fanned = pipeline.analyze_many(
                urls, Browser(tiny_world.web), pool=pool
            )
        assert len(serial.quarantined) == len(fanned.quarantined) == 0
        assert [page.url for page in serial.analyzed] == \
            [page.url for page in fanned.analyzed]
        assert [_verdict_key(page.verdict) for page in serial.analyzed] == \
            [_verdict_key(page.verdict) for page in fanned.analyzed]
