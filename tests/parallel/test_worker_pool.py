"""Tests for the deterministic worker pool."""

import os
import threading

import pytest

from repro.parallel import BACKENDS, MAX_WORKERS, WorkerPool, default_workers


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three")
    return value


class TestConstruction:
    def test_backends_constant(self):
        assert BACKENDS == ("serial", "thread", "process")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            WorkerPool(backend="goroutines")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_default_workers_capped(self):
        assert 1 <= default_workers() <= MAX_WORKERS
        assert WorkerPool(workers=10_000).workers == MAX_WORKERS

    def test_context_manager(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
        # close() is idempotent.
        pool.close()


class TestMapSemantics:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_order_preserved(self, backend):
        items = list(range(50))
        with WorkerPool(workers=4, backend=backend) as pool:
            assert pool.map(_square, items) == [i * i for i in items]

    def test_order_preserved_process(self):
        items = list(range(20))
        with WorkerPool(workers=2, backend="process") as pool:
            assert pool.map(_square, items) == [i * i for i in items]

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_empty_and_singleton(self, backend):
        with WorkerPool(workers=2, backend=backend) as pool:
            assert pool.map(_square, []) == []
            assert pool.map(_square, [7]) == [49]

    def test_exception_propagates(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            with pytest.raises(ValueError, match="three"):
                pool.map(_fail_on_three, [1, 2, 3, 4])

    def test_exception_propagates_serial(self):
        with WorkerPool(backend="serial") as pool:
            with pytest.raises(ValueError, match="three"):
                pool.map(_fail_on_three, [3])

    def test_pool_reusable_across_maps(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            first = pool.map(_square, range(10))
            second = pool.map(_square, range(10))
        assert first == second

    def test_threads_actually_run_concurrently(self):
        barrier = threading.Barrier(2, timeout=5)

        def _rendezvous(_item):
            # Both workers must be inside the function at once to pass.
            barrier.wait()
            return threading.get_ident()

        with WorkerPool(workers=2, backend="thread") as pool:
            idents = pool.map(_rendezvous, [0, 1])
        assert len(set(idents)) == 2

    def test_process_backend_uses_other_processes(self):
        with WorkerPool(workers=2, backend="process") as pool:
            pids = pool.map(_pid, [0, 1, 2, 3])
        assert os.getpid() not in pids

    def test_single_worker_degrades_to_serial(self):
        pool = WorkerPool(workers=1, backend="thread")
        assert pool.map(_square, range(5)) == [0, 1, 4, 9, 16]
        # No executor was ever started.
        assert pool._executor is None
        pool.close()


def _pid(_item):
    return os.getpid()


class _LookupTask:
    """Picklable mapped fn doing one unique-key cache lookup per item."""

    def __init__(self, cache):
        self.cache = cache

    def __call__(self, item):
        import numpy as np
        if self.cache.get_features(f"k{item}") is None:
            self.cache.put_features(f"k{item}", np.full(4, float(item)))
        return item * item


class TestMapObserved:
    """Counter reconciliation: totals are backend-independent."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_counter_totals_equal_across_backends(self, backend):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        cache = AnalysisCache()
        fn = _LookupTask(cache)
        with WorkerPool(workers=2, backend=backend) as pool:
            results = pool.map_observed(
                fn, range(8), probes=[CacheCountsProbe(cache)]
            )
        assert results == [i * i for i in range(8)]
        # one unique key per item: exactly one miss each, any backend
        assert cache.features.misses == 8
        assert cache.features.hits == 0

    def test_thread_backend_does_not_double_count(self):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        cache = AnalysisCache()
        fn = _LookupTask(cache)
        with WorkerPool(workers=2, backend="thread") as pool:
            pool.map_observed(fn, range(6), probes=[CacheCountsProbe(cache)])
        # fn already mutated the shared cache; deltas must be discarded
        assert cache.features.misses == 6

    def test_process_worker_counts_are_recovered(self):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        cache = AnalysisCache()
        fn = _LookupTask(cache)
        with WorkerPool(workers=2, backend="process") as pool:
            pool.map(fn, range(6))
            # plain map: worker-side counter growth is silently lost
            assert cache.features.misses == 0
            pool.map_observed(fn, range(6), probes=[CacheCountsProbe(cache)])
        # observed map ships per-item deltas back from the workers
        assert cache.features.misses == 6

    def test_no_probes_degrades_to_map(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map_observed(_square, range(5)) == \
                [0, 1, 4, 9, 16]

    def test_empty_items(self):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        probe = CacheCountsProbe(AnalysisCache())
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map_observed(_square, [], probes=[probe]) == []


def _square_chunk(chunk):
    return [item * item for item in chunk]


class _ChunkLookupTask(_LookupTask):
    """Chunked variant: one unique-key lookup per item in the chunk."""

    def __call__(self, chunk):
        return [_LookupTask.__call__(self, item) for item in chunk]


class TestChunkedDispatch:
    """Columnar dispatch: chunking must be invisible in the results."""

    def test_chunk_slices_invariants(self):
        from hypothesis import given
        from hypothesis import strategies as st

        from repro.parallel import chunk_slices

        @given(st.integers(0, 500), st.integers(1, 32))
        def check(n_items, n_chunks):
            slices = chunk_slices(n_items, n_chunks)
            covered = [i for part in slices for i in range(n_items)[part]]
            assert covered == list(range(n_items))
            sizes = [part.stop - part.start for part in slices]
            assert all(size > 0 for size in sizes)
            assert not sizes or max(sizes) - min(sizes) <= 1
            assert len(slices) == (min(n_chunks, n_items) if n_items else 0)

        check()

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_map_chunks_order_preserved(self, backend):
        items = list(range(37))
        with WorkerPool(workers=4, backend=backend) as pool:
            assert pool.map_chunks(_square_chunk, items) == \
                [i * i for i in items]

    def test_map_chunks_order_preserved_process(self):
        items = list(range(23))
        with WorkerPool(workers=2, backend="process") as pool:
            assert pool.map_chunks(_square_chunk, items) == \
                [i * i for i in items]

    def test_serial_backend_runs_one_chunk(self):
        calls = []

        def observe(chunk):
            calls.append(len(chunk))
            return _square_chunk(chunk)

        with WorkerPool(backend="serial") as pool:
            pool.map_chunks(observe, range(9))
        assert calls == [9]

    def test_empty_and_singleton(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map_chunks(_square_chunk, []) == []
            assert pool.map_chunks(_square_chunk, [6]) == [36]

    def test_columnar_chunks_backend_aware(self):
        # Process workers get one chunk each; the GIL-bound thread and
        # serial backends run a single chunk (fan-out only adds
        # dispatch and per-chunk fixed costs there).
        with WorkerPool(workers=4, backend="process") as pool:
            assert pool.columnar_chunks(100) == 4
            assert pool.columnar_chunks(3) == 3
            assert pool.columnar_chunks(0) == 1
        with WorkerPool(workers=4, backend="thread") as pool:
            assert pool.columnar_chunks(100) == 1
        with WorkerPool(backend="serial") as pool:
            assert pool.columnar_chunks(100) == 1

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_observed_chunks_counter_totals_backend_independent(
        self, backend
    ):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        cache = AnalysisCache()
        fn = _ChunkLookupTask(cache)
        with WorkerPool(workers=2, backend=backend) as pool:
            results = pool.map_observed_chunks(
                fn, range(10), probes=[CacheCountsProbe(cache)]
            )
        assert results == [i * i for i in range(10)]
        # one unique key per item: chunking must not lose or double
        # count a single probe delta, whatever the backend
        assert cache.features.misses == 10
        assert cache.features.hits == 0
