"""Tests for the deterministic worker pool."""

import os
import threading

import pytest

from repro.parallel import BACKENDS, MAX_WORKERS, WorkerPool, default_workers


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three")
    return value


class TestConstruction:
    def test_backends_constant(self):
        assert BACKENDS == ("serial", "thread", "process")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            WorkerPool(backend="goroutines")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_default_workers_capped(self):
        assert 1 <= default_workers() <= MAX_WORKERS
        assert WorkerPool(workers=10_000).workers == MAX_WORKERS

    def test_context_manager(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
        # close() is idempotent.
        pool.close()


class TestMapSemantics:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_order_preserved(self, backend):
        items = list(range(50))
        with WorkerPool(workers=4, backend=backend) as pool:
            assert pool.map(_square, items) == [i * i for i in items]

    def test_order_preserved_process(self):
        items = list(range(20))
        with WorkerPool(workers=2, backend="process") as pool:
            assert pool.map(_square, items) == [i * i for i in items]

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_empty_and_singleton(self, backend):
        with WorkerPool(workers=2, backend=backend) as pool:
            assert pool.map(_square, []) == []
            assert pool.map(_square, [7]) == [49]

    def test_exception_propagates(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            with pytest.raises(ValueError, match="three"):
                pool.map(_fail_on_three, [1, 2, 3, 4])

    def test_exception_propagates_serial(self):
        with WorkerPool(backend="serial") as pool:
            with pytest.raises(ValueError, match="three"):
                pool.map(_fail_on_three, [3])

    def test_pool_reusable_across_maps(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            first = pool.map(_square, range(10))
            second = pool.map(_square, range(10))
        assert first == second

    def test_threads_actually_run_concurrently(self):
        barrier = threading.Barrier(2, timeout=5)

        def _rendezvous(_item):
            # Both workers must be inside the function at once to pass.
            barrier.wait()
            return threading.get_ident()

        with WorkerPool(workers=2, backend="thread") as pool:
            idents = pool.map(_rendezvous, [0, 1])
        assert len(set(idents)) == 2

    def test_process_backend_uses_other_processes(self):
        with WorkerPool(workers=2, backend="process") as pool:
            pids = pool.map(_pid, [0, 1, 2, 3])
        assert os.getpid() not in pids

    def test_single_worker_degrades_to_serial(self):
        pool = WorkerPool(workers=1, backend="thread")
        assert pool.map(_square, range(5)) == [0, 1, 4, 9, 16]
        # No executor was ever started.
        assert pool._executor is None
        pool.close()


def _pid(_item):
    return os.getpid()
