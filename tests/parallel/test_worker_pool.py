"""Tests for the deterministic worker pool."""

import os
import threading

import pytest

from repro.parallel import BACKENDS, MAX_WORKERS, WorkerPool, default_workers


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three")
    return value


class TestConstruction:
    def test_backends_constant(self):
        assert BACKENDS == ("serial", "thread", "process")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            WorkerPool(backend="goroutines")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_default_workers_capped(self):
        assert 1 <= default_workers() <= MAX_WORKERS
        assert WorkerPool(workers=10_000).workers == MAX_WORKERS

    def test_context_manager(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
        # close() is idempotent.
        pool.close()


class TestMapSemantics:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_order_preserved(self, backend):
        items = list(range(50))
        with WorkerPool(workers=4, backend=backend) as pool:
            assert pool.map(_square, items) == [i * i for i in items]

    def test_order_preserved_process(self):
        items = list(range(20))
        with WorkerPool(workers=2, backend="process") as pool:
            assert pool.map(_square, items) == [i * i for i in items]

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_empty_and_singleton(self, backend):
        with WorkerPool(workers=2, backend=backend) as pool:
            assert pool.map(_square, []) == []
            assert pool.map(_square, [7]) == [49]

    def test_exception_propagates(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            with pytest.raises(ValueError, match="three"):
                pool.map(_fail_on_three, [1, 2, 3, 4])

    def test_exception_propagates_serial(self):
        with WorkerPool(backend="serial") as pool:
            with pytest.raises(ValueError, match="three"):
                pool.map(_fail_on_three, [3])

    def test_pool_reusable_across_maps(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            first = pool.map(_square, range(10))
            second = pool.map(_square, range(10))
        assert first == second

    def test_threads_actually_run_concurrently(self):
        barrier = threading.Barrier(2, timeout=5)

        def _rendezvous(_item):
            # Both workers must be inside the function at once to pass.
            barrier.wait()
            return threading.get_ident()

        with WorkerPool(workers=2, backend="thread") as pool:
            idents = pool.map(_rendezvous, [0, 1])
        assert len(set(idents)) == 2

    def test_process_backend_uses_other_processes(self):
        with WorkerPool(workers=2, backend="process") as pool:
            pids = pool.map(_pid, [0, 1, 2, 3])
        assert os.getpid() not in pids

    def test_single_worker_degrades_to_serial(self):
        pool = WorkerPool(workers=1, backend="thread")
        assert pool.map(_square, range(5)) == [0, 1, 4, 9, 16]
        # No executor was ever started.
        assert pool._executor is None
        pool.close()


def _pid(_item):
    return os.getpid()


class _LookupTask:
    """Picklable mapped fn doing one unique-key cache lookup per item."""

    def __init__(self, cache):
        self.cache = cache

    def __call__(self, item):
        import numpy as np
        if self.cache.get_features(f"k{item}") is None:
            self.cache.put_features(f"k{item}", np.full(4, float(item)))
        return item * item


class TestMapObserved:
    """Counter reconciliation: totals are backend-independent."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_counter_totals_equal_across_backends(self, backend):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        cache = AnalysisCache()
        fn = _LookupTask(cache)
        with WorkerPool(workers=2, backend=backend) as pool:
            results = pool.map_observed(
                fn, range(8), probes=[CacheCountsProbe(cache)]
            )
        assert results == [i * i for i in range(8)]
        # one unique key per item: exactly one miss each, any backend
        assert cache.features.misses == 8
        assert cache.features.hits == 0

    def test_thread_backend_does_not_double_count(self):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        cache = AnalysisCache()
        fn = _LookupTask(cache)
        with WorkerPool(workers=2, backend="thread") as pool:
            pool.map_observed(fn, range(6), probes=[CacheCountsProbe(cache)])
        # fn already mutated the shared cache; deltas must be discarded
        assert cache.features.misses == 6

    def test_process_worker_counts_are_recovered(self):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        cache = AnalysisCache()
        fn = _LookupTask(cache)
        with WorkerPool(workers=2, backend="process") as pool:
            pool.map(fn, range(6))
            # plain map: worker-side counter growth is silently lost
            assert cache.features.misses == 0
            pool.map_observed(fn, range(6), probes=[CacheCountsProbe(cache)])
        # observed map ships per-item deltas back from the workers
        assert cache.features.misses == 6

    def test_no_probes_degrades_to_map(self):
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map_observed(_square, range(5)) == \
                [0, 1, 4, 9, 16]

    def test_empty_items(self):
        from repro.parallel import AnalysisCache, CacheCountsProbe

        probe = CacheCountsProbe(AnalysisCache())
        with WorkerPool(workers=2, backend="thread") as pool:
            assert pool.map_observed(_square, [], probes=[probe]) == []
