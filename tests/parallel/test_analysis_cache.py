"""Tests for the content-keyed analysis caches."""

import pickle

import numpy as np
import pytest

from repro.parallel import AnalysisCache, LruCache, snapshot_fingerprint
from repro.web.page import PageSnapshot, Screenshot


def _snapshot(html="<body>hello world</body>", url="http://a.example.com/"):
    return PageSnapshot(
        starting_url=url, landing_url=url, html=html,
        screenshot=Screenshot(rendered_text="hello"),
    )


class TestFingerprint:
    def test_stable_across_instances(self):
        assert snapshot_fingerprint(_snapshot()) == \
            snapshot_fingerprint(_snapshot())

    def test_differs_on_any_content_change(self):
        base = snapshot_fingerprint(_snapshot())
        assert snapshot_fingerprint(_snapshot(html="<body>bye</body>")) != base
        assert snapshot_fingerprint(
            _snapshot(url="http://b.example.com/")
        ) != base

    def test_sensitive_to_screenshot(self):
        plain = _snapshot()
        with_image = _snapshot()
        with_image.screenshot = Screenshot(
            rendered_text="hello", image_texts=("login now",)
        )
        assert snapshot_fingerprint(plain) != snapshot_fingerprint(with_image)

    def test_survives_serialisation_round_trip(self):
        snapshot = _snapshot()
        clone = PageSnapshot.from_dict(snapshot.to_dict())
        assert snapshot_fingerprint(snapshot) == snapshot_fingerprint(clone)


class TestLruCache:
    def test_get_put_and_counters(self):
        cache = LruCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_eviction_is_lru(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a" -> "b" is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_overwrite_refreshes(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # re-put refreshes recency
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_clear_keeps_counters(self):
        cache = LruCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_rejects_invalid_bound(self):
        with pytest.raises(ValueError):
            LruCache(max_entries=0)

    def test_picklable_despite_lock(self):
        cache = LruCache(max_entries=8)
        cache.put("a", np.arange(3))
        clone = pickle.loads(pickle.dumps(cache))
        assert np.array_equal(clone.get("a"), np.arange(3))
        clone.put("b", 2)  # the restored lock works


class TestAnalysisCache:
    def test_feature_hits_are_copies(self):
        cache = AnalysisCache()
        vector = np.ones(212)
        cache.put_features("k", vector)
        vector[0] = 99.0            # mutating the original is safe
        hit = cache.get_features("k")
        assert hit[0] == 1.0
        hit[1] = 42.0               # and mutating the hit is safe too
        assert cache.get_features("k")[1] == 1.0

    def test_pair_matrix_round_trip(self):
        cache = AnalysisCache()
        assert cache.get_pair_matrix(("hellinger", "k")) is None
        cache.put_pair_matrix(("hellinger", "k"), np.full(66, 0.5))
        assert np.array_equal(
            cache.get_pair_matrix(("hellinger", "k")), np.full(66, 0.5)
        )

    def test_stats_shape(self):
        cache = AnalysisCache()
        cache.put_features("k", np.zeros(212))
        cache.get_features("k")
        cache.get_features("missing")
        stats = cache.stats()
        assert stats["features_entries"] == 1
        assert stats["features_hits"] == 1
        assert stats["features_misses"] == 1
        assert stats["features_hit_rate"] == 0.5
        for store in ("pair_matrices", "distributions"):
            assert stats[f"{store}_hits"] == 0

    def test_clear_empties_all_stores(self):
        cache = AnalysisCache()
        cache.put_features("k", np.zeros(212))
        cache.put_pair_matrix("k", np.zeros(66))
        cache.distributions.put("k", "value")
        cache.clear()
        assert cache.stats()["features_entries"] == 0
        assert cache.distributions.get("k") is None


class TestEvictionCounters:
    def test_overfill_counts_evictions(self):
        cache = LruCache(max_entries=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.evictions == 7
        assert cache.counts() == {"hits": 0, "misses": 0, "evictions": 7}

    def test_replacing_a_key_is_not_an_eviction(self):
        cache = LruCache(max_entries=2)
        cache.put("a", 1)
        cache.put("a", 2)
        cache.put("b", 1)
        assert cache.evictions == 0

    def test_analysis_cache_stats_report_evictions(self):
        cache = AnalysisCache(max_entries=2)
        for i in range(5):
            cache.put_features(f"k{i}", np.zeros(212))
        stats = cache.stats()
        assert stats["features_evictions"] == 3
        assert stats["features_entries"] == 2
        assert stats["pair_matrices_evictions"] == 0


class TestMergeCounts:
    def test_lru_merge_from_cache_and_dict(self):
        ours = LruCache()
        ours.put("a", 1)
        ours.get("a")
        theirs = LruCache(max_entries=1)
        theirs.get("missing")
        theirs.put("x", 1)
        theirs.put("y", 1)          # evicts x
        ours.merge_counts(theirs)
        assert ours.counts() == {"hits": 1, "misses": 1, "evictions": 1}
        ours.merge_counts({"hits": 2})
        assert ours.hits == 3

    def test_analysis_cache_merge_counts(self):
        ours = AnalysisCache()
        theirs = AnalysisCache()
        theirs.get_features("missing")
        theirs.put_features("k", np.zeros(212))
        theirs.get_features("k")
        theirs.distributions.get("nope")
        ours.merge_counts(theirs)
        assert ours.features.hits == 1
        assert ours.features.misses == 1
        assert ours.distributions.misses == 1
        # merging a partial delta dict only touches the named stores
        ours.merge_counts({"features": {"hits": 4}})
        assert ours.features.hits == 5

    def test_fill_metrics_bridges_all_stores(self):
        from repro.obs import MetricsRegistry

        cache = AnalysisCache(max_entries=1)
        cache.get_features("missing")
        cache.put_features("a", np.zeros(212))
        cache.get_features("a")
        cache.put_features("b", np.zeros(212))   # evicts a
        metrics = MetricsRegistry()
        cache.fill_metrics(metrics)
        assert metrics.counter_value(
            "cache_hits_total", store="features") == 1.0
        assert metrics.counter_value(
            "cache_misses_total", store="features") == 1.0
        assert metrics.counter_value(
            "cache_evictions_total", store="features") == 1.0
        assert metrics.counter_value(
            "cache_hits_total", store="distributions") == 0.0


class TestCacheCountsProbe:
    def test_snapshot_delta_merge_round_trip(self):
        from repro.parallel import CacheCountsProbe

        cache = AnalysisCache()
        probe = CacheCountsProbe(cache)
        before = probe.snapshot()
        cache.get_features("missing")
        cache.put_features("k", np.zeros(212))
        cache.get_features("k")
        delta = probe.delta(before)
        assert delta["features"] == {"hits": 1, "misses": 1, "evictions": 0}

        other = AnalysisCache()
        CacheCountsProbe(other).merge(delta)
        assert other.features.hits == 1
        assert other.features.misses == 1
