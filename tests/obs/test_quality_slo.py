"""Unit tests for the multi-window burn-rate SLO engine."""

import pytest

from repro.obs.quality.slo import BurnRateWindow, SloEngine, SloObjective


def _objective(**overrides):
    base = dict(name="degraded", kind="degraded_rate", budget=0.1)
    base.update(overrides)
    return SloObjective(**base)


WINDOW = BurnRateWindow("fast", long_s=10.0, short_s=2.0, factor=2.0)


class TestSloObjective:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            _objective(kind="availability")

    def test_rejects_out_of_range_budget(self):
        with pytest.raises(ValueError):
            _objective(budget=0.0)
        with pytest.raises(ValueError):
            _objective(budget=1.0)

    def test_latency_requires_threshold(self):
        with pytest.raises(ValueError):
            SloObjective(name="lat", kind="latency", budget=0.05)
        # With a threshold it constructs fine.
        SloObjective(name="lat", kind="latency", budget=0.05, threshold=0.01)

    def test_as_dict_is_json_safe(self):
        payload = _objective(description="verdict quality").as_dict()
        assert payload["name"] == "degraded"
        assert payload["kind"] == "degraded_rate"
        assert payload["budget"] == 0.1
        assert payload["description"] == "verdict quality"


class TestBurnRateWindow:
    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError):
            BurnRateWindow("bad", long_s=1.0, short_s=2.0, factor=2.0)
        with pytest.raises(ValueError):
            BurnRateWindow("bad", long_s=1.0, short_s=0.0, factor=2.0)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            BurnRateWindow("bad", long_s=2.0, short_s=1.0, factor=0.0)


class TestSloEngine:
    def test_rejects_empty_configuration(self):
        with pytest.raises(ValueError):
            SloEngine(())
        with pytest.raises(ValueError):
            SloEngine((_objective(),), windows=())

    def test_rejects_duplicate_objective_names(self):
        with pytest.raises(ValueError):
            SloEngine((_objective(), _objective(budget=0.2)))

    def test_default_resolution_tracks_shortest_window(self):
        engine = SloEngine((_objective(),), windows=(WINDOW,))
        assert engine.resolution == pytest.approx(WINDOW.short_s / 5.0)

    def test_burn_rate_idle_is_zero(self):
        engine = SloEngine((_objective(),), windows=(WINDOW,))
        assert engine.burn_rate(engine.objectives[0], 10.0, now=5.0) == 0.0

    def test_burn_rate_is_bad_fraction_over_budget(self):
        engine = SloEngine((_objective(budget=0.1),), windows=(WINDOW,))
        for i in range(10):
            engine.record("degraded", bad=(i < 3), now=float(i) * 0.1)
        # 3 bad of 10 at budget 0.1 -> burn rate 3.0.
        assert engine.burn_rate(engine.objectives[0], 10.0, now=1.0) == (
            pytest.approx(3.0)
        )

    def test_old_events_age_out_of_the_window(self):
        engine = SloEngine((_objective(),), windows=(WINDOW,))
        engine.record("degraded", bad=True, now=0.0)
        engine.record("degraded", bad=False, now=11.0)
        # The bad event at t=0 is outside the trailing 2 s short window.
        assert engine.burn_rate(engine.objectives[0], 2.0, now=11.0) == 0.0

    def test_fires_only_when_both_windows_exceed_factor(self):
        engine = SloEngine((_objective(budget=0.1),), windows=(WINDOW,))
        # Long window full of bad events, but the short window has
        # recovered: no alert.
        for i in range(8):
            engine.record("degraded", bad=True, now=float(i))
        engine.record("degraded", bad=False, now=9.0)
        engine.record("degraded", bad=False, now=9.5)
        assert engine.evaluate(now=9.9) == []

    def test_firing_and_resolved_transitions(self):
        engine = SloEngine((_objective(budget=0.1),), windows=(WINDOW,))
        for i in range(10):
            engine.record("degraded", bad=True, now=float(i))
        fired = engine.evaluate(now=9.9)
        assert [t["state"] for t in fired] == ["firing"]
        assert fired[0]["kind"] == "slo"
        assert fired[0]["objective"] == "degraded"
        assert fired[0]["window"] == "fast"
        # Steady firing state emits nothing on re-evaluation.
        assert engine.evaluate(now=9.95) == []
        # Good traffic drains the short window; the alert resolves.
        for i in range(20):
            engine.record("degraded", bad=False, now=10.0 + i * 0.1)
        resolved = engine.evaluate(now=12.5)
        assert [t["state"] for t in resolved] == ["resolved"]

    def test_alert_log_replays_deterministically(self):
        def run():
            engine = SloEngine((_objective(budget=0.1),), windows=(WINDOW,))
            log = []
            for i in range(30):
                engine.record("degraded", bad=(i % 3 == 0), now=i * 0.5)
                log.extend(engine.evaluate(now=i * 0.5))
            return log

        assert run() == run()

    def test_state_exposes_burn_rows(self):
        engine = SloEngine((_objective(),), windows=(WINDOW,))
        engine.record("degraded", bad=True, now=1.0)
        state = engine.state(now=1.0)
        assert state["objectives"][0]["name"] == "degraded"
        (row,) = state["burn"]
        assert row["objective"] == "degraded"
        assert row["window"] == "fast"
        assert row["events_long"] == 1
        assert row["bad_long"] == 1
        assert row["active"] is False
