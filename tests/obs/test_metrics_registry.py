"""MetricsRegistry invariants: labels, snapshots, commutative merges."""

import threading

from repro.obs import DEFAULT_BUCKETS, NULL_METRICS, MetricsRegistry, NullMetrics


class TestCounters:
    def test_inc_defaults_to_one_and_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("verdicts_total", verdict="phish")
        metrics.inc("verdicts_total", verdict="phish")
        metrics.inc("verdicts_total", 3.0, verdict="legitimate")
        assert metrics.counter_value("verdicts_total", verdict="phish") == 2.0
        assert metrics.counter_total("verdicts_total") == 5.0

    def test_label_named_name_does_not_collide(self):
        # inc/set_gauge take the metric name positionally-only, so a
        # label literally called ``name`` (the breaker uses one) works.
        metrics = MetricsRegistry()
        metrics.inc("breaker_transitions_total", name="search", to="open")
        metrics.set_gauge("breaker_state", 2.0, name="search")
        assert metrics.counter_value(
            "breaker_transitions_total", name="search", to="open"
        ) == 1.0
        assert metrics.gauge_value("breaker_state", name="search") == 2.0

    def test_unset_series_read_as_zero(self):
        metrics = MetricsRegistry()
        assert metrics.counter_value("nope") == 0.0
        assert metrics.counter_total("nope") == 0.0
        assert metrics.gauge_value("nope") is None


class TestGauges:
    def test_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("breaker_state", 0.0, name="search")
        metrics.set_gauge("breaker_state", 2.0, name="search")
        assert metrics.gauge_value("breaker_state", name="search") == 2.0


class TestHistograms:
    def test_observations_land_in_buckets(self):
        metrics = MetricsRegistry()
        metrics.observe("stage_seconds", 0.0005, buckets=(0.001, 0.1))
        metrics.observe("stage_seconds", 0.05, buckets=(0.001, 0.1))
        metrics.observe("stage_seconds", 7.0, buckets=(0.001, 0.1))
        entry = metrics.as_dict()["histograms"]["stage_seconds"][0]
        assert entry["buckets"] == [0.001, 0.1]
        assert entry["counts"] == [1, 1, 1]  # last slot = +Inf
        assert entry["count"] == 3
        assert abs(entry["sum"] - 7.0505) < 1e-9

    def test_first_observation_fixes_bounds(self):
        metrics = MetricsRegistry()
        metrics.observe("stage_seconds", 0.5, buckets=(1.0,))
        metrics.observe("stage_seconds", 0.5, buckets=(0.1, 0.2))
        entry = metrics.as_dict()["histograms"]["stage_seconds"][0]
        assert entry["buckets"] == [1.0]
        assert entry["counts"] == [2, 0]

    def test_default_buckets_used_when_unspecified(self):
        metrics = MetricsRegistry()
        metrics.observe("stage_seconds", 0.02)
        entry = metrics.as_dict()["histograms"]["stage_seconds"][0]
        assert entry["buckets"] == list(DEFAULT_BUCKETS)


class TestSnapshotAndMerge:
    def test_as_dict_is_sorted_and_stable(self):
        one = MetricsRegistry()
        one.inc("b_total", z="2")
        one.inc("b_total", a="1")
        one.inc("a_total")
        two = MetricsRegistry()
        two.inc("a_total")
        two.inc("b_total", a="1")
        two.inc("b_total", z="2")
        assert one.as_dict() == two.as_dict()
        assert list(one.as_dict()["counters"]) == ["a_total", "b_total"]

    def test_merge_adds_counters_and_histograms(self):
        base = MetricsRegistry()
        base.inc("cache_hits_total", 2, store="features")
        base.observe("stage_seconds", 0.3, buckets=(1.0,))
        delta = MetricsRegistry()
        delta.inc("cache_hits_total", 3, store="features")
        delta.observe("stage_seconds", 0.4, buckets=(1.0,))
        base.merge(delta.as_dict())
        assert base.counter_value("cache_hits_total", store="features") == 5.0
        entry = base.as_dict()["histograms"]["stage_seconds"][0]
        assert entry["count"] == 2
        assert abs(entry["sum"] - 0.7) < 1e-9

    def test_merge_is_commutative_for_counters(self):
        parts = []
        for value in (1, 2, 3):
            part = MetricsRegistry()
            part.inc("verdicts_total", value, verdict="phish")
            part.inc("browse_loads_total")
            parts.append(part.as_dict())
        forward = MetricsRegistry()
        for snapshot in parts:
            forward.merge(snapshot)
        backward = MetricsRegistry()
        for snapshot in reversed(parts):
            backward.merge(snapshot)
        assert forward.as_dict() == backward.as_dict()

    def test_merge_gauge_last_write_wins(self):
        base = MetricsRegistry()
        base.set_gauge("breaker_state", 0.0, name="search")
        delta = MetricsRegistry()
        delta.set_gauge("breaker_state", 2.0, name="search")
        base.merge(delta.as_dict())
        assert base.gauge_value("breaker_state", name="search") == 2.0

    def test_clear_empties_everything(self):
        metrics = MetricsRegistry()
        metrics.inc("a_total")
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 0.1)
        metrics.clear()
        assert metrics.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestThreadSafety:
    def test_concurrent_incs_do_not_lose_updates(self):
        metrics = MetricsRegistry()

        def work():
            for _ in range(500):
                metrics.inc("hits_total")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter_value("hits_total") == 2000.0


class TestNullMetrics:
    def test_null_is_disabled_and_records_nothing(self):
        null = NullMetrics()
        assert null.enabled is False
        assert MetricsRegistry().enabled is True
        null.inc("a_total", 5, verdict="phish")
        null.set_gauge("g", 1.0)
        null.observe("h", 0.1)
        null.merge({"counters": {"a_total": [{"labels": {}, "value": 9}]}})
        assert null.counter_value("a_total", verdict="phish") == 0.0
        assert null.counter_total("a_total") == 0.0
        assert null.gauge_value("g") is None
        assert null.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert list(NULL_METRICS.iter_counters()) == []
