"""Unit tests for reference profiles and the streaming drift monitor."""

import random

import pytest

from repro.obs.quality.drift import DriftMonitor, DriftThresholds
from repro.obs.quality.reference import SCORE_SIGNAL, ReferenceProfile


def _reference(n=200, seed=7):
    rng = random.Random(seed)
    scores = [rng.random() for _ in range(n)]
    groups = {
        "f1": [rng.uniform(0.0, 2.0) for _ in range(n)],
        "f2": [rng.uniform(-1.0, 1.0) for _ in range(n)],
    }
    return ReferenceProfile.from_training(scores, groups, depth=8)


class TestReferenceProfile:
    def test_signal_order_is_score_first(self):
        reference = _reference()
        assert reference.signals == [SCORE_SIGNAL, "f1", "f2"]
        assert reference.sketch_for(SCORE_SIGNAL) is reference.score
        assert reference.sketch_for("f1") is reference.groups["f1"]

    def test_score_domain_is_pinned_to_unit_interval(self):
        reference = _reference()
        assert reference.score.lo == 0.0
        assert reference.score.hi == 1.0

    def test_group_domains_are_padded_past_observed_range(self):
        reference = ReferenceProfile.from_training(
            [0.5], {"f1": [1.0, 3.0]}, depth=4, margin=0.25
        )
        sketch = reference.groups["f1"]
        assert sketch.lo == pytest.approx(0.5)
        assert sketch.hi == pytest.approx(3.5)

    def test_constant_column_gets_symmetric_pad(self):
        reference = ReferenceProfile.from_training(
            [0.5], {"f1": [2.0, 2.0]}, depth=4
        )
        sketch = reference.groups["f1"]
        assert sketch.lo == pytest.approx(1.5)
        assert sketch.hi == pytest.approx(2.5)

    def test_n_pages_counts_scores(self):
        assert _reference(n=37).n_pages == 37

    def test_json_round_trip(self, tmp_path):
        reference = _reference()
        path = reference.write(tmp_path / "reference.json")
        loaded = ReferenceProfile.read(path)
        assert loaded.n_pages == reference.n_pages
        assert loaded.score == reference.score
        assert loaded.groups == reference.groups
        # write is deterministic byte for byte.
        again = tmp_path / "again.json"
        loaded.write(again)
        assert again.read_bytes() == path.read_bytes()


class TestDriftMonitor:
    def test_windows_inherit_reference_bin_layout(self):
        reference = _reference()
        monitor = DriftMonitor(reference)
        assert monitor.signals == reference.signals
        status = monitor.status("f1")
        assert status.count == 0
        assert status.drifted is False

    def test_empty_window_is_maximally_distant_but_not_drifted(self):
        monitor = DriftMonitor(_reference())
        status = monitor.status(SCORE_SIGNAL)
        # One-empty-side convention: Hellinger 1.0 — but min_count
        # gates the drifted verdict.
        assert status.hellinger == 1.0
        assert status.drifted is False

    def test_min_count_gates_drift_verdict(self):
        thresholds = DriftThresholds(hellinger=0.3, psi=0.5, min_count=50)
        monitor = DriftMonitor(
            _reference(), thresholds, chunk_size=20, chunks=4
        )
        # 30 wildly shifted scores: divergence is over threshold but
        # the window is under min_count.
        for _ in range(30):
            monitor.observe_score(0.999)
        status = monitor.status(SCORE_SIGNAL)
        assert status.hellinger >= thresholds.hellinger
        assert status.drifted is False
        for _ in range(30):
            monitor.observe_score(0.999)
        assert monitor.status(SCORE_SIGNAL).drifted is True
        assert SCORE_SIGNAL in monitor.drifted_signals()

    def test_matching_stream_does_not_drift(self):
        rng = random.Random(11)
        monitor = DriftMonitor(_reference(), chunk_size=20, chunks=4)
        for _ in range(120):
            monitor.observe_score(rng.random())
            monitor.observe_groups(
                {"f1": rng.uniform(0.0, 2.0), "f2": rng.uniform(-1.0, 1.0)}
            )
        assert monitor.drifted_signals() == []

    def test_observe_groups_ignores_unknown_signals(self):
        monitor = DriftMonitor(_reference())
        monitor.observe_groups({"f9": 1.0, "score": 0.5})
        # Neither an unknown group nor the reserved score name advances
        # any group window, and the score window only moves via
        # observe_score.
        assert all(status.count == 0 for status in monitor.statuses())

    def test_window_slides_past_a_drift_burst(self):
        thresholds = DriftThresholds(hellinger=0.3, psi=0.5, min_count=60)
        monitor = DriftMonitor(
            _reference(seed=3), thresholds, chunk_size=20, chunks=4
        )
        for _ in range(80):
            monitor.observe_score(0.999)
        assert monitor.status(SCORE_SIGNAL).drifted is True
        # Healthy traffic pushes the burst out of the ring.
        rng = random.Random(5)
        for _ in range(80):
            monitor.observe_score(rng.random())
        assert monitor.status(SCORE_SIGNAL).drifted is False

    def test_as_dict_carries_thresholds_and_statuses(self):
        monitor = DriftMonitor(_reference(), DriftThresholds(0.4, 1.5, 10))
        payload = monitor.as_dict()
        assert payload["thresholds"] == {
            "hellinger": 0.4,
            "psi": 1.5,
            "min_count": 10,
        }
        assert payload["reference_pages"] == 200
        assert [row["signal"] for row in payload["signals"]] == [
            SCORE_SIGNAL,
            "f1",
            "f2",
        ]

    def test_default_thresholds_are_recalibrated(self):
        thresholds = DriftThresholds()
        assert thresholds.hellinger == 0.45
        assert thresholds.psi == 2.0
        assert thresholds.min_count == 64
