"""Unit tests for the shared quantile estimators (repro.obs.quantiles)."""

import pytest

from repro.obs.quantiles import histogram_quantile, nearest_rank


class TestNearestRank:
    def test_empty_population_reads_zero(self):
        assert nearest_rank([], 0.5) == 0.0

    def test_single_element(self):
        assert nearest_rank([3.0], 0.5) == 3.0
        assert nearest_rank([3.0], 0.99) == 3.0

    def test_nearest_rank_convention(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(ordered, 0.25) == 1.0
        assert nearest_rank(ordered, 0.50) == 2.0
        assert nearest_rank(ordered, 0.75) == 3.0
        assert nearest_rank(ordered, 1.00) == 4.0

    def test_high_quantile_returns_max(self):
        assert nearest_rank([1.0, 2.0, 9.0], 0.99) == 9.0

    def test_rejects_out_of_range_quantiles(self):
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 1.5)

    def test_matches_serving_report_percentile(self):
        """The serving report delegates here; same estimator by construction."""
        from repro.serve.report import ServingReport
        from repro.serve.request import ServeResponse

        responses = [
            ServeResponse(
                request_id=i, url=f"http://u{i}/", outcome="served",
                finished=1.0, latency=0.1 * (i + 1),
            )
            for i in range(5)
        ]
        report = ServingReport(responses=responses)
        assert report.latency_percentile(0.5) == nearest_rank(
            sorted(r.latency for r in responses), 0.5
        )


class TestHistogramQuantile:
    def test_empty_histogram_reads_zero(self):
        assert histogram_quantile([0.1, 1.0], [0, 0], 0.5) == 0.0

    def test_single_bucket_interpolates(self):
        # 10 samples in [0, 1): p50 interpolates to mid-bucket.
        value = histogram_quantile([1.0], [10], 0.5)
        assert 0.0 < value <= 1.0
        assert value == pytest.approx(0.5)

    def test_interpolation_across_buckets(self):
        # bounds [1, 2], counts [5, 5]: p75 lands halfway into bucket 2.
        value = histogram_quantile([1.0, 2.0], [5, 5], 0.75)
        assert value == pytest.approx(1.5)

    def test_overflow_mass_returns_largest_finite_bound(self):
        # counts has the +Inf slot: all mass above the last bound.
        assert histogram_quantile([1.0, 2.0], [0, 0, 7], 0.99) == 2.0

    def test_rejects_out_of_range_quantiles(self):
        with pytest.raises(ValueError):
            histogram_quantile([1.0], [1], 0.0)

    def test_lo_offset_shifts_first_bucket(self):
        value = histogram_quantile([2.0], [10], 0.5, lo=1.0)
        assert value == pytest.approx(1.5)
