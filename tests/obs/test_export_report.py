"""Exporter round-trips and artifact-only run reports."""

from repro.obs import (
    MetricsRegistry,
    RunReport,
    Tracer,
    metrics_to_jsonl,
    metrics_to_prometheus,
    parse_prometheus,
    read_spans_jsonl,
    spans_to_jsonl,
    write_metrics_prometheus,
    write_spans_jsonl,
)
from repro.resilience import ManualClock


def _sample_tracer() -> Tracer:
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    with tracer.span("analyze", url="http://a/") as span:
        clock.advance(0.5)
        with tracer.span("extract"):
            clock.advance(0.25)
        span.set(verdict="phish")
    return tracer


def _sample_metrics() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.inc("verdicts_total", 3, verdict="phish")
    metrics.inc("verdicts_total", 5, verdict="legitimate")
    metrics.inc("cache_hits_total", 7, store="features")
    metrics.inc("cache_misses_total", 2, store="features")
    metrics.set_gauge("breaker_state", 2.0, name="search")
    metrics.observe("stage_seconds", 0.02, buckets=(0.01, 0.1))
    metrics.observe("stage_seconds", 0.5, buckets=(0.01, 0.1))
    return metrics


class TestSpansJsonl:
    def test_one_sorted_json_object_per_span(self):
        text = spans_to_jsonl(_sample_tracer())
        lines = text.strip().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("{") for line in lines)

    def test_round_trip_through_a_file(self, tmp_path):
        tracer = _sample_tracer()
        path = write_spans_jsonl(tracer, tmp_path / "spans.jsonl")
        spans = read_spans_jsonl(path)
        assert [span["name"] for span in spans] == ["analyze", "extract"]
        assert spans[0]["parent_id"] is None
        assert spans[1]["parent_id"] == spans[0]["span_id"]
        assert spans[0]["end"] - spans[0]["start"] == 0.75
        assert spans[0]["attrs"]["verdict"] == "phish"

    def test_identical_tracers_dump_identical_bytes(self):
        assert spans_to_jsonl(_sample_tracer()) == \
            spans_to_jsonl(_sample_tracer())

    def test_empty_tracer_dumps_empty_text(self):
        assert spans_to_jsonl(Tracer(clock=ManualClock())) == ""


class TestPrometheus:
    def test_format_is_deterministic(self):
        assert metrics_to_prometheus(_sample_metrics()) == \
            metrics_to_prometheus(_sample_metrics())

    def test_counter_and_gauge_lines(self):
        text = metrics_to_prometheus(_sample_metrics())
        assert 'verdicts_total{verdict="phish"} 3' in text
        assert 'breaker_state{name="search"} 2' in text
        assert "# TYPE verdicts_total counter" in text
        assert "# TYPE breaker_state gauge" in text

    def test_histogram_is_cumulative_with_inf(self):
        text = metrics_to_prometheus(_sample_metrics())
        assert 'stage_seconds_bucket{le="0.01"} 0' in text
        assert 'stage_seconds_bucket{le="0.1"} 1' in text
        assert 'stage_seconds_bucket{le="+Inf"} 2' in text
        assert "stage_seconds_count 2" in text

    def test_parse_round_trips_into_an_equal_registry(self, tmp_path):
        metrics = _sample_metrics()
        path = write_metrics_prometheus(metrics, tmp_path / "m.prom")
        snapshot = parse_prometheus(path)
        rebuilt = MetricsRegistry()
        rebuilt.merge(snapshot)
        assert metrics_to_prometheus(rebuilt) == metrics_to_prometheus(metrics)

    def test_metrics_jsonl_snapshot(self):
        text = metrics_to_jsonl(_sample_metrics())
        assert '"verdicts_total"' in text


class TestRunReport:
    def test_report_from_artifacts_alone(self, tmp_path):
        spans_path = write_spans_jsonl(
            _sample_tracer(), tmp_path / "spans.jsonl"
        )
        metrics_path = write_metrics_prometheus(
            _sample_metrics(), tmp_path / "metrics.prom"
        )
        report = RunReport.from_artifacts(
            spans_path=spans_path, metrics_path=metrics_path
        )

        timing = {row["name"]: row for row in report.stage_timing()}
        assert timing["analyze"]["count"] == 1
        assert timing["analyze"]["total_s"] == 0.75
        assert timing["extract"]["mean_s"] == 0.25

        assert report.verdict_tallies() == {"phish": 3.0, "legitimate": 5.0}

        (features,) = report.cache_rates()
        assert features["store"] == "features"
        assert features["hits"] == 7.0
        assert abs(features["hit_rate"] - 7 / 9) < 1e-9

        rendered = report.render()
        assert "Per-stage timing (from spans)" in rendered
        assert "Verdicts" in rendered
        assert "Caches" in rendered

    def test_resilience_counts_from_breaker_metrics(self):
        metrics = MetricsRegistry()
        metrics.inc("browse_loads_total", 10)
        metrics.inc("browse_retries_total", 4)
        metrics.inc("breaker_transitions_total", name="search", to="open")
        metrics.inc("breaker_transitions_total", name="search", to="half-open")
        report = RunReport([], metrics.as_dict())
        counts = report.resilience_counts()
        assert counts["loads"] == 10.0
        assert counts["retries"] == 4.0
        assert counts["breaker_opened"] == 1.0
        assert counts["breaker_transitions"] == 2.0
        assert "Resilience" in report.render()

    def test_empty_artifacts_render_placeholder(self):
        report = RunReport.from_artifacts()
        assert report.render() == "(no observability data in artifacts)"
