"""Unit tests for the flight recorder and the QualityMonitor facade."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.quality.drift import DriftThresholds
from repro.obs.quality.monitor import QualityMonitor
from repro.obs.quality.recorder import FlightRecorder
from repro.obs.quality.reference import ReferenceProfile
from repro.obs.quality.slo import BurnRateWindow, SloObjective
from repro.obs.trace import Tracer
from repro.resilience.clock import ManualClock


class TestFlightRecorder:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_records_sorted_fields_and_elides_none(self):
        recorder = FlightRecorder(4)
        event = recorder.record(
            "serve", 1.5, url="http://x/", score=None, tier="full"
        )
        assert event == {
            "seq": 0,
            "kind": "serve",
            "time": 1.5,
            "tier": "full",
            "url": "http://x/",
        }

    def test_ring_bounds_and_eviction_accounting(self):
        recorder = FlightRecorder(3)
        for i in range(5):
            recorder.record("verdict", float(i))
        assert len(recorder) == 3
        assert recorder.dropped == 2
        snapshot = recorder.snapshot()
        # Oldest first; seq keeps absolute stream position.
        assert [event["seq"] for event in snapshot] == [2, 3, 4]

    def test_as_dict_accounting(self):
        recorder = FlightRecorder(2)
        recorder.record("serve", 0.0)
        payload = recorder.as_dict()
        assert payload["capacity"] == 2
        assert payload["recorded"] == 1
        assert payload["dropped"] == 0
        assert len(payload["events"]) == 1

    def test_snapshot_is_a_copy(self):
        recorder = FlightRecorder(2)
        recorder.record("serve", 0.0)
        recorder.snapshot()[0]["kind"] = "mutated"
        assert recorder.snapshot()[0]["kind"] == "serve"


def _reference(n=100):
    scores = [(i % 10) / 10 + 0.05 for i in range(n)]
    return ReferenceProfile.from_training(scores, {}, depth=8)


def _monitor(**overrides):
    base = dict(
        reference=_reference(),
        objectives=(
            SloObjective("degraded", "degraded_rate", budget=0.1),
        ),
        windows=(BurnRateWindow("fast", long_s=2.0, short_s=0.5, factor=2.0),),
        clock=ManualClock(),
        drift_thresholds=DriftThresholds(min_count=15),
        drift_chunk_size=10,
        drift_chunks=2,
        recorder_capacity=8,
    )
    base.update(overrides)
    return QualityMonitor(**base)


class TestQualityMonitor:
    def test_counts_every_tap_stream(self):
        monitor = _monitor()
        monitor.observe_verdict(0.5, verdict="legitimate", now=0.1)
        monitor.observe_cache("memo", hit=True, now=0.2)
        monitor.observe_escalation(mismatch=True, now=0.3)
        artifact = monitor.artifact()
        assert artifact["counts"] == {
            "cache": 1,
            "escalation": 1,
            "escalation_mismatch": 1,
            "verdict": 1,
        }

    def test_healthy_stream_raises_no_alerts(self):
        monitor = _monitor()
        for i in range(40):
            monitor.observe_verdict((i % 10) / 10 + 0.05, now=i * 0.05)
        artifact = monitor.finish(now=2.5)
        assert artifact["alerts"] == []
        assert monitor.firing_alerts == []

    def test_degraded_burst_fires_slo_alert(self):
        monitor = _monitor()
        for i in range(30):
            monitor.observe_verdict(0.5, degraded=True, now=i * 0.05)
        monitor.finish(now=1.6)
        kinds = {(a["kind"], a["state"]) for a in monitor.firing_alerts}
        assert ("slo", "firing") in kinds
        (dump,) = monitor.alert_dumps[:1]
        assert dump["alert"]["objective"] == "degraded"
        assert dump["events"], "alert dump snapshots the recorder ring"

    def test_shifted_scores_fire_drift_alert(self):
        monitor = _monitor(objectives=())
        for i in range(20):
            monitor.observe_verdict(0.999, now=i * 0.05)
        assert [
            (a["kind"], a["signal"], a["state"])
            for a in monitor.firing_alerts
        ] == [("drift", "score", "firing")]

    def test_drift_evaluates_every_chunk(self):
        monitor = _monitor(objectives=())
        # 9 observations: under the 10-observation chunk, no drift eval
        # yet even though the stream is shifted.
        for i in range(9):
            monitor.observe_verdict(0.999, now=i * 0.05)
        assert monitor.alerts == []
        # finish() forces the pending partial chunk to be judged.
        monitor.finish(now=1.0)
        assert monitor.alerts == []  # 9 < min_count: still gated

    def test_monitor_uses_own_instruments(self):
        tracer = Tracer(clock=ManualClock())
        metrics = MetricsRegistry()
        monitor = _monitor(tracer=tracer, metrics=metrics)
        for i in range(30):
            monitor.observe_verdict(0.5, degraded=True, now=i * 0.05)
        monitor.finish(now=1.6)
        names = {span.name for span in tracer.iter_spans()}
        assert "quality.evaluate" in names
        assert "quality.drift" in names
        assert "quality.dump" in names
        assert metrics.counter_total("quality_events_total") == 30
        assert metrics.counter_total("quality_alerts_total") >= 1
        assert metrics.gauge_value("quality_burn_rate",
                                   objective="degraded",
                                   window="fast") is not None

    def test_artifact_write_is_deterministic(self, tmp_path):
        def run(path):
            monitor = _monitor()
            for i in range(25):
                monitor.observe_verdict(
                    0.9, degraded=(i % 2 == 0), now=i * 0.05
                )
                monitor.observe_cache("memo", hit=(i % 3 != 0), now=i * 0.05)
            monitor.finish(now=1.5)
            return monitor.write_artifact(path)

        first = run(tmp_path / "a.json")
        second = run(tmp_path / "b.json")
        assert first.read_bytes() == second.read_bytes()

    def test_write_flight_is_jsonl(self, tmp_path):
        monitor = _monitor()
        monitor.observe_verdict(0.4, verdict="phish", now=0.1)
        monitor.observe_verdict(0.6, verdict="legitimate", now=0.2)
        path = monitor.write_flight(tmp_path / "flight.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert [e["kind"] for e in events] == ["verdict", "verdict"]
        assert [e["seq"] for e in events] == [0, 1]

    def test_artifact_without_slo_or_drift(self):
        monitor = QualityMonitor(recorder_capacity=4)
        monitor.observe_verdict(0.5, now=0.0)
        artifact = monitor.artifact()
        assert artifact["slo"] is None
        assert artifact["drift"] is None
        assert artifact["counts"] == {"verdict": 1}

    def test_clock_fallback_when_no_now_passed(self):
        clock = ManualClock()
        monitor = QualityMonitor(clock=clock, recorder_capacity=4)
        clock.advance(3.0)
        monitor.observe_verdict(0.5)
        assert monitor.recorder.snapshot()[0]["time"] == 3.0
