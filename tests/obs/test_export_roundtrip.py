"""Round-trip tests for the span and metric exporters.

``repro obs report`` (and the quality CLI) reconstruct runs from
artifacts alone, so ``parse_prometheus(metrics_to_prometheus(m))``
must invert the snapshot exactly — including labelled histograms,
empty registries and non-ASCII label values.
"""

from repro.obs.export import (
    metrics_to_prometheus,
    parse_prometheus,
    read_spans_jsonl,
    spans_to_jsonl,
    write_metrics_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.resilience.clock import ManualClock


def _roundtrip(metrics):
    return parse_prometheus(metrics_to_prometheus(metrics))


class TestPrometheusRoundTrip:
    def test_empty_registry(self):
        snapshot = _roundtrip(MetricsRegistry())
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counters_and_gauges_with_labels(self):
        metrics = MetricsRegistry()
        metrics.inc("serve_tier_total", tier="tier0")
        metrics.inc("serve_tier_total", 2.0, tier="full")
        metrics.inc("requests_total")  # label-free series
        metrics.set_gauge("quality_burn_rate", 1.5,
                          objective="degraded", window="fast")
        assert _roundtrip(metrics) == metrics.as_dict()

    def test_labelled_histograms(self):
        metrics = MetricsRegistry()
        for tier, latency in (
            ("tier0", 0.002), ("tier0", 0.004),
            ("full", 0.3), ("full", 42.0),  # 42 s lands in the +Inf slot
        ):
            metrics.observe(
                "serve_tier_latency_seconds", latency, tier=tier
            )
        snapshot = _roundtrip(metrics)
        assert snapshot == metrics.as_dict()
        entries = snapshot["histograms"]["serve_tier_latency_seconds"]
        overflow = next(
            e for e in entries if e["labels"] == {"tier": "full"}
        )
        # counts carry the trailing +Inf slot, non-cumulative.
        assert len(overflow["counts"]) == len(overflow["buckets"]) + 1
        assert overflow["counts"][-1] == 1
        assert overflow["count"] == 2

    def test_unicode_label_values(self):
        metrics = MetricsRegistry()
        metrics.inc("targets_total", brand="crédit-agricole")
        metrics.inc("targets_total", brand="中国银行")
        assert _roundtrip(metrics) == metrics.as_dict()

    def test_parse_reads_files_too(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.inc("quality_events_total", stream="verdict")
        path = write_metrics_prometheus(metrics, tmp_path / "metrics.prom")
        assert parse_prometheus(path) == metrics.as_dict()

    def test_non_integral_values_survive(self):
        metrics = MetricsRegistry()
        metrics.inc("budget_spent_seconds", 0.1)
        metrics.inc("budget_spent_seconds", 0.25)
        snapshot = _roundtrip(metrics)
        (entry,) = snapshot["counters"]["budget_spent_seconds"]
        assert entry["value"] == 0.35


class TestSpansJsonlRoundTrip:
    def test_empty_tracer(self):
        assert read_spans_jsonl(spans_to_jsonl(Tracer())) == []

    def test_nested_spans_round_trip(self, tmp_path):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("serve.request", url="http://a/") as root:
            clock.advance(0.5)
            with tracer.span("quality.evaluate", transitions=0):
                clock.advance(0.25)
            root.set(outcome="served")
        path = write_spans_jsonl(tracer, tmp_path / "spans.jsonl")
        spans = read_spans_jsonl(path)
        assert [s["name"] for s in spans] == [
            "serve.request", "quality.evaluate",
        ]
        root_line, child_line = spans
        assert root_line["parent_id"] is None
        assert child_line["parent_id"] == root_line["span_id"]
        assert root_line["attrs"] == {
            "url": "http://a/", "outcome": "served",
        }
        assert root_line["end"] - root_line["start"] == 0.75
        # Literal text is accepted alongside paths.
        assert read_spans_jsonl(path.read_text()) == spans
