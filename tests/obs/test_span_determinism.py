"""Span dumps are byte-identical across runs and pool backends.

The acceptance contract for the tracing layer: under an injected
:class:`~repro.resilience.ManualClock`, two ``analyze_many`` runs over
the same corpus dump *byte-identical* spans JSONL — and the dump is
the same whether the analysis stage ran serially or fanned out over a
process pool (per-item tracers are spliced back in input order, ids
renumbered in pre-order).  Metrics aggregate to identical snapshots
the same way.
"""

import pytest

from repro.core.detector import PhishingDetector
from repro.core.features import FeatureExtractor
from repro.core.pipeline import KnowYourPhish
from repro.core.target import TargetIdentifier
from repro.obs import MetricsRegistry, Tracer, spans_to_jsonl
from repro.parallel import AnalysisCache, WorkerPool
from repro.resilience import ManualClock, ResilientBrowser, RetryPolicy
from repro.web.ocr import SimulatedOcr

_STATE: dict = {}


def _trained_parts(world):
    """One small trained detector + identifier per session (lazily)."""
    if "parts" not in _STATE:
        extractor = FeatureExtractor(alexa=world.alexa, cache=AnalysisCache())
        train = world.dataset("legTrain") + world.dataset("phishTrain")
        detector = PhishingDetector(extractor, n_estimators=25)
        detector.fit_snapshots(
            [page.snapshot for page in train], train.labels()
        )
        identifier = TargetIdentifier(
            world.search, ocr=SimulatedOcr(error_rate=0.02)
        )
        _STATE["parts"] = (detector, identifier)
    return _STATE["parts"]


def _workload(world, count=6):
    pages = list(world.dataset("english"))[: count // 2] + \
        list(world.dataset("phishTest"))[: count - count // 2]
    return [page.snapshot.starting_url for page in pages]


def _observed_run(world, pool=None):
    """One fully traced batch run under a manual clock.

    Each run gets a *fresh* analysis cache (sharing only the trained
    model): byte-identity is a statement about identical runs, and a
    cache warmed by a previous run flips ``cached=`` span attributes.
    """
    base, identifier = _trained_parts(world)
    detector = PhishingDetector(
        FeatureExtractor(alexa=world.alexa, cache=AnalysisCache()),
        feature_set=base.feature_set,
        threshold=base.threshold,
    )
    detector.model = base.model
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    metrics = MetricsRegistry()
    pipeline = KnowYourPhish(
        detector, identifier, tracer=tracer, metrics=metrics
    )
    browser = ResilientBrowser(
        world.web, policy=RetryPolicy(clock=clock), clock=clock,
        tracer=tracer, metrics=metrics,
    )
    report = pipeline.analyze_many(_workload(world), browser, pool=pool)
    return report, tracer, metrics


class TestSpanDeterminism:
    def test_two_serial_runs_dump_identical_bytes(self, tiny_world):
        _, first_tracer, first_metrics = _observed_run(tiny_world)
        _, second_tracer, second_metrics = _observed_run(tiny_world)
        first = spans_to_jsonl(first_tracer)
        assert first  # the run actually recorded spans
        assert first == spans_to_jsonl(second_tracer)
        assert first_metrics.as_dict() == second_metrics.as_dict()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_run_dumps_identical_bytes_to_serial(
        self, tiny_world, backend
    ):
        serial_report, serial_tracer, serial_metrics = \
            _observed_run(tiny_world)
        with WorkerPool(workers=2, backend=backend) as pool:
            pool_report, pool_tracer, pool_metrics = \
                _observed_run(tiny_world, pool=pool)
        assert spans_to_jsonl(pool_tracer) == spans_to_jsonl(serial_tracer)
        assert pool_metrics.as_dict() == serial_metrics.as_dict()
        assert [page.verdict.verdict for page in pool_report.analyzed] == \
            [page.verdict.verdict for page in serial_report.analyzed]

    def test_dump_contains_the_documented_taxonomy(self, tiny_world):
        _, tracer, _ = _observed_run(tiny_world)
        names = {span.name for span in tracer.iter_spans()}
        assert {"batch.load", "browse.load", "browse.navigate", "analyze",
                "extract", "classify"} <= names

    def test_tracing_does_not_perturb_verdicts(self, tiny_world):
        detector, identifier = _trained_parts(tiny_world)
        plain = KnowYourPhish(detector, identifier)
        clock = ManualClock()
        bare_browser = ResilientBrowser(
            tiny_world.web, policy=RetryPolicy(clock=clock), clock=clock
        )
        baseline = plain.analyze_many(_workload(tiny_world), bare_browser)
        observed_report, _, _ = _observed_run(tiny_world)
        assert [
            (page.url, page.verdict.verdict, page.verdict.confidence,
             tuple(page.verdict.targets))
            for page in baseline.analyzed
        ] == [
            (page.url, page.verdict.verdict, page.verdict.confidence,
             tuple(page.verdict.targets))
            for page in observed_report.analyzed
        ]
