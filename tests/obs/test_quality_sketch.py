"""Unit tests for the mergeable distribution sketches and divergences."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.quality.sketch import (
    QuantileSketch,
    SlidingWindowSketch,
    hellinger_divergence,
    population_stability_index,
)


class TestQuantileSketch:
    def test_rejects_degenerate_domain(self):
        with pytest.raises(ValueError):
            QuantileSketch(1.0, 1.0)
        with pytest.raises(ValueError):
            QuantileSketch(0.0, 1.0, depth=0)

    def test_observe_tracks_exact_envelope(self):
        sketch = QuantileSketch(0.0, 1.0, depth=4)
        sketch.observe_many([0.2, 0.9, -0.5, 1.7])
        assert sketch.count == 4
        # Out-of-domain values clamp into the edge bins but min/max stay exact.
        assert sketch.vmin == -0.5
        assert sketch.vmax == 1.7
        assert sketch.counts[0] == 2  # 0.2 and the clamped -0.5
        assert sketch.counts[-1] == 2  # 0.9 and the clamped 1.7

    def test_quantile_empty_reads_zero(self):
        assert QuantileSketch(0.0, 1.0).quantile(0.5) == 0.0

    def test_quantile_is_clamped_to_envelope(self):
        sketch = QuantileSketch(0.0, 1.0, depth=2)
        sketch.observe_many([0.4, 0.4, 0.4])
        # Interpolation would read past 0.4 inside the [0, 0.5) bin;
        # the exact max pins it back.
        assert sketch.quantile(0.99) == 0.4

    def test_quantile_median_of_uniform_fill(self):
        sketch = QuantileSketch(0.0, 1.0, depth=10)
        sketch.observe_many([i / 100 for i in range(100)])
        assert sketch.quantile(0.5) == pytest.approx(0.5, abs=0.1)

    def test_merge_requires_compatible_domains(self):
        a = QuantileSketch(0.0, 1.0)
        b = QuantileSketch(0.0, 2.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_is_pure(self):
        a = QuantileSketch(0.0, 1.0, depth=4)
        b = QuantileSketch(0.0, 1.0, depth=4)
        a.observe(0.1)
        b.observe(0.9)
        merged = a.merge(b)
        assert merged.count == 2
        assert a.count == 1 and b.count == 1

    def test_merge_equals_sequential_observation(self):
        values = [0.05, 0.2, 0.2, 0.77, 0.93]
        whole = QuantileSketch(0.0, 1.0, depth=8)
        whole.observe_many(values)
        left = QuantileSketch(0.0, 1.0, depth=8)
        right = QuantileSketch(0.0, 1.0, depth=8)
        left.observe_many(values[:2])
        right.observe_many(values[2:])
        assert left.merge(right) == whole

    def test_dict_round_trip(self):
        sketch = QuantileSketch(0.0, 1.0, depth=4)
        sketch.observe_many([0.1, 0.5, 0.5, 0.99])
        payload = json.loads(json.dumps(sketch.as_dict()))
        assert QuantileSketch.from_dict(payload) == sketch

    def test_from_dict_rejects_wrong_bin_count(self):
        payload = QuantileSketch(0.0, 1.0, depth=4).as_dict()
        payload["counts"] = [0, 0]
        with pytest.raises(ValueError):
            QuantileSketch.from_dict(payload)

    def test_normalized_masses(self):
        sketch = QuantileSketch(0.0, 1.0, depth=2)
        assert sketch.normalized() == [0.0, 0.0]
        sketch.observe_many([0.1, 0.1, 0.9, 0.9])
        assert sketch.normalized() == [0.5, 0.5]


# ----------------------------------------------------------------------
# Satellite: property test that merge is commutative AND associative.
# The sketch state is integer bin counts plus exact min/max, so these
# hold to the byte, not just approximately.
# ----------------------------------------------------------------------

_values = st.lists(
    st.floats(min_value=-2.0, max_value=3.0, allow_nan=False), max_size=30
)


def _sketch_of(values):
    sketch = QuantileSketch(0.0, 1.0, depth=8)
    sketch.observe_many(values)
    return sketch


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(_values, _values)
    def test_merge_commutative(self, xs, ys):
        a, b = _sketch_of(xs), _sketch_of(ys)
        assert a.merge(b) == b.merge(a)
        assert a.merge(b).as_dict() == b.merge(a).as_dict()

    @settings(max_examples=60, deadline=None)
    @given(_values, _values, _values)
    def test_merge_associative(self, xs, ys, zs):
        a, b, c = _sketch_of(xs), _sketch_of(ys), _sketch_of(zs)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=60, deadline=None)
    @given(_values, _values)
    def test_merge_matches_single_stream(self, xs, ys):
        assert _sketch_of(xs).merge(_sketch_of(ys)) == _sketch_of(xs + ys)


class TestSlidingWindowSketch:
    def test_rejects_degenerate_ring(self):
        with pytest.raises(ValueError):
            SlidingWindowSketch(0.0, 1.0, chunk_size=0)
        with pytest.raises(ValueError):
            SlidingWindowSketch(0.0, 1.0, chunks=0)

    def test_capacity_and_count(self):
        window = SlidingWindowSketch(0.0, 1.0, chunk_size=3, chunks=2)
        assert window.capacity == 6
        for _ in range(4):
            window.observe(0.5)
        assert window.count == 4

    def test_evicts_whole_chunks(self):
        window = SlidingWindowSketch(0.0, 1.0, depth=2, chunk_size=2, chunks=2)
        # Two full chunks of lows, then one high: the oldest low chunk
        # is evicted wholesale when the third chunk opens.
        window.observe(0.1)
        window.observe(0.1)
        window.observe(0.1)
        window.observe(0.1)
        window.observe(0.9)
        merged = window.window()
        assert merged.count == 3
        assert merged.counts == [2, 1]

    def test_window_never_exceeds_capacity(self):
        window = SlidingWindowSketch(0.0, 1.0, chunk_size=2, chunks=3)
        for i in range(25):
            window.observe((i % 10) / 10)
        assert window.count <= window.capacity

    def test_as_dict_reports_ring_shape(self):
        window = SlidingWindowSketch(0.0, 1.0, chunk_size=5, chunks=2)
        window.observe(0.3)
        payload = window.as_dict()
        assert payload["chunk_size"] == 5
        assert payload["chunks"] == 2
        assert payload["window"]["count"] == 1


class TestHellingerDivergence:
    def test_both_empty_is_identical(self):
        assert hellinger_divergence([0, 0], [0, 0]) == 0.0

    def test_one_empty_is_maximal(self):
        assert hellinger_divergence([1, 2], [0, 0]) == 1.0
        assert hellinger_divergence([0, 0], [3, 1]) == 1.0

    def test_identical_distributions(self):
        assert hellinger_divergence([5, 5], [50, 50]) == pytest.approx(0.0)

    def test_disjoint_support_is_maximal(self):
        assert hellinger_divergence([10, 0], [0, 10]) == pytest.approx(1.0)

    def test_symmetric(self):
        a, b = [3, 1, 6], [1, 5, 2]
        assert hellinger_divergence(a, b) == pytest.approx(
            hellinger_divergence(b, a)
        )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            hellinger_divergence([1], [1, 2])


class TestPopulationStabilityIndex:
    def test_both_empty_is_zero(self):
        assert population_stability_index([0, 0], [0, 0]) == 0.0

    def test_identical_distributions(self):
        assert population_stability_index([4, 6], [40, 60]) == pytest.approx(0.0)

    def test_empty_side_is_finite(self):
        value = population_stability_index([5, 5], [0, 0])
        assert value > 0.25
        assert value < float("inf")

    def test_shift_grows_psi(self):
        mild = population_stability_index([50, 50], [45, 55])
        major = population_stability_index([50, 50], [5, 95])
        assert 0.0 < mild < major

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            population_stability_index([1, 2], [1])
