"""Tracer invariants: deterministic ids, nesting, adoption, null cost."""

import threading

import pytest

from repro.obs import NULL_TRACER, SPAN_NAME_PATTERN, NullTracer, Tracer
from repro.resilience import ManualClock


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("analyze") as root:
            with tracer.span("extract"):
                with tracer.span("extract.f1"):
                    pass
                with tracer.span("extract.f2"):
                    pass
            with tracer.span("classify"):
                pass
        assert [span.name for span in tracer.iter_spans()] == [
            "analyze", "extract", "extract.f1", "extract.f2", "classify",
        ]
        assert root.parent_id is None
        extract = tracer.roots[0].children[0]
        assert extract.parent_id == root.span_id
        assert [child.parent_id for child in extract.children] == \
            [extract.span_id, extract.span_id]

    def test_ids_assigned_in_start_order_from_one(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [span.span_id for span in tracer.iter_spans()] == [1, 2, 3]

    def test_durations_come_from_the_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
        assert inner.duration == 0.25
        assert outer.duration == 1.25
        assert inner.start == 1.0

    def test_attrs_at_entry_and_via_set(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("analyze", url="http://x/") as span:
            span.set(verdict="phish", degraded=False)
        assert tracer.roots[0].attrs == {
            "url": "http://x/", "verdict": "phish", "degraded": False,
        }

    def test_span_finishes_even_when_body_raises(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [span.name for span in tracer.iter_spans()] == ["doomed"]
        # the stack unwound: the next span is a fresh root
        with tracer.span("next"):
            pass
        assert tracer.roots[1].parent_id is None

    def test_sibling_roots_recorded_in_order(self):
        tracer = Tracer(clock=ManualClock())
        for name in ("first", "second", "third"):
            with tracer.span(name):
                pass
        assert [root.name for root in tracer.roots] == \
            ["first", "second", "third"]

    def test_clear_drops_spans_but_not_the_counter(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            pass
        tracer.clear()
        with tracer.span("b"):
            pass
        assert [span.span_id for span in tracer.iter_spans()] == [2]


class TestAdoption:
    def test_adopt_renumbers_in_preorder(self):
        clock = ManualClock()
        worker = Tracer(clock=clock)
        with worker.span("analyze"):
            with worker.span("extract"):
                pass
            with worker.span("classify"):
                pass
        parent = Tracer(clock=clock)
        with parent.span("batch.load"):
            pass
        parent.adopt(worker.export_records())
        assert [(s.name, s.span_id) for s in parent.iter_spans()] == [
            ("batch.load", 1), ("analyze", 2), ("extract", 3),
            ("classify", 4),
        ]

    def test_adopted_dump_matches_directly_recorded_dump(self):
        from repro.obs import spans_to_jsonl

        def record(tracer):
            with tracer.span("analyze", url="u"):
                with tracer.span("extract"):
                    pass

        direct = Tracer(clock=ManualClock())
        record(direct)

        worker = Tracer(clock=ManualClock())
        record(worker)
        adopting = Tracer(clock=ManualClock())
        adopting.adopt(worker.export_records())

        assert spans_to_jsonl(adopting) == spans_to_jsonl(direct)

    def test_export_records_round_trips_times_and_attrs(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("a", k=1):
            clock.advance(2.0)
        records = tracer.export_records()
        assert records[0]["start"] == 0.0
        assert records[0]["end"] == 2.0
        assert records[0]["attrs"] == {"k": 1}


class TestThreadIsolation:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer(clock=ManualClock())
        barrier = threading.Barrier(2)

        def work(label):
            with tracer.span(label):
                barrier.wait()

        threads = [
            threading.Thread(target=work, args=(name,))
            for name in ("one", "two")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # both spans are roots: neither nested under the other
        assert sorted(root.name for root in tracer.roots) == ["one", "two"]
        assert all(root.parent_id is None for root in tracer.roots)


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        null = NullTracer()
        assert null.enabled is False
        assert Tracer(clock=ManualClock()).enabled is True
        first = null.span("anything", url="x")
        second = null.span("else")
        assert first is second  # shared no-op instance

    def test_null_records_nothing(self):
        with NULL_TRACER.span("a") as span:
            span.set(ignored=True)
        NULL_TRACER.adopt([{"name": "x"}])
        assert NULL_TRACER.export_records() == []
        assert list(NULL_TRACER.iter_spans()) == []


class TestSpanNamePattern:
    @pytest.mark.parametrize("name", [
        "analyze", "batch.load", "extract.f1", "extract.f2.pairs",
        "target.identify", "extract.f{group}", "train.stage",
    ])
    def test_taxonomy_names_match(self, name):
        assert SPAN_NAME_PATTERN.match(name)

    @pytest.mark.parametrize("name", [
        "Analyze", "extract..f1", "extract.", ".extract", "ex tract",
        "extract-f1", "1extract", "",
    ])
    def test_bad_names_rejected(self, name):
        assert not SPAN_NAME_PATTERN.match(name)
