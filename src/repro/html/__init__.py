"""HTML substrate: tolerant parsing and webpage-element extraction.

Provides the browser-side view of a webpage that the paper's Section II-C
relies on: title, rendered body text, outgoing HREF links, embedded
resource URLs (the "logged links" a browser would record while loading the
page), input fields, images, IFrames and the copyright notice.
"""

from repro.html.dom import HtmlNode, parse_html
from repro.html.extract import PageElements, extract_elements, find_copyright

__all__ = [
    "HtmlNode",
    "PageElements",
    "extract_elements",
    "find_copyright",
    "parse_html",
]
