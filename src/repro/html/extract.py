"""Extraction of the webpage elements used as data sources (Section II-C).

From the HTML source code the paper uses: the rendered *Text* (between
``<body>`` tags), the *Title*, the *HREF links* (outgoing links), the
*Copyright* notice found in the text, plus the element counts feature set
f5 relies on (input fields, images, IFrames).  Embedded-resource URLs
(``img``/``script``/``link``/... sources) are extracted as well — the
browser substrate turns them into the "logged links" data source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from urllib.parse import urljoin

from repro.html.dom import HtmlNode, parse_html

# Tags whose URL attribute triggers a resource load in a browser.
_RESOURCE_ATTRS: tuple[tuple[str, str], ...] = (
    ("img", "src"),
    ("script", "src"),
    ("iframe", "src"),
    ("frame", "src"),
    ("embed", "src"),
    ("source", "src"),
    ("audio", "src"),
    ("video", "src"),
    ("input", "src"),       # <input type="image">
    ("link", "href"),       # stylesheets, icons
    ("object", "data"),
)

_COPYRIGHT_MARKERS = ("©", "(c)", "copyright", "all rights reserved")

_NON_FETCHABLE_SCHEMES = ("javascript:", "mailto:", "tel:", "data:", "#")


@dataclass
class PageElements:
    """The browser-visible elements of one webpage.

    Attributes
    ----------
    title:
        Content of the ``<title>`` element ("" when absent).
    text:
        Rendered body text (script/style content excluded).
    copyright_notice:
        The copyright line found in the text, or "".
    href_links:
        Absolute URLs of outgoing links (``<a href>`` / ``<area href>``).
    resource_links:
        Absolute URLs of embedded resources the browser would fetch.
    form_actions:
        Absolute URLs that forms submit to.
    input_count, image_count, iframe_count:
        Element counts used by feature set f5.
    """

    title: str = ""
    text: str = ""
    copyright_notice: str = ""
    href_links: list[str] = field(default_factory=list)
    resource_links: list[str] = field(default_factory=list)
    form_actions: list[str] = field(default_factory=list)
    iframe_links: list[str] = field(default_factory=list)
    input_count: int = 0
    image_count: int = 0
    iframe_count: int = 0


def _absolutize(raw: str, base_url: str) -> str | None:
    """Resolve ``raw`` against ``base_url``; drop non-fetchable pseudo-URLs."""
    raw = (raw or "").strip()
    if not raw:
        return None
    lowered = raw.lower()
    if any(lowered.startswith(scheme) for scheme in _NON_FETCHABLE_SCHEMES):
        return None
    try:
        absolute = urljoin(base_url, raw)
    except ValueError:
        return None
    if not absolute.lower().startswith(("http://", "https://")):
        return None
    return absolute


def find_copyright(text: str) -> str:
    """Return the copyright notice line found in ``text``, or "".

    The paper treats the copyright as a distinguished short text snippet:
    a line containing a copyright marker (``©``, ``(c)``, "copyright",
    "all rights reserved").
    """
    for line in re.split(r"[\n\r]+", text):
        lowered = line.lower()
        if any(marker in lowered for marker in _COPYRIGHT_MARKERS):
            return line.strip()
    return ""


def extract_elements(markup: str, base_url: str = "") -> PageElements:
    """Parse ``markup`` and extract every element of :class:`PageElements`.

    ``base_url`` is the page's landing URL; relative links are resolved
    against it, matching what a browser logs.
    """
    document = parse_html(markup)
    elements = PageElements()

    title_node = document.find("title")
    if title_node is not None:
        elements.title = title_node.text().strip()

    body = document.find("body")
    text_root: HtmlNode = body if body is not None else document
    # Use newline separation so the copyright line stays detectable.
    elements.text = text_root.text(separator="\n")
    elements.copyright_notice = find_copyright(elements.text)

    for node in document.iter_nodes():
        tag = node.tag
        if tag in ("a", "area"):
            url = _absolutize(node.get("href", ""), base_url)
            if url:
                elements.href_links.append(url)
        elif tag == "form":
            url = _absolutize(node.get("action", ""), base_url)
            if url:
                elements.form_actions.append(url)
        elif tag == "input":
            if (node.get("type") or "text").lower() != "hidden":
                elements.input_count += 1
        elif tag == "textarea":
            elements.input_count += 1

        if tag == "img":
            elements.image_count += 1
        elif tag in ("iframe", "frame"):
            elements.iframe_count += 1
            url = _absolutize(node.get("src", ""), base_url)
            if url:
                elements.iframe_links.append(url)

        for resource_tag, attr in _RESOURCE_ATTRS:
            if tag == resource_tag:
                url = _absolutize(node.get(attr, ""), base_url)
                if url:
                    elements.resource_links.append(url)
                break

    return elements
