"""A lightweight, fault-tolerant DOM built on :mod:`html.parser`.

Real phishing pages are frequently malformed (unclosed tags, stray
end-tags), so the builder never raises on bad input: unknown end tags are
ignored and unclosed elements are implicitly closed at end of input.
Void elements (``img``, ``br``, ``input``...) never take children.
"""

from __future__ import annotations

from html.parser import HTMLParser

VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

# Content of these elements is never rendered as user-visible text.
NON_RENDERED = frozenset({"script", "style", "noscript", "template", "head"})


class HtmlNode:
    """A single element (or the synthetic ``#document`` root)."""

    __slots__ = ("tag", "attrs", "children", "parent")

    def __init__(self, tag: str, attrs: dict[str, str] | None = None, parent=None):
        self.tag = tag
        self.attrs: dict[str, str] = attrs or {}
        self.children: list[HtmlNode | str] = []
        self.parent: HtmlNode | None = parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HtmlNode {self.tag} children={len(self.children)}>"

    # ---- traversal ----------------------------------------------------
    def iter_nodes(self):
        """Depth-first iteration over this node and all element descendants."""
        yield self
        for child in self.children:
            if isinstance(child, HtmlNode):
                yield from child.iter_nodes()

    def find_all(self, tag: str) -> list["HtmlNode"]:
        """All descendant elements (including self) with the given tag."""
        return [node for node in self.iter_nodes() if node.tag == tag]

    def find(self, tag: str) -> "HtmlNode | None":
        """First descendant element with the given tag, or ``None``."""
        for node in self.iter_nodes():
            if node.tag == tag:
                return node
        return None

    def get(self, attr: str, default: str | None = None) -> str | None:
        """Attribute lookup (attribute names are lower-cased at parse time)."""
        return self.attrs.get(attr, default)

    # ---- text extraction ----------------------------------------------
    def text(self, separator: str = " ") -> str:
        """Rendered text of the subtree, skipping non-rendered elements."""
        fragments: list[str] = []
        self._collect_text(fragments)
        return separator.join(fragments)

    def _collect_text(self, fragments: list[str]) -> None:
        if self.tag in NON_RENDERED:
            return
        for child in self.children:
            if isinstance(child, str):
                stripped = child.strip()
                if stripped:
                    fragments.append(stripped)
            else:
                child._collect_text(fragments)


class _DomBuilder(HTMLParser):
    """Streams html.parser events into an :class:`HtmlNode` tree."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.root = HtmlNode("#document")
        self._stack = [self.root]

    # -- element events --
    def handle_starttag(self, tag, attrs):
        node = HtmlNode(tag, {k.lower(): (v or "") for k, v in attrs}, self._stack[-1])
        self._stack[-1].children.append(node)
        if tag not in VOID_ELEMENTS:
            self._stack.append(node)

    def handle_startendtag(self, tag, attrs):
        node = HtmlNode(tag, {k.lower(): (v or "") for k, v in attrs}, self._stack[-1])
        self._stack[-1].children.append(node)

    def handle_endtag(self, tag):
        # Close up to the nearest matching open element; ignore stray tags.
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return

    # -- text events --
    def handle_data(self, data):
        if data:
            self._stack[-1].children.append(data)

    def handle_entityref(self, name):  # pragma: no cover - convert_charrefs on
        self._stack[-1].children.append(f"&{name};")


def parse_html(markup: str) -> HtmlNode:
    """Parse ``markup`` into a DOM tree rooted at a ``#document`` node.

    Never raises on malformed input; returns an empty document for empty
    or non-string input.
    """
    builder = _DomBuilder()
    if isinstance(markup, str) and markup:
        builder.feed(markup)
        builder.close()
    return builder.root
