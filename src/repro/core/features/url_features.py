"""Feature set f1: 106 URL statistical features (Table IV).

Nine lexical features per URL:

1. protocol used (https = 1)
2. count of dots in the FreeURL
3. count of level domains
4. length of the URL
5. length of the FQDN
6. length of the mld
7. count of terms in the URL
8. count of terms in the mld
9. Alexa ranking of the RDN (default 1,000,001 when unranked)

Layout (9 + 9 + 4 * (7*3 + 1) = 106):

* the full nine for the starting URL and the landing URL;
* for each of the four link sets (internal/external x logged/HREF):
  the https ratio (feature 1 as a ratio) plus mean, median and standard
  deviation of features 3-9.  Feature 2 is computed only on the starting
  and landing URLs since obfuscation matters only where the user sees
  the URL.

Empty link sets yield all-zero statistics.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasources import DataSources
from repro.text.terms import extract_terms
from repro.urls.alexa import AlexaRanking
from repro.urls.parsing import ParsedUrl

#: Names of the per-URL statistical features 3-9 of Table IV.
STAT_FEATURES = (
    "level_domains", "url_length", "fqdn_length", "mld_length",
    "url_terms", "mld_terms", "alexa_rank",
)
LINK_SETS = ("intlog", "extlog", "intlink", "extlink")

N_FEATURES = 9 + 9 + len(LINK_SETS) * (len(STAT_FEATURES) * 3 + 1)


def _stat_vector(url: ParsedUrl, alexa: AlexaRanking) -> list[float]:
    """Features 3-9 of Table IV for one URL."""
    mld = url.mld or ""
    return [
        float(url.level_domain_count),
        float(len(url.raw)),
        float(len(url.fqdn)),
        float(len(mld)),
        float(len(extract_terms(url.raw))),
        float(len(extract_terms(mld))),
        float(alexa.rank(url.rdn)),
    ]


def _full_vector(url: ParsedUrl, alexa: AlexaRanking) -> list[float]:
    """All nine Table IV features for a user-visible URL."""
    free_url_dots = url.subdomains.count(".") + (1 if url.subdomains else 0)
    free_url_dots += url.path.count(".") + url.query.count(".")
    return [
        1.0 if url.uses_https else 0.0,
        float(free_url_dots),
        *_stat_vector(url, alexa),
    ]


def _set_statistics(urls: list[ParsedUrl], alexa: AlexaRanking) -> list[float]:
    """https ratio + mean/median/std of features 3-9 over a link set."""
    if not urls:
        return [0.0] * (1 + len(STAT_FEATURES) * 3)
    matrix = np.asarray([_stat_vector(url, alexa) for url in urls])
    https_ratio = float(np.mean([url.uses_https for url in urls]))
    out = [https_ratio]
    for column in range(matrix.shape[1]):
        values = matrix[:, column]
        out.extend([
            float(values.mean()),
            float(np.median(values)),
            float(values.std()),
        ])
    return out


def compute(sources: DataSources, alexa: AlexaRanking) -> list[float]:
    """Compute the 106 f1 features for one page."""
    features: list[float] = []
    features.extend(_full_vector(sources.starting, alexa))
    features.extend(_full_vector(sources.landing, alexa))
    for set_name in LINK_SETS:
        urls = {
            "intlog": sources.internal_logged,
            "extlog": sources.external_logged,
            "intlink": sources.internal_href,
            "extlink": sources.external_href,
        }[set_name]
        features.extend(_set_statistics(urls, alexa))
    return features


def compute_flat(sources: DataSources, alexa: AlexaRanking) -> list[float]:
    """Ablation variant of f1 *without* the control partition.

    The paper's Section III-A conjecture is that grouping link features
    by internal/external (control) improves classification.  This
    variant pools all logged and HREF links into one set (9 + 9 + 22 =
    40 features), so the ablation benchmark can quantify what the
    partition buys.
    """
    features: list[float] = []
    features.extend(_full_vector(sources.starting, alexa))
    features.extend(_full_vector(sources.landing, alexa))
    all_links = sources.logged_links + sources.href_links
    features.extend(_set_statistics(all_links, alexa))
    return features


def flat_feature_names() -> list[str]:
    """Stable names for the 40 flat-f1 ablation features."""
    single = ("https", "freeurl_dots") + STAT_FEATURES
    names = [f"f1flat.start.{name}" for name in single]
    names += [f"f1flat.land.{name}" for name in single]
    names.append("f1flat.links.https_ratio")
    for stat_name in STAT_FEATURES:
        for agg in ("mean", "median", "std"):
            names.append(f"f1flat.links.{stat_name}.{agg}")
    return names


def feature_names() -> list[str]:
    """Stable names for the 106 f1 features."""
    single = ("https", "freeurl_dots") + STAT_FEATURES
    names = [f"f1.start.{name}" for name in single]
    names += [f"f1.land.{name}" for name in single]
    for set_name in LINK_SETS:
        names.append(f"f1.{set_name}.https_ratio")
        for stat_name in STAT_FEATURES:
            for agg in ("mean", "median", "std"):
                names.append(f"f1.{set_name}.{stat_name}.{agg}")
    return names
