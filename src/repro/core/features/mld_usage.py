"""Feature set f3: 22 features on starting/landing mld usage.

Legitimate sites register domains reflecting their brand, so their mld
shows up across the page; phishing domains usually bear no relation to
the page's (mimicked) content.  Per Section IV-B:

* 12 binary features — the starting/landing mld appears as a term of
  ``D_text``, ``D_title``, ``D_intlog``, ``D_extlog``, ``D_intlink``,
  ``D_extlink`` (6 sources x 2 mlds);
* 10 probability-mass features — the summed probability of terms of
  ``D_title``, ``D_intlog``, ``D_extlog``, ``D_intlink``, ``D_extlink``
  that are substrings of the starting/landing mld (5 x 2).  ``D_text``
  is excluded here: its many short terms match fragments of most mlds.

IP-based URLs have no mld; all their features are 0.
"""

from __future__ import annotations

from repro.core.datasources import DataSources
from repro.text.distributions import TermDistribution
from repro.text.terms import canonicalize

BINARY_SOURCES = ("text", "title", "intlog", "extlog", "intlink", "extlink")
MASS_SOURCES = ("title", "intlog", "extlog", "intlink", "extlink")

N_FEATURES = 2 * len(BINARY_SOURCES) + 2 * len(MASS_SOURCES)
assert N_FEATURES == 22


def _canonical_mld(mld: str | None) -> str:
    """The mld as a single canonical letter string ('' when absent)."""
    if not mld:
        return ""
    return canonicalize(mld).replace(" ", "")


def _appears_in(mld: str, distribution: TermDistribution) -> float:
    """1.0 when the canonical mld occurs as a term of the distribution."""
    return 1.0 if mld and mld in distribution else 0.0


def _substring_mass(mld: str, distribution: TermDistribution) -> float:
    """Probability mass of terms that are substrings of the mld."""
    if not mld:
        return 0.0
    return distribution.probability_mass_of_substrings(mld)


def compute(sources: DataSources) -> list[float]:
    """Compute the 22 f3 features for one page."""
    start_mld = _canonical_mld(sources.starting.mld)
    land_mld = _canonical_mld(sources.landing.mld)

    features: list[float] = []
    for mld in (start_mld, land_mld):
        for source in BINARY_SOURCES:
            features.append(_appears_in(mld, sources.distribution(source)))
    for mld in (start_mld, land_mld):
        for source in MASS_SOURCES:
            features.append(_substring_mass(mld, sources.distribution(source)))
    return features


def feature_names() -> list[str]:
    """Stable names for the 22 f3 features."""
    names = [
        f"f3.{which}_mld.in.{source}"
        for which in ("start", "land")
        for source in BINARY_SOURCES
    ]
    names += [
        f"f3.{which}_mld.mass.{source}"
        for which in ("start", "land")
        for source in MASS_SOURCES
    ]
    return names
