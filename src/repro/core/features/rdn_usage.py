"""Feature set f4: 13 RDN-usage consistency features.

"We compute statistics related to the use of similar and different RDNs
in starting URL, landing URL, redirection chain, loaded content (logged
links) and HREF links.  We expect legitimate webpages to use more
internal RDNs and less redirection than phishing webpages"
(Section IV-B).  The paper does not enumerate the 13 features; the
concrete instantiation below covers redirection volume, RDN agreement
between the user-visible URLs, internal/external composition of both
link sets and RDN diversity.
"""

from __future__ import annotations

from repro.core.datasources import DataSources, _url_identity

N_FEATURES = 13


def compute(sources: DataSources) -> list[float]:
    """Compute the 13 f4 features for one page."""
    chain = sources.redirection_chain
    logged = sources.logged_links
    href = sources.href_links
    landing_identity = _url_identity(sources.landing)

    chain_identities = {_url_identity(url) for url in chain}
    logged_external_rdns = {
        _url_identity(url) for url in sources.external_logged
    }
    href_external_rdns = {_url_identity(url) for url in sources.external_href}
    all_rdns = {_url_identity(url) for url in logged + href} | chain_identities

    n_logged = len(logged)
    n_href = len(href)
    return [
        # redirection behaviour
        float(len(chain)),
        float(len(chain_identities)),
        1.0 if sources.starting.rdn and sources.starting.same_rdn(sources.landing)
        else (1.0 if sources.starting.fqdn == sources.landing.fqdn else 0.0),
        # link volumes
        float(n_logged),
        float(n_href),
        # internal composition
        len(sources.internal_logged) / n_logged if n_logged else 0.0,
        len(sources.internal_href) / n_href if n_href else 0.0,
        # external RDN diversity
        float(len(logged_external_rdns)),
        float(len(href_external_rdns)),
        float(len(all_rdns)),
        # agreement with the landing RDN specifically
        sum(_url_identity(url) == landing_identity for url in logged) / n_logged
        if n_logged else 0.0,
        sum(_url_identity(url) == landing_identity for url in href) / n_href
        if n_href else 0.0,
        # RDN switches along the redirection chain (cross-domain hops)
        float(sum(
            _url_identity(first) != _url_identity(second)
            for first, second in zip(chain, chain[1:])
        )),
    ]


def feature_names() -> list[str]:
    """Stable names for the 13 f4 features."""
    return [
        "f4.chain_length",
        "f4.chain_distinct_rdns",
        "f4.start_land_same_rdn",
        "f4.logged_count",
        "f4.href_count",
        "f4.logged_internal_ratio",
        "f4.href_internal_ratio",
        "f4.logged_external_rdn_count",
        "f4.href_external_rdn_count",
        "f4.total_distinct_rdns",
        "f4.logged_landing_rdn_ratio",
        "f4.href_landing_rdn_ratio",
        "f4.chain_rdn_switches",
    ]
