"""Assembly of the full 212-dimensional feature vector (Table III).

:class:`FeatureExtractor` turns a page snapshot into the concatenated
feature vector ``[f1 | f2 | f3 | f4 | f5]`` and offers boolean masks for
the feature-set combinations evaluated in the paper (Table VII / Figs. 2
and 5): each individual set, ``f1,5``, ``f2,3,4`` and ``fall``.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasources import DataSources
from repro.core.features import (
    content,
    mld_usage,
    rdn_usage,
    term_consistency,
    url_features,
)
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.parallel.cache import AnalysisCache, snapshot_fingerprint
from repro.urls.alexa import AlexaRanking
from repro.urls.public_suffix import PublicSuffixList, default_psl
from repro.web.page import PageSnapshot

#: Feature-set layout: (name, module) in concatenation order.
_GROUPS = (
    ("f1", url_features),
    ("f2", term_consistency),
    ("f3", mld_usage),
    ("f4", rdn_usage),
    ("f5", content),
)

#: All feature-set names accepted by :func:`feature_set_mask`.
FEATURE_SET_NAMES = ("f1", "f2", "f3", "f4", "f5", "f1,5", "f2,3,4", "fall")

N_FEATURES = sum(module.N_FEATURES for _name, module in _GROUPS)
assert N_FEATURES == 212

_GROUP_SLICES: dict[str, slice] = {}
_offset = 0
for _name, _module in _GROUPS:
    _GROUP_SLICES[_name] = slice(_offset, _offset + _module.N_FEATURES)
    _offset += _module.N_FEATURES


def feature_groups() -> list[tuple[str, tuple[str, ...], int]]:
    """The live feature registry: ``(set, names, declared_count)`` rows.

    One row per feature set in concatenation order, pairing each
    module's declared ``N_FEATURES`` with its actual ``feature_names()``
    so contract checkers (``repro.lint`` PHL3xx, tests) can audit the
    212-feature layout without reaching into module internals.
    """
    return [
        (name, tuple(module.feature_names()), int(module.N_FEATURES))
        for name, module in _GROUPS
    ]


def group_slices() -> dict[str, slice]:
    """Column slice of each feature group in the 212-wide matrix.

    Keys are the group names (``f1`` .. ``f5``) in concatenation
    order; a fresh dict each call, so callers cannot corrupt the
    module's layout table.
    """
    return dict(_GROUP_SLICES)


def group_means(matrix: np.ndarray) -> dict[str, np.ndarray]:
    """Per-page mean of each feature group over a feature matrix.

    ``matrix`` is ``(n_pages, 212)`` (a single 212-vector is accepted
    and treated as one page).  Returns ``{group: (n_pages,) means}``
    in concatenation order — the per-group summary signal the quality
    monitor's drift windows track against the training reference.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.shape[1] != N_FEATURES:
        raise ValueError(
            f"expected {N_FEATURES} feature columns, got {matrix.shape[1]}"
        )
    return {
        name: matrix[:, sl].mean(axis=1)
        for name, sl in _GROUP_SLICES.items()
    }


def feature_set_mask(name: str) -> np.ndarray:
    """Boolean mask over the 212 features selecting a feature set.

    ``name`` is one of :data:`FEATURE_SET_NAMES`.  Combination names use
    the paper's notation: ``"f1,5"`` selects f1 and f5, ``"f2,3,4"``
    selects f2, f3 and f4, ``"fall"`` selects everything.
    """
    if name == "fall":
        return np.ones(N_FEATURES, dtype=bool)
    if name not in FEATURE_SET_NAMES:
        raise ValueError(
            f"unknown feature set {name!r}; expected one of {FEATURE_SET_NAMES}"
        )
    mask = np.zeros(N_FEATURES, dtype=bool)
    for digit in name[1:].split(","):
        mask[_GROUP_SLICES[f"f{digit}"]] = True
    return mask


class FeatureExtractor:
    """Extracts the 212 features of Table III from page snapshots.

    Parameters
    ----------
    alexa:
        Popularity ranking used by f1's Alexa-rank features.  Defaults to
        an empty ranking (every domain gets the unranked default), which
        keeps the extractor usable without the synthetic world.
    psl:
        Public-suffix list for URL decomposition.
    cache:
        Optional :class:`~repro.parallel.cache.AnalysisCache` memoizing
        term distributions, f2 pair matrices and full feature vectors by
        snapshot content hash.  Feature vectors depend on the extractor's
        configuration (Alexa ranking, term metric), so a cache must not
        be shared between differently-configured extractors.  Hits
        return copies of values computed by the exact same code path as
        misses — caching never changes results.
    """

    def __init__(
        self,
        alexa: AlexaRanking | None = None,
        psl: PublicSuffixList | None = None,
        term_metric: str = "hellinger",
        cache: AnalysisCache | None = None,
    ):
        if term_metric not in term_consistency.METRICS:
            raise ValueError(
                f"unknown term_metric {term_metric!r}; expected one of "
                f"{sorted(term_consistency.METRICS)}"
            )
        self.alexa = alexa or AlexaRanking()
        self.psl = psl or default_psl()
        self.term_metric = term_metric
        self.cache = cache
        self._names = [
            name for _group, module in _GROUPS for name in module.feature_names()
        ]

    @property
    def n_features(self) -> int:
        """Total feature count (212)."""
        return N_FEATURES

    @property
    def feature_names(self) -> list[str]:
        """Stable, human-readable names for all 212 features."""
        return list(self._names)

    def extract(self, snapshot: PageSnapshot) -> np.ndarray:
        """Feature vector for one page snapshot."""
        if self.cache is None:
            return self._extract_uncached(
                DataSources(snapshot, psl=self.psl), key=None
            )
        key = snapshot_fingerprint(snapshot)
        hit = self.cache.get_features(key)
        if hit is not None:
            return hit
        sources = DataSources(
            snapshot,
            psl=self.psl,
            distribution_cache=self.cache.distributions,
            cache_key=key,
        )
        return self._extract_uncached(sources, key=key)

    def extract_from_sources(
        self, sources: DataSources, tracer: AnyTracer = NULL_TRACER
    ) -> np.ndarray:
        """Feature vector for an already-built :class:`DataSources`.

        ``tracer`` optionally receives an ``extract`` span with one
        child per feature group (``extract.f1`` .. ``extract.f5``);
        a cache hit produces just the ``extract`` span with
        ``cached=True``.  Tracing never changes the vector.
        """
        if self.cache is None:
            with tracer.span("extract", cached=False):
                return self._extract_uncached(sources, key=None, tracer=tracer)
        # Reuse the fingerprint the sources were built with, if any.
        key = getattr(sources, "_cache_key", None) or snapshot_fingerprint(
            sources.snapshot
        )
        hit = self.cache.get_features(key)
        if hit is not None:
            with tracer.span("extract", cached=True):
                return hit
        with tracer.span("extract", cached=False):
            return self._extract_uncached(sources, key=key, tracer=tracer)

    def _extract_uncached(
        self,
        sources: DataSources,
        key: str | None,
        tracer: AnyTracer = NULL_TRACER,
    ) -> np.ndarray:
        with tracer.span("extract.f1"):
            f1 = url_features.compute(sources, self.alexa)
        with tracer.span("extract.f2"):
            f2 = self._f2_block(sources, key, tracer=tracer)
        with tracer.span("extract.f3"):
            f3 = mld_usage.compute(sources)
        with tracer.span("extract.f4"):
            f4 = rdn_usage.compute(sources)
        with tracer.span("extract.f5"):
            f5 = content.compute(sources)
        vector = f1 + f2 + f3 + f4 + f5
        out = np.asarray(vector, dtype=np.float64)
        if out.shape != (N_FEATURES,):  # pragma: no cover - invariant guard
            raise AssertionError(
                f"feature vector has shape {out.shape}, expected ({N_FEATURES},)"
            )
        if self.cache is not None and key is not None:
            self.cache.put_features(key, out)
        return out

    def _f2_block(
        self,
        sources: DataSources,
        key: str | None,
        tracer: AnyTracer = NULL_TRACER,
    ) -> list[float]:
        """The 66 f2 distances, served from the pair-matrix cache if hot.

        The pair matrix is keyed by (metric, fingerprint) — unlike full
        feature vectors it does not depend on the Alexa ranking, so this
        sub-result stays valid across extractors differing only in f1
        configuration.  The Hellinger (or other metric) pair-matrix
        computation itself is timed under an ``extract.f2.pairs`` span.
        """
        if self.cache is None or key is None:
            with tracer.span("extract.f2.pairs", cached=False):
                return term_consistency.compute(
                    sources, metric=self.term_metric
                )
        pair_key = (self.term_metric, key)
        pairs = self.cache.get_pair_matrix(pair_key)
        if pairs is None:
            with tracer.span("extract.f2.pairs", cached=False):
                pairs = term_consistency.compute_pairs(
                    sources, metric=self.term_metric
                )
            self.cache.put_pair_matrix(pair_key, pairs)
        else:
            with tracer.span("extract.f2.pairs", cached=True):
                pass
        return pairs.tolist()

    def extract_batch(
        self,
        snapshots,
        tracer: AnyTracer = NULL_TRACER,
        keys: list[str | None] | None = None,
    ) -> np.ndarray:
        """Columnar feature matrix for a snapshot batch.

        Delegates to :class:`~repro.core.features.batch.BatchExtractor`:
        one numpy pass per feature group over the whole batch, rows
        bit-identical to stacking :meth:`extract` outputs.  ``keys``
        optionally passes precomputed snapshot fingerprints; with a
        cache attached, warm rows skip columnarization entirely.
        """
        # Local import: the batch module builds on this one.
        from repro.core.features.batch import BatchExtractor

        return BatchExtractor(self).extract_batch(
            snapshots, tracer=tracer, keys=keys
        )

    def extract_many(self, snapshots, pool=None) -> np.ndarray:
        """Feature matrix for an iterable of snapshots.

        An empty iterable yields an empty ``(0, 212)`` float64 matrix.
        Without a ``pool`` the whole batch runs through the columnar
        :meth:`extract_batch` path; with one, contiguous snapshot
        chunks (one columnar pass each) are dispatched via
        :meth:`~repro.parallel.WorkerPool.map_chunks` with a
        backend-aware chunk count — one chunk per process worker, a
        single chunk on the GIL-bound thread backend.  Either way rows
        come back in snapshot order and bit-identical to the serial
        per-page run regardless of backend, chunking or scheduling.
        With the ``process`` backend the extractor is pickled into each
        worker, so cache fills stay worker-local (the ``thread`` backend
        shares this extractor's cache).
        """
        snapshots = list(snapshots)
        if not snapshots:
            return np.empty((0, N_FEATURES), dtype=np.float64)
        if pool is None:
            return self.extract_batch(snapshots)
        rows = pool.map_chunks(
            self.extract_batch, snapshots,
            chunk_count=pool.columnar_chunks(len(snapshots)),
        )
        return np.vstack(rows)
