"""Assembly of the full 212-dimensional feature vector (Table III).

:class:`FeatureExtractor` turns a page snapshot into the concatenated
feature vector ``[f1 | f2 | f3 | f4 | f5]`` and offers boolean masks for
the feature-set combinations evaluated in the paper (Table VII / Figs. 2
and 5): each individual set, ``f1,5``, ``f2,3,4`` and ``fall``.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasources import DataSources
from repro.core.features import (
    content,
    mld_usage,
    rdn_usage,
    term_consistency,
    url_features,
)
from repro.urls.alexa import AlexaRanking
from repro.urls.public_suffix import PublicSuffixList, default_psl
from repro.web.page import PageSnapshot

#: Feature-set layout: (name, module) in concatenation order.
_GROUPS = (
    ("f1", url_features),
    ("f2", term_consistency),
    ("f3", mld_usage),
    ("f4", rdn_usage),
    ("f5", content),
)

#: All feature-set names accepted by :func:`feature_set_mask`.
FEATURE_SET_NAMES = ("f1", "f2", "f3", "f4", "f5", "f1,5", "f2,3,4", "fall")

N_FEATURES = sum(module.N_FEATURES for _name, module in _GROUPS)
assert N_FEATURES == 212

_GROUP_SLICES: dict[str, slice] = {}
_offset = 0
for _name, _module in _GROUPS:
    _GROUP_SLICES[_name] = slice(_offset, _offset + _module.N_FEATURES)
    _offset += _module.N_FEATURES


def feature_set_mask(name: str) -> np.ndarray:
    """Boolean mask over the 212 features selecting a feature set.

    ``name`` is one of :data:`FEATURE_SET_NAMES`.  Combination names use
    the paper's notation: ``"f1,5"`` selects f1 and f5, ``"f2,3,4"``
    selects f2, f3 and f4, ``"fall"`` selects everything.
    """
    if name == "fall":
        return np.ones(N_FEATURES, dtype=bool)
    if name not in FEATURE_SET_NAMES:
        raise ValueError(
            f"unknown feature set {name!r}; expected one of {FEATURE_SET_NAMES}"
        )
    mask = np.zeros(N_FEATURES, dtype=bool)
    for digit in name[1:].split(","):
        mask[_GROUP_SLICES[f"f{digit}"]] = True
    return mask


class FeatureExtractor:
    """Extracts the 212 features of Table III from page snapshots.

    Parameters
    ----------
    alexa:
        Popularity ranking used by f1's Alexa-rank features.  Defaults to
        an empty ranking (every domain gets the unranked default), which
        keeps the extractor usable without the synthetic world.
    psl:
        Public-suffix list for URL decomposition.
    """

    def __init__(
        self,
        alexa: AlexaRanking | None = None,
        psl: PublicSuffixList | None = None,
        term_metric: str = "hellinger",
    ):
        if term_metric not in term_consistency.METRICS:
            raise ValueError(
                f"unknown term_metric {term_metric!r}; expected one of "
                f"{sorted(term_consistency.METRICS)}"
            )
        self.alexa = alexa or AlexaRanking()
        self.psl = psl or default_psl()
        self.term_metric = term_metric
        self._names = [
            name for _group, module in _GROUPS for name in module.feature_names()
        ]

    @property
    def n_features(self) -> int:
        """Total feature count (212)."""
        return N_FEATURES

    @property
    def feature_names(self) -> list[str]:
        """Stable, human-readable names for all 212 features."""
        return list(self._names)

    def extract(self, snapshot: PageSnapshot) -> np.ndarray:
        """Feature vector for one page snapshot."""
        sources = DataSources(snapshot, psl=self.psl)
        return self.extract_from_sources(sources)

    def extract_from_sources(self, sources: DataSources) -> np.ndarray:
        """Feature vector for an already-built :class:`DataSources`."""
        vector = (
            url_features.compute(sources, self.alexa)
            + term_consistency.compute(sources, metric=self.term_metric)
            + mld_usage.compute(sources)
            + rdn_usage.compute(sources)
            + content.compute(sources)
        )
        out = np.asarray(vector, dtype=np.float64)
        if out.shape != (N_FEATURES,):  # pragma: no cover - invariant guard
            raise AssertionError(
                f"feature vector has shape {out.shape}, expected ({N_FEATURES},)"
            )
        return out

    def extract_many(self, snapshots) -> np.ndarray:
        """Feature matrix for an iterable of snapshots."""
        rows = [self.extract(snapshot) for snapshot in snapshots]
        if not rows:
            return np.empty((0, N_FEATURES))
        return np.vstack(rows)
