"""Feature set f2: 66 term-usage-consistency features.

Pairwise Hellinger distances (Equation 1) between the 12 Table I term
distributions retained for classification (``copyright`` and ``image``
are discarded, Section IV-B): 12 * 11 / 2 = 66 features.  Each feature
measures how consistently terms are used between two locations of the
page — e.g. between the (constrained) landing RDN and the (freely
controlled) title.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.datasources import F2_DISTRIBUTION_NAMES, DataSources
from repro.text.distributions import hellinger_distance, jaccard_distance

#: The ordered distribution pairs, fixed for the lifetime of the model.
PAIRS: tuple[tuple[str, str], ...] = tuple(
    combinations(F2_DISTRIBUTION_NAMES, 2)
)

N_FEATURES = len(PAIRS)
assert N_FEATURES == 66

#: Distance functions usable for f2; "hellinger" is the paper's choice,
#: "jaccard" the ablation comparator.
METRICS = {"hellinger": hellinger_distance, "jaccard": jaccard_distance}


def compute(sources: DataSources, metric: str = "hellinger") -> list[float]:
    """Compute the 66 pairwise distribution distances for one page."""
    try:
        distance = METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown f2 metric {metric!r}; expected one of {sorted(METRICS)}"
        ) from None
    distributions = {
        name: sources.distribution(name) for name in F2_DISTRIBUTION_NAMES
    }
    return [
        distance(distributions[first], distributions[second])
        for first, second in PAIRS
    ]


def feature_names() -> list[str]:
    """Stable names for the 66 f2 features."""
    return [f"f2.hellinger.{first}-{second}" for first, second in PAIRS]
