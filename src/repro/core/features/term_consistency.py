"""Feature set f2: 66 term-usage-consistency features.

Pairwise Hellinger distances (Equation 1) between the 12 Table I term
distributions retained for classification (``copyright`` and ``image``
are discarded, Section IV-B): 12 * 11 / 2 = 66 features.  Each feature
measures how consistently terms are used between two locations of the
page — e.g. between the (constrained) landing RDN and the (freely
controlled) title.

The Hellinger block is the extraction hot path (66 pairwise distances
over page-sized vocabularies), so it is computed as one numpy batch via
:func:`repro.text.distributions.hellinger_pairs` instead of 66 Python
loops; the scalar :func:`~repro.text.distributions.hellinger_distance`
remains the reference implementation that the batch path is tested
against.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.datasources import F2_DISTRIBUTION_NAMES, DataSources
from repro.text.distributions import (
    hellinger_distance,
    hellinger_pairs,
    jaccard_distance,
)

#: The ordered distribution pairs, fixed for the lifetime of the model.
PAIRS: tuple[tuple[str, str], ...] = tuple(
    combinations(F2_DISTRIBUTION_NAMES, 2)
)

#: The same pairs as indices into ``F2_DISTRIBUTION_NAMES``.
_PAIR_INDICES: tuple[tuple[int, int], ...] = tuple(
    combinations(range(len(F2_DISTRIBUTION_NAMES)), 2)
)

N_FEATURES = len(PAIRS)
assert N_FEATURES == 66

#: Distance functions usable for f2; "hellinger" is the paper's choice,
#: "jaccard" the ablation comparator.
METRICS = {"hellinger": hellinger_distance, "jaccard": jaccard_distance}


def compute_pairs(sources: DataSources, metric: str = "hellinger") -> np.ndarray:
    """The 66 pairwise distances as one float64 array.

    ``"hellinger"`` runs the vectorised batch; other metrics fall back
    to their scalar pairwise function.
    """
    if metric not in METRICS:
        raise ValueError(
            f"unknown f2 metric {metric!r}; expected one of {sorted(METRICS)}"
        )
    distributions = [
        sources.distribution(name) for name in F2_DISTRIBUTION_NAMES
    ]
    if metric == "hellinger":
        return hellinger_pairs(distributions, _PAIR_INDICES)
    distance = METRICS[metric]
    return np.asarray(
        [
            distance(distributions[first], distributions[second])
            for first, second in _PAIR_INDICES
        ],
        dtype=np.float64,
    )


def compute(sources: DataSources, metric: str = "hellinger") -> list[float]:
    """Compute the 66 pairwise distribution distances for one page."""
    return compute_pairs(sources, metric=metric).tolist()


def feature_names() -> list[str]:
    """Stable names for the 66 f2 features."""
    return [f"f2.hellinger.{first}-{second}" for first, second in PAIRS]
