"""The 212-feature vector of Table III.

Five feature groups, assembled in a fixed order by
:class:`~repro.core.features.extractor.FeatureExtractor`:

========  =====  ==========================================
name      count  contents
========  =====  ==========================================
``f1``    106    URL statistics (Table IV)
``f2``     66    pairwise Hellinger distances (term usage)
``f3``     22    starting/landing mld usage
``f4``     13    RDN usage consistency
``f5``      5    webpage content counts
``fall``  212    all of the above
========  =====  ==========================================
"""

from repro.core.features.extractor import (
    FEATURE_SET_NAMES,
    FeatureExtractor,
    feature_set_mask,
)

__all__ = ["FEATURE_SET_NAMES", "FeatureExtractor", "feature_set_mask"]
