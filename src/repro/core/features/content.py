"""Feature set f5: 5 webpage-content features.

Term counts of text and title, plus counts of input fields, images and
IFrames (Section IV-B): phishing pages tend to carry little text, more
externally loaded HTML/images, and input fields to harvest credentials.
"""

from __future__ import annotations

from repro.core.datasources import DataSources
from repro.text.terms import extract_terms

N_FEATURES = 5


def compute(sources: DataSources) -> list[float]:
    """Compute the 5 f5 features for one page."""
    elements = sources.snapshot.elements
    return [
        float(len(extract_terms(sources.snapshot.text))),
        float(len(extract_terms(sources.snapshot.title))),
        float(elements.input_count),
        float(elements.image_count),
        float(elements.iframe_count),
    ]


def feature_names() -> list[str]:
    """Stable names for the 5 f5 features."""
    return [
        "f5.text_terms",
        "f5.title_terms",
        "f5.input_count",
        "f5.image_count",
        "f5.iframe_count",
    ]
