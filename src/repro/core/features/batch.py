"""Columnar batch feature extraction: one pass per feature group.

The serial :class:`~repro.core.features.extractor.FeatureExtractor`
walks one page at a time: 212 features, each through its own chain of
small Python calls (URL parsing, term extraction, per-column numpy
reductions on tiny arrays).  At batch scale that per-page dispatch —
not arithmetic — dominates the cost.  :class:`BatchExtractor` computes
the same 212 columns over an entire snapshot batch:

* all snapshots are **pre-tokenized once** through batch-scoped memo
  pools (:class:`_BatchPools`) — URL parses, term extractions and
  canonicalizations are pure functions of their input string, so a
  batch-wide pool returns the exact same values while collapsing the
  heavy duplication between pages (shared link URLs, repeated titles
  and brand strings);
* f1's per-link-set statistics are stacked **by set length** into
  ``(sets, stats, links)`` arrays and reduced along the innermost
  contiguous axis — one ``mean``/``median``/``std`` call per length
  class instead of 21 numpy calls per page;
* f2's Hellinger blocks run through
  :func:`~repro.text.distributions.hellinger_pairs_many`, sharing the
  pair-index setup across pages;
* f3/f4/f5 reuse the pooled parses, distributions and term tuples.

Bit-identity contract (enforced by ``tests/core/test_batch_differential``
and the frozen golden feature matrix): every cell equals the serial
``extract`` output **to the last bit**.  Two properties make that hold:

1. memo pools only cache pure functions, so pooling changes *when*
   a value is computed, never *what* it is;
2. f1's stacked reductions run along the innermost axis of a
   C-contiguous ``(sets, stats, links)`` array — numpy's 1-D reduction
   kernels then consume each row exactly as the serial per-column
   ``matrix[:, c]`` reduction does, preserving float summation order.
   (Reducing over a *strided* axis instead would regroup partial sums
   and drift by ulps; the differential harness exists to catch exactly
   that class of regression.)

Batch cache protocol: with an :class:`~repro.parallel.cache.AnalysisCache`
attached, fingerprints are computed once per snapshot, warm rows are
served straight from the feature store (skipping columnarization
entirely), and only the misses are columnarized — consulting and
filling the pair-matrix and distribution stores exactly like the serial
path, then backfilling the feature store row by row.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

import re
import unicodedata
from urllib.parse import urlsplit

from repro.core.datasources import F2_DISTRIBUTION_NAMES, DataSources
from repro.core.features import mld_usage, rdn_usage, term_consistency
from repro.core.features.url_features import STAT_FEATURES
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.parallel.cache import snapshot_fingerprint
from repro.text.distributions import TermDistribution, hellinger_pairs_many
from repro.text.terms import MIN_TERM_LENGTH, _canonicalize_char
from repro.urls.parsing import (
    _HOST_LABEL_RE,
    _SCHEME_RE,
    ParsedUrl,
    _is_ip_address,
    parse_url,
)
from repro.urls.public_suffix import PublicSuffixList
from repro.web.page import PageSnapshot

#: Sentinel distinguishing "never parsed" from "parsed to a failure".
_UNPARSED = object()

#: Cheap pre-filter for the exception-driven ``ipaddress`` probe: every
#: textual IPv4 address is digits and dots only, every textual IPv6
#: address contains a colon (bracketed or not).  Hosts matching neither
#: shape would make ``ipaddress.ip_address`` raise, so skipping the
#: probe for them returns the same ``False`` without paying for the
#: raised-and-caught ``ValueError``.
_IP_CANDIDATE_RE = re.compile(r"^[0-9.]+$|[:\[]")


class _CanonTable(dict):
    """Lazily-built ``str.translate`` table for term canonicalization.

    Maps each codepoint to exactly what
    :func:`repro.text.terms.canonicalize` emits for that character —
    its canonical a-z form, ``""`` for combining marks, ``" "``
    otherwise.  ``canonicalize`` is a per-character map, so translating
    with this table yields the identical string at C speed; the table
    content is a pure function of the codepoint, so lazy population
    order cannot change results.
    """

    def __missing__(self, code: int) -> str:
        char = chr(code)
        mapped = _canonicalize_char(char)
        if mapped:
            result = mapped
        elif unicodedata.combining(char):
            result = ""
        else:
            result = " "
        self[code] = result
        return result


class _MemoPsl(PublicSuffixList):
    """Batch-scoped memo over a :class:`PublicSuffixList`.

    Shares the base instance's parsed rule structures (no re-parse) and
    memoizes :meth:`split` — the one PSL call on ``parse_url``'s hot
    path — by FQDN.  Rule matching is a pure function of the FQDN, so
    the memo returns the exact tuples the base list would; link URLs
    concentrate on few hosts, making this the cheapest big win in the
    batch profile.
    """

    def __init__(self, base: PublicSuffixList) -> None:
        self._rules = base._rules
        self._by_tld = base._by_tld
        self._split_memo: dict[str, tuple[str, str, str]] = {}

    def split(self, fqdn: str) -> tuple[str, str, str]:
        hit = self._split_memo.get(fqdn)
        if hit is None:
            hit = super().split(fqdn)
            self._split_memo[fqdn] = hit
        return hit


class _BatchPools:
    """Batch-scoped memoization of the pure extraction primitives.

    Every pooled function is a pure function of its string input (plus
    the fixed PSL / Alexa configuration), so serving a memoized value
    is indistinguishable from recomputing it — the pools buy speed on
    duplicated inputs, never different floats.  Pools live for one
    batch only; nothing leaks across calls.
    """

    def __init__(self, psl, alexa) -> None:
        self.psl = _MemoPsl(psl)
        self.alexa = alexa
        self._parsed: dict[str, object] = {}
        self._hosts: dict[str, object] = {}
        self._terms: dict[str, tuple[str, ...]] = {}
        self._canonical_mld: dict[str, str] = {}
        self._stats: dict[str, tuple[float, ...]] = {}
        self._dists: dict[tuple[str, ...], TermDistribution] = {}
        self._canon = _CanonTable()

    # -- URLs ----------------------------------------------------------
    def _host_info(self, host: str):
        """Memoized host-derived parse components.

        ``(is_ip, subdomains, mld, public_suffix, rdn)`` for a valid
        host, ``None`` for one ``parse_url`` would reject — all pure
        functions of the (already normalized) host string.  Link URLs
        outnumber distinct hosts roughly 8:1 in real corpora, so
        memoizing at host level removes the IP probe, label validation
        and PSL rule matching from most parses.
        """
        info = self._hosts.get(host, _UNPARSED)
        if info is not _UNPARSED:
            return info
        if _IP_CANDIDATE_RE.search(host) and _is_ip_address(host):
            info = (True, "", None, None, None)
        else:
            info = None
            for label in host.split("."):
                if not _HOST_LABEL_RE.match(label):
                    break
            else:
                subdomains, mld, suffix = self.psl.split(host)
                rdn = f"{mld}.{suffix}" if mld and suffix else (mld or None)
                info = (
                    False, subdomains, mld or None, suffix or None, rdn
                )
        self._hosts[host] = info
        return info

    def _parse_one(self, url: str) -> ParsedUrl | None:
        """``parse_url`` with host-level memoization; ``None`` on failure.

        Mirrors :func:`repro.urls.parsing.parse_url` step for step —
        scheme defaulting, ``urlsplit``, host normalization, port
        fallback — but serves the host-derived fields from
        :meth:`_host_info`.  Succeeds with identical field values
        exactly when ``parse_url`` succeeds (the differential harness
        pins this); failures return ``None`` and the strict accessor
        re-raises through the real parser.
        """
        if not isinstance(url, str) or not url.strip():
            return None
        url = url.strip()
        if not _SCHEME_RE.match(url):
            url = "http://" + url
        try:
            split = urlsplit(url)
        except ValueError:
            return None
        host = (split.hostname or "").strip().strip(".").lower()
        if not host:
            return None
        info = self._host_info(host)
        if info is None:
            return None
        try:
            port = split.port
        except ValueError:
            port = None
        is_ip, subdomains, mld, suffix, rdn = info
        return ParsedUrl(
            raw=url,
            protocol=split.scheme.lower(),
            fqdn=host,
            port=port,
            path=split.path or "",
            query=split.query or "",
            fragment=split.fragment or "",
            is_ip=is_ip,
            subdomains=subdomains,
            mld=mld,
            public_suffix=suffix,
            rdn=rdn,
        )

    def _parse(self, url: str) -> ParsedUrl | None:
        hit = self._parsed.get(url, _UNPARSED)
        if hit is _UNPARSED:
            hit = self._parse_one(url)
            self._parsed[url] = hit
        return hit  # type: ignore[return-value]

    def try_parse(self, url: str) -> ParsedUrl | None:
        """Pooled lenient parse (``None`` for unparsable URLs)."""
        return self._parse(url)

    def parse(self, url: str) -> ParsedUrl:
        """Pooled strict parse; unparsable URLs raise like the serial path."""
        parsed = self._parse(url)
        if parsed is None:
            # Re-parse to raise the original error with its message.
            return parse_url(url, self.psl)
        return parsed

    # -- text ----------------------------------------------------------
    def terms(self, text: str) -> tuple[str, ...]:
        """Pooled ``extract_terms`` (immutable, safe to share).

        Canonicalizes through the :class:`_CanonTable` translate table —
        the identical string ``canonicalize`` builds char by char, at C
        speed — then applies the same split / minimum-length filter.
        """
        hit = self._terms.get(text)
        if hit is None:
            canonical = text.translate(self._canon)
            hit = tuple(
                [
                    term
                    for term in canonical.split()
                    if len(term) >= MIN_TERM_LENGTH
                ]
            )
            self._terms[text] = hit
        return hit

    def dist(self, terms: tuple[str, ...]) -> TermDistribution:
        """Pooled :meth:`TermDistribution.from_terms`.

        A distribution is a pure function of its term *sequence*
        (``Counter`` insertion order fixes ``_probs`` iteration order),
        and distributions are immutable, so sharing one instance across
        pages with identical term sequences — repeated titles, shared
        RDN terms — is indistinguishable from rebuilding it.
        """
        hit = self._dists.get(terms)
        if hit is None:
            hit = TermDistribution.from_terms(terms)
            self._dists[terms] = hit
        return hit

    def canonical_mld(self, mld: str | None) -> str:
        """Pooled canonical mld string (f3's ``_canonical_mld``)."""
        if not mld:
            return ""
        hit = self._canonical_mld.get(mld)
        if hit is None:
            hit = mld.translate(self._canon).replace(" ", "")
            self._canonical_mld[mld] = hit
        return hit

    # -- f1 per-URL vectors --------------------------------------------
    def stat_vector(self, url: ParsedUrl) -> tuple[float, ...]:
        """Pooled Table IV features 3-9 (``url_features._stat_vector``)."""
        hit = self._stats.get(url.raw)
        if hit is None:
            mld = url.mld or ""
            hit = (
                float(url.level_domain_count),
                float(len(url.raw)),
                float(len(url.fqdn)),
                float(len(mld)),
                float(len(self.terms(url.raw))),
                float(len(self.terms(mld))),
                float(self.alexa.rank(url.rdn)),
            )
            self._stats[url.raw] = hit
        return hit

    def full_vector(self, url: ParsedUrl) -> list[float]:
        """All nine Table IV features (``url_features._full_vector``)."""
        free_url_dots = url.subdomains.count(".") + (1 if url.subdomains else 0)
        free_url_dots += url.path.count(".") + url.query.count(".")
        return [
            1.0 if url.uses_https else 0.0,
            float(free_url_dots),
            *self.stat_vector(url),
        ]


class _PooledSources(DataSources):
    """A :class:`DataSources` whose string primitives go through pools.

    Overrides only the seams where the base class calls
    ``parse_url``/``extract_terms`` directly; every derived quantity
    (partitions, distributions, degradation notes) keeps the base-class
    logic, so downstream consumers see identical values.
    """

    def __init__(self, snapshot: PageSnapshot, pools: _BatchPools, **kwargs):
        super().__init__(snapshot, psl=pools.psl, **kwargs)
        self._pools = pools

    def _parse_many(self, urls) -> list[ParsedUrl]:
        pooled = self._pools
        return [
            parsed
            for parsed in (pooled.try_parse(url) for url in urls)
            if parsed is not None
        ]

    @cached_property
    def starting(self) -> ParsedUrl:
        return self._pools.parse(self.snapshot.starting_url)

    @cached_property
    def landing(self) -> ParsedUrl:
        return self._pools.parse(self.snapshot.landing_url)

    # Instance-level overrides shadow the base staticmethods for `self.`
    # calls; external `DataSources.free_url_terms(...)` class calls keep
    # the unpooled base behaviour (same values either way).
    def free_url_terms(self, url: ParsedUrl):  # type: ignore[override]
        return self._pools.terms(url.free_url)

    def rdn_terms(self, url: ParsedUrl):  # type: ignore[override]
        return self._pools.terms(url.rdn) if url.rdn else ()

    def _free_url_distribution(self, urls) -> TermDistribution:
        pooled = self._pools
        terms: list[str] = []
        for url in urls:
            terms.extend(pooled.terms(url.free_url))
        return pooled.dist(tuple(terms))

    def _rdn_distribution(self, urls) -> TermDistribution:
        pooled = self._pools
        terms: list[str] = []
        for url in urls:
            if url.rdn:
                terms.extend(pooled.terms(url.rdn))
        return pooled.dist(tuple(terms))

    @cached_property
    def d_text(self) -> TermDistribution:
        return self._pools.dist(self._pools.terms(self.snapshot.text))

    @cached_property
    def d_title(self) -> TermDistribution:
        return self._pools.dist(self._pools.terms(self.snapshot.title))

    @cached_property
    def d_copyright(self) -> TermDistribution:
        return self._pools.dist(
            self._pools.terms(self.snapshot.copyright_notice)
        )

    @cached_property
    def d_start(self) -> TermDistribution:
        return self._pools.dist(self._pools.terms(self.starting.free_url))

    @cached_property
    def d_land(self) -> TermDistribution:
        return self._pools.dist(self._pools.terms(self.landing.free_url))

    @cached_property
    def d_startrdn(self) -> TermDistribution:
        return self._rdn_distribution((self.starting,))

    @cached_property
    def d_landrdn(self) -> TermDistribution:
        return self._rdn_distribution((self.landing,))


#: Column offsets of the five feature groups in the 212-wide layout.
_F1_END = 106
_F2_END = _F1_END + 66
_F3_END = _F2_END + 22
_F4_END = _F3_END + 13
_N_FEATURES = _F4_END + 5

#: f1 layout constants: 9 starting + 9 landing singles, then per link
#: set 1 https ratio + 7 stats x (mean, median, std).
_F1_SINGLES = 18
_F1_SET_WIDTH = 1 + len(STAT_FEATURES) * 3


class BatchExtractor:
    """Columnar batch companion of one
    :class:`~repro.core.features.extractor.FeatureExtractor`.

    Shares the extractor's configuration (Alexa ranking, PSL, term
    metric) and its :class:`~repro.parallel.cache.AnalysisCache`;
    :meth:`extract_batch` returns the same matrix as stacking the
    serial ``extract`` rows, bit for bit, with warm cache rows skipping
    columnarization entirely.
    """

    def __init__(self, extractor) -> None:
        self.extractor = extractor

    def extract_batch(
        self,
        snapshots,
        tracer: AnyTracer = NULL_TRACER,
        keys: list[str | None] | None = None,
    ) -> np.ndarray:
        """Feature matrix for a snapshot batch, one columnar pass per group.

        ``keys`` optionally carries precomputed snapshot fingerprints
        (one per snapshot, ``None`` entries recomputed on demand) so
        callers that already fingerprinted — the pipeline's verdict
        memo, the serving engine — don't pay the hash twice.  Emits one
        ``extract.batch`` span carrying batch size and cache-hit count.
        """
        snapshots = list(snapshots)
        extractor = self.extractor
        out = np.zeros((len(snapshots), _N_FEATURES), dtype=np.float64)
        if not snapshots:
            return out
        cache = extractor.cache
        with tracer.span("extract.batch", n_pages=len(snapshots)) as span:
            if cache is not None:
                if keys is None:
                    keys = [None] * len(snapshots)
                misses: list[int] = []
                hits = 0
                for index, snapshot in enumerate(snapshots):
                    if keys[index] is None:
                        keys[index] = snapshot_fingerprint(snapshot)
                    row = cache.get_features(keys[index])
                    if row is None:
                        misses.append(index)
                    else:
                        out[index] = row
                        hits += 1
                span.set(cache_hits=hits)
            else:
                keys = [None] * len(snapshots)
                misses = list(range(len(snapshots)))
            if not misses:
                return out
            pools = _BatchPools(extractor.psl, extractor.alexa)
            sources = [
                _PooledSources(
                    snapshots[index],
                    pools,
                    distribution_cache=(
                        cache.distributions if cache is not None else None
                    ),
                    cache_key=keys[index],
                )
                for index in misses
            ]
            block = np.zeros((len(misses), _N_FEATURES), dtype=np.float64)
            self._f1_block(sources, pools, block[:, :_F1_END])
            self._f2_block(sources, [keys[i] for i in misses],
                           block[:, _F1_END:_F2_END])
            self._f3_block(sources, pools, block[:, _F2_END:_F3_END])
            for row, src in enumerate(sources):
                block[row, _F3_END:_F4_END] = rdn_usage.compute(src)
                elements = src.snapshot.elements
                block[row, _F4_END:] = (
                    float(len(pools.terms(src.snapshot.text))),
                    float(len(pools.terms(src.snapshot.title))),
                    float(elements.input_count),
                    float(elements.image_count),
                    float(elements.iframe_count),
                )
            for row, index in enumerate(misses):
                out[index] = block[row]
                if cache is not None:
                    cache.put_features(keys[index], block[row])
        return out

    # ------------------------------------------------------------------
    def _f1_block(
        self, sources: list[_PooledSources], pools: _BatchPools,
        block: np.ndarray,
    ) -> None:
        """f1, columnar: singles per page, link-set stats by length class.

        Sets with the same link count stack into one C-contiguous
        ``(sets, 7 stats, links)`` array; reducing along the innermost
        axis computes every set's means/medians/stds in three numpy
        calls per length class while preserving the serial per-column
        summation order (see module docstring, property 2).
        """
        # length -> [(row, set index, urls)]
        by_length: dict[int, list[tuple[int, int, list[ParsedUrl]]]] = {}
        for row, src in enumerate(sources):
            block[row, 0:9] = pools.full_vector(src.starting)
            block[row, 9:18] = pools.full_vector(src.landing)
            link_sets = (
                src.internal_logged, src.external_logged,
                src.internal_href, src.external_href,
            )
            for set_index, urls in enumerate(link_sets):
                if urls:  # empty sets keep their all-zero columns
                    by_length.setdefault(len(urls), []).append(
                        (row, set_index, urls)
                    )
        for length, entries in sorted(by_length.items()):
            stacked = np.empty(
                (len(entries), length, len(STAT_FEATURES)), dtype=np.float64
            )
            for entry, (_row, _set_index, urls) in enumerate(entries):
                for position, url in enumerate(urls):
                    stacked[entry, position] = pools.stat_vector(url)
            # (sets, links, stats) -> contiguous (sets, stats, links):
            # each reduced row is then the exact byte sequence the serial
            # path reduces as matrix[:, column].
            columns = np.ascontiguousarray(stacked.transpose(0, 2, 1))
            means = columns.mean(axis=2)
            medians = np.median(columns, axis=2)
            stds = columns.std(axis=2)
            for entry, (row, set_index, urls) in enumerate(entries):
                base = _F1_SINGLES + set_index * _F1_SET_WIDTH
                # Exact replacement for np.mean([uses_https...]): sums of
                # 0/1 flags are integers, exact in float64 under any
                # summation order, and the final division rounds once
                # identically in both forms.
                block[row, base] = sum(
                    url.uses_https for url in urls
                ) / len(urls)
                stop = base + _F1_SET_WIDTH
                block[row, base + 1:stop:3] = means[entry]
                block[row, base + 2:stop:3] = medians[entry]
                block[row, base + 3:stop:3] = stds[entry]

    def _f2_block(
        self, sources: list[_PooledSources], keys: list[str | None],
        block: np.ndarray,
    ) -> None:
        """f2, batched: pair matrices from cache or one batched kernel."""
        extractor = self.extractor
        cache = extractor.cache
        metric = extractor.term_metric
        pending: list[int] = []
        pending_dists: list[list[TermDistribution]] = []
        for row, (src, key) in enumerate(zip(sources, keys)):
            if cache is not None and key is not None:
                pairs = cache.get_pair_matrix((metric, key))
                if pairs is not None:
                    block[row] = pairs
                    continue
            pending.append(row)
            pending_dists.append(
                [src.distribution(name) for name in F2_DISTRIBUTION_NAMES]
            )
        if not pending:
            return
        if metric == "hellinger":
            computed = hellinger_pairs_many(
                pending_dists, term_consistency._PAIR_INDICES
            )
        else:
            distance = term_consistency.METRICS[metric]
            computed = np.asarray(
                [
                    [
                        distance(dists[first], dists[second])
                        for first, second in term_consistency._PAIR_INDICES
                    ]
                    for dists in pending_dists
                ],
                dtype=np.float64,
            )
        for position, row in enumerate(pending):
            block[row] = computed[position]
            if cache is not None and keys[row] is not None:
                cache.put_pair_matrix((metric, keys[row]), computed[position])

    def _f3_block(
        self, sources: list[_PooledSources], pools: _BatchPools,
        block: np.ndarray,
    ) -> None:
        """f3 with pooled canonical mlds; distributions are already hot
        on each instance from the f2 pass."""
        for row, src in enumerate(sources):
            start_mld = pools.canonical_mld(src.starting.mld)
            land_mld = pools.canonical_mld(src.landing.mld)
            col = 0
            for mld in (start_mld, land_mld):
                for source in mld_usage.BINARY_SOURCES:
                    block[row, col] = (
                        1.0 if mld and mld in src.distribution(source) else 0.0
                    )
                    col += 1
            for mld in (start_mld, land_mld):
                for source in mld_usage.MASS_SOURCES:
                    if mld:
                        block[row, col] = src.distribution(
                            source
                        ).probability_mass_of_substrings(mld)
                    col += 1
