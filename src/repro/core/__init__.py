"""The paper's primary contribution.

* :mod:`repro.core.datasources` — Table I term distributions and the
  control/constraint partition of Table II;
* :mod:`repro.core.features` — the 212-feature vector (Table III);
* :mod:`repro.core.detector` — the Gradient Boosting phishing detector
  (Section IV);
* :mod:`repro.core.keyterms` — keyterm extraction (Section V-A);
* :mod:`repro.core.target` — the 5-step target identification process
  (Section V-B);
* :mod:`repro.core.pipeline` — the combined system (detector + target
  identification as a false-positive filter).
"""

from repro.core.datasources import DataSources
from repro.core.detector import PhishingDetector
from repro.core.features import FEATURE_SET_NAMES, FeatureExtractor
from repro.core.keyterms import KeytermExtractor, Keyterms
from repro.core.pipeline import KnowYourPhish, PageVerdict
from repro.core.target import TargetIdentification, TargetIdentifier

__all__ = [
    "DataSources",
    "FEATURE_SET_NAMES",
    "FeatureExtractor",
    "KeytermExtractor",
    "Keyterms",
    "KnowYourPhish",
    "PageVerdict",
    "PhishingDetector",
    "TargetIdentification",
    "TargetIdentifier",
]
