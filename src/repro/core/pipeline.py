"""The combined system: detection + target identification (Section III-C).

Both components run in a pipeline: the phishing detection system
tentatively flags a page; flagged pages are fed to the target
identification system, which either names the purported target or — when
it confirms the page's own domain as legitimate — removes the false
positive (the Section VI-D experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datasources import DataSources
from repro.core.detector import PhishingDetector
from repro.core.target import TargetIdentification, TargetIdentifier
from repro.web.page import PageSnapshot


@dataclass
class PageVerdict:
    """The pipeline's final decision for one page.

    ``verdict`` is one of:

    * ``"legitimate"`` — classifier below threshold, or classifier said
      phish but the target identifier confirmed the page legitimate;
    * ``"phish"`` — classifier flagged and a target was identified;
    * ``"suspicious"`` — classifier flagged, no target found, no
      legitimate confirmation.
    """

    verdict: str
    confidence: float
    targets: list[str]
    identification: TargetIdentification | None = None

    @property
    def is_phish(self) -> bool:
        """True for the final ``"phish"`` verdict."""
        return self.verdict == "phish"

    @property
    def top_target(self) -> str | None:
        """Most likely target mld, when one was identified."""
        return self.targets[0] if self.targets else None


class KnowYourPhish:
    """End-to-end system: detector first, target identification second.

    Parameters
    ----------
    detector:
        A (trained) :class:`~repro.core.detector.PhishingDetector`.
    identifier:
        A :class:`~repro.core.target.TargetIdentifier`; optional — without
        it the pipeline reduces to the bare detector and ``"suspicious"``
        never occurs.
    treat_suspicious_as_phish:
        How the final binary decision counts ``"suspicious"`` pages
        (default True: no legitimate confirmation means the page stays
        blocked).
    """

    def __init__(
        self,
        detector: PhishingDetector,
        identifier: TargetIdentifier | None = None,
        treat_suspicious_as_phish: bool = True,
    ):
        self.detector = detector
        self.identifier = identifier
        self.treat_suspicious_as_phish = treat_suspicious_as_phish

    def analyze(self, snapshot: PageSnapshot) -> PageVerdict:
        """Run the full pipeline on one page snapshot."""
        sources = DataSources(
            snapshot,
            psl=self.detector.extractor.psl,
            ocr=self.identifier.ocr if self.identifier else None,
        )
        vector = self.detector.extractor.extract_from_sources(sources)
        confidence = float(
            self.detector.predict_proba(vector.reshape(1, -1))[0]
        )
        if confidence < self.detector.threshold:
            return PageVerdict(
                verdict="legitimate", confidence=confidence, targets=[]
            )
        if self.identifier is None:
            return PageVerdict(
                verdict="phish", confidence=confidence, targets=[]
            )

        identification = self.identifier.identify(sources)
        if identification.verdict == "legitimate":
            final = "legitimate"
        elif identification.verdict == "phish":
            final = "phish"
        else:
            final = "suspicious"
        return PageVerdict(
            verdict=final,
            confidence=confidence,
            targets=list(identification.targets),
            identification=identification,
        )

    def is_blocked(self, verdict: PageVerdict) -> bool:
        """Binary blocking decision derived from a verdict."""
        if verdict.verdict == "phish":
            return True
        if verdict.verdict == "suspicious":
            return self.treat_suspicious_as_phish
        return False
