"""The combined system: detection + target identification (Section III-C).

Both components run in a pipeline: the phishing detection system
tentatively flags a page; flagged pages are fed to the target
identification system, which either names the purported target or — when
it confirms the page's own domain as legitimate — removes the false
positive (the Section VI-D experiment).

The pipeline degrades gracefully when auxiliary data sources fail, the
way a production deployment facing the live web must:

* search engine unreachable (or its circuit breaker open) — flagged
  pages get a detector-only verdict tagged ``degraded`` instead of an
  exception;
* OCR failure — the OCR keyterm list is skipped (identification step 4
  never runs) and the verdict is tagged;
* partial snapshot (truncated HTML, lost screenshot) — features are
  extracted from whatever sources did load, and the verdict carries the
  load's degradation tags.

:meth:`KnowYourPhish.analyze_many` extends this to batches: pages that
cannot be loaded at all are quarantined as structured error records
rather than aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.datasources import DataSources
from repro.core.detector import PhishingDetector
from repro.core.features.extractor import group_means
from repro.core.target import TargetIdentification, TargetIdentifier
from repro.obs.metrics import NULL_METRICS, AnyMetrics
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.parallel.cache import snapshot_fingerprint
from repro.resilience.batch import BatchReport, analyze_many
from repro.resilience.browser import LoadResult
from repro.resilience.errors import DeadlineExceeded, SearchUnavailableError
from repro.resilience.retry import Deadline
from repro.web.page import PageSnapshot


@dataclass
class PageVerdict:
    """The pipeline's final decision for one page.

    ``verdict`` is one of:

    * ``"legitimate"`` — classifier below threshold, or classifier said
      phish but the target identifier confirmed the page legitimate;
    * ``"phish"`` — classifier flagged and a target was identified;
    * ``"suspicious"`` — classifier flagged, no target found, no
      legitimate confirmation.

    ``degraded`` marks verdicts produced with reduced-fidelity inputs
    (search outage, OCR failure, partial snapshot); ``degradations``
    lists the specific tags.
    """

    verdict: str
    confidence: float
    targets: list[str]
    identification: TargetIdentification | None = None
    degraded: bool = False
    degradations: list[str] = field(default_factory=list)

    @property
    def is_phish(self) -> bool:
        """True for the final ``"phish"`` verdict."""
        return self.verdict == "phish"

    @property
    def top_target(self) -> str | None:
        """Most likely target mld, when one was identified."""
        return self.targets[0] if self.targets else None


class KnowYourPhish:
    """End-to-end system: detector first, target identification second.

    Parameters
    ----------
    detector:
        A (trained) :class:`~repro.core.detector.PhishingDetector`.
    identifier:
        A :class:`~repro.core.target.TargetIdentifier`; optional — without
        it the pipeline reduces to the bare detector and ``"suspicious"``
        never occurs.
    treat_suspicious_as_phish:
        How the final binary decision counts ``"suspicious"`` pages
        (default True: no legitimate confirmation means the page stays
        blocked).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` receiving the
        ``analyze`` span tree of every call (``extract.f1``..``f5``,
        ``classify``, ``target.identify``).  Defaults to the zero-cost
        :data:`~repro.obs.trace.NULL_TRACER`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        ``verdicts_total{verdict=...}`` / ``verdicts_degraded_total``
        counters.  Defaults to :data:`~repro.obs.metrics.NULL_METRICS`.

    Tracing and metrics never perturb verdicts: with or without them
    the pipeline's outputs are bit-identical.
    """

    def __init__(
        self,
        detector: PhishingDetector,
        identifier: TargetIdentifier | None = None,
        treat_suspicious_as_phish: bool = True,
        tracer: AnyTracer = NULL_TRACER,
        metrics: AnyMetrics = NULL_METRICS,
    ):
        self.detector = detector
        self.identifier = identifier
        self.treat_suspicious_as_phish = treat_suspicious_as_phish
        self.tracer = tracer
        self.metrics = metrics
        self._quality_importances: np.ndarray | None = None

    # -- quality taps --------------------------------------------------
    def _feature_importances(self) -> np.ndarray | None:
        """Cached per-feature importances of the trained ensemble.

        Computed once per pipeline (the ensemble is frozen after
        training) and only when a quality monitor is armed; models
        without ``feature_importances`` disable the top-contribution
        annotation rather than failing the tap.
        """
        if self._quality_importances is None:
            importances = getattr(
                self.detector.model, "feature_importances", None
            )
            if importances is None:
                return None
            self._quality_importances = np.asarray(
                importances(), dtype=float
            )
        return self._quality_importances

    def _top_contributions(
        self, vector: np.ndarray, k: int = 3
    ) -> list[tuple[str, float]] | None:
        """Top-``k`` importance-weighted feature contributions.

        Ranked by absolute importance × value with a stable sort, so
        ties resolve by feature index and the flight-recorder payload
        is deterministic.
        """
        importances = self._feature_importances()
        if importances is None:
            return None
        contributions = importances * np.asarray(vector, dtype=float)
        order = np.argsort(-np.abs(contributions), kind="stable")[:k]
        names = self.detector.extractor.feature_names
        return [(names[i], float(contributions[i])) for i in order]

    def _quality_tap(
        self, quality, url: str, vector: np.ndarray, verdict: PageVerdict
    ) -> None:
        """Feed one finished verdict into a quality monitor.

        Read-only: the monitor sees the score, the final label, the
        per-group feature means (the drift signals) and the top
        feature contributions, after the verdict is fully built — it
        can never perturb the verdict itself.
        """
        means = group_means(vector)
        quality.observe_verdict(
            score=verdict.confidence,
            verdict=verdict.verdict,
            groups={name: float(vals[0]) for name, vals in means.items()},
            degraded=verdict.degraded,
            url=url,
            top_features=self._top_contributions(vector),
        )

    def analyze(
        self,
        page: PageSnapshot | LoadResult,
        tracer: AnyTracer | None = None,
        metrics: AnyMetrics | None = None,
        deadline: Deadline | None = None,
        quality=None,
    ) -> PageVerdict:
        """Run the full pipeline on one page.

        Accepts either a bare :class:`PageSnapshot` or a
        :class:`~repro.resilience.browser.LoadResult` (whose load-time
        degradation tags then seed the verdict's).  Auxiliary-source
        failures degrade the verdict instead of raising: a search outage
        yields a detector-only verdict tagged ``search_unavailable``,
        an OCR failure tags ``ocr_failed`` and skips the OCR keyterms.

        ``deadline`` caps the target-identification stage: once the
        request's budget is exhausted — before or during the search
        queries — a flagged page keeps the detector-only verdict tagged
        ``deadline_exhausted`` instead of searching past the budget.
        Classification itself always completes (it is local compute and
        the page is already in hand).

        ``tracer``/``metrics`` override the pipeline-level instruments
        for this call (used by the batch layer, which gives each mapped
        page its own tracer so span dumps stay deterministic).

        ``quality`` optionally names a
        :class:`~repro.obs.quality.QualityMonitor`; the finished
        verdict (score, label, per-group feature means, top feature
        contributions) is fed to it read-only after it is built, so
        monitored and unmonitored calls return bit-identical verdicts.
        """
        tracer = self.tracer if tracer is None else tracer
        metrics = self.metrics if metrics is None else metrics
        degradations: list[str] = []
        if isinstance(page, LoadResult):
            degradations.extend(page.degradations)
            snapshot = page.snapshot
        else:
            snapshot = page
        with tracer.span("analyze", url=snapshot.starting_url) as root:
            cache = self.detector.extractor.cache
            sources = DataSources(
                snapshot,
                psl=self.detector.extractor.psl,
                ocr=self.identifier.ocr if self.identifier else None,
                distribution_cache=cache.distributions if cache else None,
                cache_key=snapshot_fingerprint(snapshot) if cache else None,
            )

            def _verdict(
                final: str, confidence: float, **kwargs
            ) -> PageVerdict:
                tags = degradations + sorted(sources.degradation_notes)
                root.set(verdict=final, degraded=bool(tags))
                metrics.inc("verdicts_total", verdict=final)
                if tags:
                    metrics.inc("verdicts_degraded_total")
                result = PageVerdict(
                    verdict=final,
                    confidence=confidence,
                    degraded=bool(tags),
                    degradations=tags,
                    **kwargs,
                )
                if quality is not None:
                    self._quality_tap(
                        quality, snapshot.starting_url, vector, result
                    )
                return result

            vector = self.detector.extractor.extract_from_sources(
                sources, tracer=tracer
            )
            with tracer.span("classify"):
                confidence = float(
                    self.detector.predict_proba(vector.reshape(1, -1))[0]
                )
            if confidence < self.detector.threshold:
                return _verdict("legitimate", confidence, targets=[])
            if self.identifier is None:
                return _verdict("phish", confidence, targets=[])
            if deadline is not None and deadline.expired():
                degradations.append("deadline_exhausted")
                return _verdict("phish", confidence, targets=[])

            try:
                with tracer.span("target.identify") as target_span:
                    identification = self.identifier.identify(
                        sources, deadline=deadline
                    )
                    target_span.set(
                        step=identification.step,
                        verdict=identification.verdict,
                    )
            except SearchUnavailableError:
                # Search down / circuit open: fall back to the detector's
                # tentative flag rather than losing the page entirely.
                degradations.append("search_unavailable")
                return _verdict("phish", confidence, targets=[])
            except DeadlineExceeded:
                # The budget ran out mid-identification: keep the
                # detector's tentative flag rather than blowing the
                # request's deadline on further searches.
                degradations.append("deadline_exhausted")
                return _verdict("phish", confidence, targets=[])
            if identification.verdict == "legitimate":
                # The identifier confirmed the page's own domain: the
                # detector's flag was a false positive and is filtered.
                metrics.inc("fp_filtered_total")
                final = "legitimate"
            elif identification.verdict == "phish":
                final = "phish"
            else:
                final = "suspicious"
            return _verdict(
                final,
                confidence,
                targets=list(identification.targets),
                identification=identification,
            )

    def analyze_batch(
        self,
        pages,
        tracer: AnyTracer | None = None,
        metrics: AnyMetrics | None = None,
        quality=None,
    ) -> list[PageVerdict]:
        """Columnar analysis of already-loaded pages, in input order.

        The batch counterpart of :meth:`analyze`: features come from
        one :meth:`~repro.core.features.extractor.FeatureExtractor.extract_batch`
        pass, classification from one compiled-ensemble
        ``predict_proba`` call, and only the flagged pages proceed to
        per-page target identification — in input order, so stateful
        collaborators (search engine, circuit breakers, caches) see the
        exact call sequence of the per-page loop.  Verdicts — final
        label, confidence, targets, degradation tags — and metric
        increments are identical to ``[self.analyze(page) for page in
        pages]``; the differential harness pins this.

        Unlike :meth:`analyze` this path takes no per-page deadline:
        callers with page budgets (the budgeted batch path, budgeted
        serve requests) keep the per-page route, whose deadline reads
        interleave with the clock exactly as before.

        Tracing emits a single ``analyze.batch`` span (with the
        ``extract.batch`` child) instead of per-page ``analyze`` trees,
        so observed runs that must preserve per-page span dumps should
        keep calling :meth:`analyze`.

        ``quality`` taps a :class:`~repro.obs.quality.QualityMonitor`
        with each finished verdict and its matrix row's group means,
        in input order — the same observation stream the per-page loop
        feeds, so drift windows cannot tell the two paths apart.
        """
        tracer = self.tracer if tracer is None else tracer
        metrics = self.metrics if metrics is None else metrics
        pages = list(pages)
        if not pages:
            return []
        load_tags: list[list[str]] = []
        snapshots: list[PageSnapshot] = []
        for page in pages:
            if isinstance(page, LoadResult):
                load_tags.append(list(page.degradations))
                snapshots.append(page.snapshot)
            else:
                load_tags.append([])
                snapshots.append(page)
        cache = self.detector.extractor.cache
        keys: list[str | None] = (
            [snapshot_fingerprint(snapshot) for snapshot in snapshots]
            if cache
            else [None] * len(snapshots)
        )

        def _finish(
            final: str,
            confidence: float,
            degradations: list[str],
            sources: DataSources | None,
            **kwargs,
        ) -> PageVerdict:
            notes = sorted(sources.degradation_notes) if sources else []
            tags = degradations + notes
            metrics.inc("verdicts_total", verdict=final)
            if tags:
                metrics.inc("verdicts_degraded_total")
            result = PageVerdict(
                verdict=final,
                confidence=confidence,
                degraded=bool(tags),
                degradations=tags,
                **kwargs,
            )
            if quality is not None:
                self._quality_tap(
                    quality,
                    snapshots[index].starting_url,
                    matrix[index],
                    result,
                )
            return result

        with tracer.span("analyze.batch", n_pages=len(pages)) as root:
            matrix = self.detector.extractor.extract_batch(
                snapshots, tracer=tracer, keys=keys
            )
            with tracer.span("classify", n_pages=len(pages)):
                confidences = self.detector.predict_proba(matrix)
            verdicts: list[PageVerdict] = []
            flagged = 0
            for index, snapshot in enumerate(snapshots):
                confidence = float(confidences[index])
                degradations = list(load_tags[index])
                if confidence < self.detector.threshold:
                    verdicts.append(
                        _finish("legitimate", confidence, degradations,
                                None, targets=[])
                    )
                    continue
                flagged += 1
                if self.identifier is None:
                    verdicts.append(
                        _finish("phish", confidence, degradations,
                                None, targets=[])
                    )
                    continue
                sources = DataSources(
                    snapshot,
                    psl=self.detector.extractor.psl,
                    ocr=self.identifier.ocr,
                    distribution_cache=(
                        cache.distributions if cache else None
                    ),
                    cache_key=keys[index],
                )
                try:
                    with tracer.span("target.identify") as target_span:
                        identification = self.identifier.identify(sources)
                        target_span.set(
                            step=identification.step,
                            verdict=identification.verdict,
                        )
                except SearchUnavailableError:
                    degradations.append("search_unavailable")
                    verdicts.append(
                        _finish("phish", confidence, degradations,
                                sources, targets=[])
                    )
                    continue
                except DeadlineExceeded:
                    degradations.append("deadline_exhausted")
                    verdicts.append(
                        _finish("phish", confidence, degradations,
                                sources, targets=[])
                    )
                    continue
                if identification.verdict == "legitimate":
                    metrics.inc("fp_filtered_total")
                    final = "legitimate"
                elif identification.verdict == "phish":
                    final = "phish"
                else:
                    final = "suspicious"
                verdicts.append(
                    _finish(
                        final,
                        confidence,
                        degradations,
                        sources,
                        targets=list(identification.targets),
                        identification=identification,
                    )
                )
            root.set(flagged=flagged)
        return verdicts

    def analyze_many(
        self, urls, browser, pool=None, page_budget=None, quality=None
    ) -> BatchReport:
        """Analyze a batch of URLs, quarantining unloadable pages.

        Thin forwarding wrapper around
        :func:`repro.resilience.batch.analyze_many`; see there for the
        quarantine semantics.  ``browser`` is ideally a
        :class:`~repro.resilience.browser.ResilientBrowser` so transient
        faults are retried before a page is given up on.  ``pool`` is an
        optional :class:`~repro.parallel.WorkerPool`; loads stay serial,
        per-page analysis fans out, and the report is identical to the
        serial run (same verdicts, same order).  ``page_budget`` gives
        every page its own end-to-end deadline (load + analysis); see
        the batch layer for how leftover budget carries into analysis.
        The pipeline's tracer and metrics observe the whole batch (each
        page's span tree is spliced back in input order, so dumps are
        deterministic across backends).

        ``quality`` taps a :class:`~repro.obs.quality.QualityMonitor`
        with each analyzed page's verdict *after* the batch completes,
        in input order — a post-hoc feed from the report, so the
        observation stream (and every drift window over it) is
        identical across the serial, thread and process backends.
        Vectors are not retained by the batch layer, so this path
        feeds score drift and the degraded-rate SLOs but not the
        per-feature-group signals.
        """
        report = analyze_many(
            self, browser, urls, pool=pool,
            tracer=self.tracer, metrics=self.metrics,
            page_budget=page_budget,
        )
        if quality is not None:
            for page in report.analyzed:
                verdict = page.verdict
                quality.observe_verdict(
                    score=verdict.confidence,
                    verdict=verdict.verdict,
                    degraded=verdict.degraded,
                    url=page.url,
                )
        return report

    def is_blocked(self, verdict: PageVerdict) -> bool:
        """Binary blocking decision derived from a verdict."""
        if verdict.verdict == "phish":
            return True
        if verdict.verdict == "suspicious":
            return self.treat_suspicious_as_phish
        return False
