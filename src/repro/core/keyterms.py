"""Keyterm extraction (Section V-A).

A *keyterm* is a term appearing in several data sources of the page.
Five user-visible source sets are considered:

* URL terms: ``T_start ∪ T_startrdn ∪ T_land ∪ T_landrdn``
* Title: ``T_title``
* Text: ``T_text``
* Copyright: ``T_copyright``
* Links: ``T_intlink ∪ T_extlink`` (FreeURL terms of the HREF links)

Three keyterm flavours, applied in sequence by the identification
process:

* **boosted prominent terms** — terms in >= 2 source sets, ranked by
  overall frequency in the visible parts, top N;
* **prominent terms** — same, but co-occurrence counted only between
  text and HREF links is discarded (news sites name links after their
  URLs, which floods the intersection with irrelevant terms);
* **OCR prominent terms** — terms recognised in the screenshot that also
  occur in at least one of the five source sets (slowest, used last).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.datasources import DataSources
from repro.resilience.errors import OcrFailure
from repro.text.terms import extract_terms
from repro.web.ocr import SimulatedOcr

#: Number of keyterms per list (N=5 "proved sufficient to represent a
#: webpage" — Section V-A, citing Cantina).
DEFAULT_N = 5

_SOURCE_SETS = ("url", "title", "text", "copyright", "links")


@dataclass
class Keyterms:
    """The keyterm lists extracted from one page."""

    boosted_prominent: list[str] = field(default_factory=list)
    prominent: list[str] = field(default_factory=list)
    ocr_prominent: list[str] = field(default_factory=list)


class KeytermExtractor:
    """Extracts the three keyterm lists of Section V-A.

    Parameters
    ----------
    n_terms:
        Keyterms per list (the paper's N; default 5).
    ocr:
        OCR engine for the OCR-prominent list; ``None`` leaves that list
        empty (the identification process then skips step 4).
    """

    def __init__(self, n_terms: int = DEFAULT_N, ocr: SimulatedOcr | None = None):
        if n_terms < 1:
            raise ValueError(f"n_terms must be >= 1, got {n_terms}")
        self.n_terms = n_terms
        self.ocr = ocr

    # ------------------------------------------------------------------
    @staticmethod
    def source_term_sets(sources: DataSources) -> dict[str, set[str]]:
        """The five user-visible source term sets."""
        url_terms = (
            sources.d_start.terms | sources.d_startrdn.terms
            | sources.d_land.terms | sources.d_landrdn.terms
        )
        link_terms = sources.d_intlink.terms | sources.d_extlink.terms
        return {
            "url": url_terms,
            "title": sources.d_title.terms,
            "text": sources.d_text.terms,
            "copyright": sources.d_copyright.terms,
            "links": link_terms,
        }

    @staticmethod
    def _visible_frequencies(sources: DataSources) -> Counter:
        """Term frequencies over the visible parts of the page."""
        counts: Counter = Counter()
        counts.update(extract_terms(sources.snapshot.text))
        counts.update(extract_terms(sources.snapshot.title))
        counts.update(extract_terms(sources.snapshot.copyright_notice))
        counts.update(DataSources.free_url_terms(sources.starting))
        counts.update(DataSources.rdn_terms(sources.starting))
        counts.update(DataSources.free_url_terms(sources.landing))
        counts.update(DataSources.rdn_terms(sources.landing))
        for url in sources.href_links:
            counts.update(DataSources.free_url_terms(url))
        return counts

    def _rank(self, candidates: set[str], frequencies: Counter) -> list[str]:
        """Top-N candidates by visible frequency (ties alphabetical)."""
        ranked = sorted(
            candidates, key=lambda term: (-frequencies[term], term)
        )
        return ranked[: self.n_terms]

    # ------------------------------------------------------------------
    def extract(self, sources: DataSources) -> Keyterms:
        """Extract all three keyterm lists for one page."""
        term_sets = self.source_term_sets(sources)
        frequencies = self._visible_frequencies(sources)

        # Boosted prominent: in >= 2 of the five sets (any pair).
        membership: Counter = Counter()
        for terms in term_sets.values():
            membership.update(terms)
        boosted_candidates = {
            term for term, count in membership.items() if count >= 2
        }

        # Prominent: ignore co-occurrence contributed solely by the
        # text/links pair.
        prominent_candidates = set()
        for term, count in membership.items():
            if count < 2:
                continue
            only_text_links = (
                count == 2
                and term in term_sets["text"]
                and term in term_sets["links"]
            )
            if not only_text_links:
                prominent_candidates.add(term)

        keyterms = Keyterms(
            boosted_prominent=self._rank(boosted_candidates, frequencies),
            prominent=self._rank(prominent_candidates, frequencies),
        )

        if self.ocr is not None:
            try:
                recognised = self.ocr.read(sources.snapshot.screenshot)
            except OcrFailure:
                # Graceful degradation: a failed OCR pass simply leaves
                # the OCR-prominent list empty (identification step 4 is
                # skipped), exactly as if no OCR engine were configured.
                sources.degradation_notes.add("ocr_failed")
                return keyterms
            image_terms = set(extract_terms(recognised))
            all_source_terms = set().union(*term_sets.values())
            ocr_candidates = image_terms & all_source_terms
            # Image terms may be absent from the visible frequency count
            # (image-based pages); fall back to counting them once.
            ocr_frequencies = frequencies.copy()
            for term in ocr_candidates:
                ocr_frequencies.setdefault(term, 1)
            keyterms.ocr_prominent = self._rank(ocr_candidates, ocr_frequencies)
        return keyterms
