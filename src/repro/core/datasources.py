"""Data sources of a webpage: Table I distributions, Table II partition.

:class:`DataSources` wraps a scraped :class:`~repro.web.page.PageSnapshot`
and exposes:

* the parsed URL views (starting, landing, redirection chain, logged
  links, HREF links);
* the **control partition** of Section III-A — RDNs occurring in the
  redirection chain are assumed under the page owner's control, so every
  link sharing one of those RDNs is *internal*, everything else
  *external*;
* the 14 **term distributions** of Table I, computed lazily and cached.

For IP-based URLs the RDN is undefined; RDN-based distributions are then
empty, reproducing the paper's Section VII-B observation that such pages
yield several null features.
"""

from __future__ import annotations

from functools import cached_property

from repro.resilience.errors import OcrFailure
from repro.text.distributions import TermDistribution
from repro.text.terms import extract_terms
from repro.urls.parsing import ParsedUrl, UrlParseError, parse_url
from repro.urls.public_suffix import PublicSuffixList, default_psl
from repro.web.ocr import SimulatedOcr
from repro.web.page import PageSnapshot

#: The 12 distributions used by feature set f2 (copyright and image are
#: excluded, Section IV-B).
F2_DISTRIBUTION_NAMES = (
    "text", "title", "start", "land", "intlog", "intlink",
    "startrdn", "landrdn", "intrdn", "extrdn", "extlog", "extlink",
)

#: All Table I distribution names.
ALL_DISTRIBUTION_NAMES = F2_DISTRIBUTION_NAMES + ("copyright", "image")


def _url_identity(url: ParsedUrl) -> str:
    """Ownership identity of a URL: its RDN, or the raw host for IPs."""
    return url.rdn if url.rdn else url.fqdn


class DataSources:
    """Derived view of one page snapshot (distributions + partitions).

    Parameters
    ----------
    snapshot:
        The scraped page.
    psl:
        Public-suffix list for URL decomposition.
    ocr:
        OCR engine for the ``image`` distribution; ``None`` disables OCR
        (``D_image`` is then empty) — OCR is slow and only consulted on
        demand (Section V-A).
    distribution_cache:
        Optional cross-snapshot memoization store (an
        :class:`~repro.parallel.cache.LruCache`-like object with
        ``get``/``put``) shared by many ``DataSources`` instances.  The
        per-instance ``cached_property`` laziness already deduplicates
        work within one instance; this cache deduplicates across
        repeated analyses of the same content.  Requires ``cache_key``.
    cache_key:
        Stable content key of ``snapshot`` (a
        :func:`~repro.parallel.cache.snapshot_fingerprint`), namespacing
        the shared cache.
    """

    def __init__(
        self,
        snapshot: PageSnapshot,
        psl: PublicSuffixList | None = None,
        ocr: SimulatedOcr | None = None,
        distribution_cache=None,
        cache_key: str | None = None,
    ):
        self.snapshot = snapshot
        self.psl = psl or default_psl()
        self.ocr = ocr
        if distribution_cache is not None and cache_key is None:
            raise ValueError("distribution_cache requires a cache_key")
        self._distribution_cache = distribution_cache
        self._cache_key = cache_key
        #: degradation tags accumulated while deriving the sources
        #: (e.g. ``"ocr_failed"``); consumed by the pipeline's verdict.
        self.degradation_notes: set[str] = set()

    # ------------------------------------------------------------------
    # parsed URL views
    # ------------------------------------------------------------------
    def _parse_many(self, urls) -> list[ParsedUrl]:
        parsed = []
        for url in urls:
            try:
                parsed.append(parse_url(url, self.psl))
            except UrlParseError:
                continue
        return parsed

    @cached_property
    def starting(self) -> ParsedUrl:
        """Parsed starting URL."""
        return parse_url(self.snapshot.starting_url, self.psl)

    @cached_property
    def landing(self) -> ParsedUrl:
        """Parsed landing URL."""
        return parse_url(self.snapshot.landing_url, self.psl)

    @cached_property
    def redirection_chain(self) -> list[ParsedUrl]:
        """Parsed redirection chain (starting and landing included)."""
        return self._parse_many(self.snapshot.redirection_chain)

    @cached_property
    def logged_links(self) -> list[ParsedUrl]:
        """Parsed logged (embedded-resource) links."""
        return self._parse_many(self.snapshot.logged_links)

    @cached_property
    def href_links(self) -> list[ParsedUrl]:
        """Parsed outgoing HREF links."""
        return self._parse_many(self.snapshot.href_links)

    # ------------------------------------------------------------------
    # control partition (Section III-A)
    # ------------------------------------------------------------------
    @cached_property
    def controlled_identities(self) -> set[str]:
        """RDNs (or IP hosts) assumed under the page owner's control."""
        return {_url_identity(url) for url in self.redirection_chain}

    def is_internal(self, url: ParsedUrl) -> bool:
        """True when ``url`` shares an RDN with the redirection chain."""
        return _url_identity(url) in self.controlled_identities

    @cached_property
    def internal_logged(self) -> list[ParsedUrl]:
        """Logged links under the page owner's control."""
        return [url for url in self.logged_links if self.is_internal(url)]

    @cached_property
    def external_logged(self) -> list[ParsedUrl]:
        """Logged links outside the owner's control."""
        return [url for url in self.logged_links if not self.is_internal(url)]

    @cached_property
    def internal_href(self) -> list[ParsedUrl]:
        """HREF links under the page owner's control."""
        return [url for url in self.href_links if self.is_internal(url)]

    @cached_property
    def external_href(self) -> list[ParsedUrl]:
        """HREF links outside the owner's control."""
        return [url for url in self.href_links if not self.is_internal(url)]

    # ------------------------------------------------------------------
    # term helpers
    # ------------------------------------------------------------------
    @staticmethod
    def free_url_terms(url: ParsedUrl) -> list[str]:
        """Terms of a URL's FreeURL (subdomains, path, query)."""
        return extract_terms(url.free_url)

    @staticmethod
    def rdn_terms(url: ParsedUrl) -> list[str]:
        """Terms of a URL's RDN (empty for IP-based URLs)."""
        return extract_terms(url.rdn) if url.rdn else []

    def _free_url_distribution(self, urls) -> TermDistribution:
        terms: list[str] = []
        for url in urls:
            terms.extend(self.free_url_terms(url))
        return TermDistribution.from_terms(terms)

    def _rdn_distribution(self, urls) -> TermDistribution:
        terms: list[str] = []
        for url in urls:
            terms.extend(self.rdn_terms(url))
        return TermDistribution.from_terms(terms)

    # ------------------------------------------------------------------
    # Table I distributions
    # ------------------------------------------------------------------
    @cached_property
    def d_text(self) -> TermDistribution:
        """``D_text`` — terms of the rendered body text."""
        return TermDistribution.from_text(self.snapshot.text)

    @cached_property
    def d_title(self) -> TermDistribution:
        """``D_title`` — terms of the page title."""
        return TermDistribution.from_text(self.snapshot.title)

    @cached_property
    def d_copyright(self) -> TermDistribution:
        """``D_copyright`` — terms of the copyright notice."""
        return TermDistribution.from_text(self.snapshot.copyright_notice)

    @cached_property
    def d_image(self) -> TermDistribution:
        """OCR-derived distribution; empty without an OCR engine.

        An OCR *failure* degrades gracefully to the same empty
        distribution an OCR-less run produces, noted in
        :attr:`degradation_notes` — image terms are a refinement, never
        a hard dependency.
        """
        if self.ocr is None:
            return TermDistribution()
        try:
            text = self.ocr.read(self.snapshot.screenshot)
        except OcrFailure:
            self.degradation_notes.add("ocr_failed")
            return TermDistribution()
        return TermDistribution.from_text(text)

    @cached_property
    def d_start(self) -> TermDistribution:
        """``D_start`` — FreeURL terms of the starting URL."""
        return TermDistribution.from_terms(self.free_url_terms(self.starting))

    @cached_property
    def d_land(self) -> TermDistribution:
        """``D_land`` — FreeURL terms of the landing URL."""
        return TermDistribution.from_terms(self.free_url_terms(self.landing))

    @cached_property
    def d_intlog(self) -> TermDistribution:
        """``D_intlog`` — FreeURL terms of internal logged links."""
        return self._free_url_distribution(self.internal_logged)

    @cached_property
    def d_intlink(self) -> TermDistribution:
        """``D_intlink`` — FreeURL terms of internal HREF links."""
        return self._free_url_distribution(self.internal_href)

    @cached_property
    def d_startrdn(self) -> TermDistribution:
        """``D_startrdn`` — RDN terms of the starting URL."""
        return TermDistribution.from_terms(self.rdn_terms(self.starting))

    @cached_property
    def d_landrdn(self) -> TermDistribution:
        """``D_landrdn`` — RDN terms of the landing URL."""
        return TermDistribution.from_terms(self.rdn_terms(self.landing))

    @cached_property
    def d_intrdn(self) -> TermDistribution:
        """RDN terms of internal links, HREF and logged combined."""
        return self._rdn_distribution(self.internal_href + self.internal_logged)

    @cached_property
    def d_extrdn(self) -> TermDistribution:
        """``D_extrdn`` — RDN terms of external logged links."""
        return self._rdn_distribution(self.external_logged)

    @cached_property
    def d_extlog(self) -> TermDistribution:
        """``D_extlog`` — FreeURL terms of external logged links."""
        return self._free_url_distribution(self.external_logged)

    @cached_property
    def d_extlink(self) -> TermDistribution:
        """``D_extlink`` — FreeURL terms of external HREF links."""
        return self._free_url_distribution(self.external_href)

    def distribution(self, name: str) -> TermDistribution:
        """Lookup a Table I distribution by its short name.

        When a shared distribution cache is attached, every name except
        ``image`` is served from (and fills) that cache — ``D_image``
        depends on the OCR engine and its failure modes, not only on
        page content, so it is always recomputed.  Distributions are
        immutable, so a cache hit is indistinguishable from a fresh
        computation.
        """
        if name not in ALL_DISTRIBUTION_NAMES:
            raise KeyError(
                f"unknown distribution {name!r}; "
                f"expected one of {ALL_DISTRIBUTION_NAMES}"
            )
        if self._distribution_cache is None or name == "image":
            return getattr(self, f"d_{name}")
        key = (self._cache_key, name)
        cached = self._distribution_cache.get(key)
        if cached is None:
            cached = getattr(self, f"d_{name}")
            self._distribution_cache.put(key, cached)
        return cached
