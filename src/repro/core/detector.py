"""The phishing detection system (Section IV).

:class:`PhishingDetector` couples the 212-feature extractor with the
Gradient Boosting classifier and the paper's discrimination threshold of
0.7 — confidences in ``[0, 0.7)`` predict legitimate, ``[0.7, 1]``
predict phishing, deliberately favouring the legitimate class.

The detector can be restricted to a feature subset (``"f1"``,
``"f2,3,4"``, ...) to reproduce the per-feature-set evaluation of
Table VII and Figs. 2/5.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.features import FeatureExtractor, feature_set_mask
from repro.ml.boosting import PAPER_THRESHOLD, GradientBoostingClassifier
from repro.web.page import PageSnapshot

#: The paper's discrimination threshold (Section VI-A), single-sourced
#: from :data:`repro.ml.boosting.PAPER_THRESHOLD` so the classifier's
#: ``predict`` default and the pipeline can never diverge.
DEFAULT_THRESHOLD = PAPER_THRESHOLD


class PhishingDetector:
    """Gradient-boosted phishing classifier over the Table III features.

    Parameters
    ----------
    extractor:
        Feature extractor (bring the world's Alexa ranking through it).
    feature_set:
        Feature subset to train on (default ``"fall"``, all 212).
    threshold:
        Discrimination threshold in ``[0, 1]``.
    n_estimators, learning_rate, max_depth, subsample:
        Gradient boosting hyperparameters.
    random_state:
        Seed for the stochastic parts of boosting.
    tree_method:
        Split-finding strategy for training (see
        :class:`~repro.ml.boosting.GradientBoostingClassifier`):
        ``"presort"`` (default, bit-identical to ``"exact"`` but much
        faster) or the approximate ``"histogram"``.
    """

    def __init__(
        self,
        extractor: FeatureExtractor | None = None,
        feature_set: str = "fall",
        threshold: float = DEFAULT_THRESHOLD,
        n_estimators: int = 120,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 0.9,
        random_state: int | None = 0,
        tree_method: str = "presort",
    ):
        if not 0 <= threshold <= 1:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.extractor = extractor or FeatureExtractor()
        self.feature_set = feature_set
        self.mask = feature_set_mask(feature_set)
        self.threshold = threshold
        self.model = GradientBoostingClassifier(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            subsample=subsample,
            random_state=random_state,
            tree_method=tree_method,
        )

    # ------------------------------------------------------------------
    def features(self, snapshots) -> np.ndarray:
        """Masked feature matrix for an iterable of snapshots."""
        return self.extractor.extract_many(snapshots)[:, self.mask]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PhishingDetector":
        """Fit on a precomputed **full 212-column** feature matrix."""
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1] == self.mask.size:
            X = X[:, self.mask]
        self.model.fit(X, np.asarray(y))
        return self

    def fit_snapshots(self, snapshots, labels) -> "PhishingDetector":
        """Extract features from ``snapshots`` and fit."""
        return self.fit(self.extractor.extract_many(snapshots), labels)

    # ------------------------------------------------------------------
    def _masked(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] == self.mask.size:
            return X[:, self.mask]
        if X.shape[1] == int(self.mask.sum()):
            return X
        raise ValueError(
            f"expected {self.mask.size} or {int(self.mask.sum())} columns, "
            f"got {X.shape[1]}"
        )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Phishing confidence in ``[0, 1]`` for a feature matrix."""
        return self.model.predict_proba(self._masked(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Hard labels at the configured discrimination threshold."""
        return (self.predict_proba(X) >= self.threshold).astype(np.int64)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trained model to a JSON file.

        Only the learned model and decision configuration are stored;
        the feature extractor (which carries the local Alexa list) is
        recreated at load time, mirroring the paper's deployment where
        the ranking file ships separately from the model.
        """
        payload = {
            "format": "know-your-phish-detector/1",
            "feature_set": self.feature_set,
            "threshold": self.threshold,
            "model": self.model.to_dict(),
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(
        cls, path: str | Path, extractor: FeatureExtractor | None = None
    ) -> "PhishingDetector":
        """Rebuild a trained detector from :meth:`save` output."""
        payload = json.loads(Path(path).read_text())
        if payload.get("format") != "know-your-phish-detector/1":
            raise ValueError(f"unrecognised detector file format in {path}")
        detector = cls(
            extractor=extractor,
            feature_set=payload["feature_set"],
            threshold=payload["threshold"],
        )
        detector.model = GradientBoostingClassifier.from_dict(payload["model"])
        return detector

    def score_snapshot(self, snapshot: PageSnapshot) -> float:
        """Phishing confidence for a single page snapshot."""
        vector = self.extractor.extract(snapshot)
        return float(self.predict_proba(vector.reshape(1, -1))[0])

    def classify_snapshot(self, snapshot: PageSnapshot) -> bool:
        """True when the snapshot is classified as phishing."""
        return self.score_snapshot(snapshot) >= self.threshold
