"""Target identification (Section V-B).

Given a (suspected phishing) page, the identifier either confirms the
page as legitimate — its own RDN ranks in search results for its
keyterms — or names the target brand(s) it impersonates.  The five-step
process:

1. Extract *boosted prominent terms*; try to "guess" target FQDNs from
   the mlds collected in the page's URLs (an mld composable from
   keyterms, possibly separated by dashes/digits, looks like a brand
   domain).  Search each guess; if the page's own RDN comes back, the
   page is legitimate.
2. Query the *prominent terms*; own RDN returned => legitimate; result
   mlds appearing in a controlled data source become candidate targets.
3. Same with *boosted prominent terms*.
4. Same with *OCR prominent terms* (slow OCR, consulted last).
5. Rank candidate mlds by how often they appear in the page's data
   sources; return the top-k.

Verdicts: ``"legitimate"`` (search confirmed), ``"phish"`` (candidate
target(s) found) or ``"suspicious"`` (neither).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.datasources import DataSources
from repro.core.keyterms import KeytermExtractor, Keyterms
from repro.text.terms import canonicalize
from repro.urls.public_suffix import PublicSuffixList, default_psl
from repro.web.ocr import SimulatedOcr
from repro.web.page import PageSnapshot
from repro.web.search import SearchEngine

_SEPARATORS = set("-0123456789")

#: Distributions a page owner controls (Table II) — a candidate target
#: must be referenced in one of these to count (step 2).
_CONTROLLED_SOURCES = (
    "text", "title", "copyright", "start", "land",
    "intlog", "intlink", "startrdn", "landrdn", "intrdn",
)


def mld_composable_from(mld: str, keyterms) -> bool:
    """True when ``mld`` can be composed from ``keyterms``.

    Keyterms may be separated by dashes or digit runs (Section V-B:
    ``bankofamerica`` from ``bank``, ``of``, ``america``).  At least one
    keyterm must participate.
    """
    term_list = [term for term in keyterms if term]
    if not mld or not term_list:
        return False
    target = mld.lower()
    n = len(target)
    reachable = [False] * (n + 1)
    reachable[0] = True
    used_term = [False] * (n + 1)
    for index in range(n):
        if not reachable[index]:
            continue
        if target[index] in _SEPARATORS:
            reachable[index + 1] = True
            used_term[index + 1] = used_term[index] or used_term[index + 1]
            continue
        for term in term_list:
            if target.startswith(term, index):
                end = index + len(term)
                reachable[end] = True
                used_term[end] = True
    return reachable[n] and used_term[n]


@dataclass
class TargetIdentification:
    """Outcome of the identification process for one page."""

    verdict: str                       # "legitimate" | "phish" | "suspicious"
    targets: list[str] = field(default_factory=list)   # ranked candidate mlds
    step: int = 0                      # step that decided (1-5)
    keyterms: Keyterms | None = None

    @property
    def top_target(self) -> str | None:
        """The single most likely target mld (top-1)."""
        return self.targets[0] if self.targets else None

    def target_in_top(self, true_mld: str, k: int) -> bool:
        """True when ``true_mld`` is among the top-``k`` candidates."""
        return true_mld in self.targets[:k]


class TargetIdentifier:
    """The five-step target identification system.

    Parameters
    ----------
    search:
        Search engine over the legitimate web.
    ocr:
        OCR engine for step 4; ``None`` skips the OCR step.
    n_terms:
        Keyterms per list (N=5 in the paper).
    top_k:
        Maximum number of ranked targets returned (paper evaluates 1-3).
    search_depth:
        Results requested per search query.
    """

    def __init__(
        self,
        search: SearchEngine,
        ocr: SimulatedOcr | None = None,
        n_terms: int = 5,
        top_k: int = 3,
        search_depth: int = 10,
        psl: PublicSuffixList | None = None,
    ):
        self.search = search
        self.ocr = ocr
        self.keyterm_extractor = KeytermExtractor(n_terms=n_terms, ocr=ocr)
        self.top_k = top_k
        self.search_depth = search_depth
        self.psl = psl or default_psl()

    # ------------------------------------------------------------------
    def identify(
        self,
        page: PageSnapshot | DataSources,
        deadline=None,
    ) -> TargetIdentification:
        """Run the full five-step identification on one page.

        ``deadline`` (a :class:`~repro.resilience.retry.Deadline`) is
        checked before every search query — the expensive, external
        part of identification — raising
        :class:`~repro.resilience.errors.DeadlineExceeded` once the
        budget is gone, so a request never searches past its budget.
        The caller (the pipeline) turns that into a degraded,
        detector-only verdict.
        """
        sources = (
            page if isinstance(page, DataSources)
            else DataSources(page, psl=self.psl, ocr=self.ocr)
        )
        keyterms = self.keyterm_extractor.extract(sources)
        suspected_rdns = {
            rdn for rdn in (sources.starting.rdn, sources.landing.rdn) if rdn
        }

        # ---- step 1: guess target FQDNs from collected mlds ------------
        collected_mlds = self._collected_mlds(sources)
        guesses = [
            mld for mld in collected_mlds
            if mld_composable_from(mld, keyterms.boosted_prominent)
        ][:3]  # "typically 2-3" guessed FQDNs
        for guess in guesses:
            if deadline is not None:
                deadline.check("target identification (step 1 search)")
            returned = self.search.result_rdns(
                [guess, *keyterms.boosted_prominent], top_k=self.search_depth
            )
            if suspected_rdns & returned:
                return TargetIdentification(
                    verdict="legitimate", step=1, keyterms=keyterms
                )

        candidates: dict[str, int] = {}

        # ---- steps 2-4: keyterm queries ---------------------------------
        steps = [
            (2, keyterms.prominent),
            (3, keyterms.boosted_prominent),
            (4, keyterms.ocr_prominent),
        ]
        for step, terms in steps:
            if not terms:
                continue
            if step == 4 and self.ocr is None:
                continue
            if deadline is not None:
                deadline.check(f"target identification (step {step} search)")
            results = self.search.query(terms, top_k=self.search_depth)
            result_rdns = {result.rdn for result in results}
            if suspected_rdns & result_rdns:
                return TargetIdentification(
                    verdict="legitimate", step=step, keyterms=keyterms
                )
            found_new = False
            for result in results:
                if result.mld in candidates:
                    continue
                if result.rdn in suspected_rdns:
                    continue
                if self._appears_in_controlled_source(result.mld, sources):
                    candidates[result.mld] = 0
                    found_new = True
            # The paper moves to target selection as soon as a step
            # yields candidates (step 2 -> step 5 directly).
            if found_new and step >= 2:
                break

        # ---- step 5: target selection -----------------------------------
        if not candidates:
            return TargetIdentification(
                verdict="suspicious", step=5, keyterms=keyterms
            )
        for mld in candidates:
            candidates[mld] = self._count_appearances(mld, sources)
        ranked = sorted(candidates.items(), key=lambda kv: (-kv[1], kv[0]))
        targets = [mld for mld, _count in ranked[: self.top_k]]
        return TargetIdentification(
            verdict="phish", targets=targets, step=5, keyterms=keyterms
        )

    # ------------------------------------------------------------------
    def _collected_mlds(self, sources: DataSources) -> list[str]:
        """mlds collected from the page's URLs (step 1), deduplicated."""
        urls = (
            [sources.starting, sources.landing]
            + sources.logged_links
            + sources.href_links
        )
        seen: dict[str, None] = {}
        for url in urls:
            if url.mld:
                seen.setdefault(url.mld, None)
        return list(seen)

    def _appears_in_controlled_source(
        self, mld: str, sources: DataSources
    ) -> bool:
        """Does ``mld`` show up in a source the page owner controls?"""
        canonical = canonicalize(mld).replace(" ", "")
        if len(canonical) < 3:
            return False
        for name in _CONTROLLED_SOURCES:
            distribution = sources.distribution(name)
            if canonical in distribution:
                return True
            terms = distribution.terms
            if terms and mld_composable_from(mld, terms):
                return True
        return False

    def _count_appearances(self, mld: str, sources: DataSources) -> int:
        """Occurrences of ``mld`` across the page's data sources (step 5)."""
        canonical = canonicalize(mld).replace(" ", "")
        if not canonical:
            return 0
        haystacks = [
            canonicalize(sources.snapshot.text).replace(" ", ""),
            canonicalize(sources.snapshot.title).replace(" ", ""),
            canonicalize(sources.snapshot.copyright_notice).replace(" ", ""),
            canonicalize(sources.starting.raw).replace(" ", ""),
            canonicalize(sources.landing.raw).replace(" ", ""),
        ]
        for url in sources.href_links + sources.logged_links:
            haystacks.append(canonicalize(url.raw).replace(" ", ""))
        return sum(haystack.count(canonical) for haystack in haystacks)
