"""Popularity ranking substrate standing in for the Alexa top-1M list.

Feature 9 of the paper (Table IV) is "Alexa ranking of the RDN", looked up
in a previously downloaded local copy of the Alexa top-million list, with a
default value of 1,000,001 for unranked domains.  The live list is gone
(and unavailable offline anyway), so :class:`AlexaRanking` provides the
same interface over a ranking assembled from the synthetic web's
legitimate domains, with ranks assigned by a deterministic Zipf-like
popularity model.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

DEFAULT_UNRANKED = 1_000_001
TOP_LIST_SIZE = 1_000_000


class AlexaRanking:
    """A local popularity ranking of registered domain names.

    Parameters
    ----------
    ranks:
        Either an ordered iterable of RDNs (rank = position, starting at 1)
        or a mapping ``rdn -> rank``.
    default:
        Rank returned for unlisted domains (paper: 1,000,001).
    """

    def __init__(
        self,
        ranks: Iterable[str] | Mapping[str, int] = (),
        default: int = DEFAULT_UNRANKED,
    ):
        self.default = default
        if isinstance(ranks, Mapping):
            self._ranks = {rdn.lower(): int(rank) for rdn, rank in ranks.items()}
        else:
            self._ranks = {
                rdn.lower(): position
                for position, rdn in enumerate(ranks, start=1)
            }

    def __len__(self) -> int:
        return len(self._ranks)

    def __contains__(self, rdn: str) -> bool:
        return rdn is not None and rdn.lower() in self._ranks

    def rank(self, rdn: str | None) -> int:
        """Return the rank of ``rdn``, or the default for unknown/IP hosts."""
        if not rdn:
            return self.default
        return self._ranks.get(rdn.lower(), self.default)

    def is_ranked(self, rdn: str | None) -> bool:
        """True when ``rdn`` appears in the (top-1M) list."""
        return self.rank(rdn) < self.default

    def add(self, rdn: str, rank: int) -> None:
        """Insert or update a domain's rank."""
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self._ranks[rdn.lower()] = rank

    def top(self, count: int) -> list[str]:
        """Return the ``count`` best-ranked domains, best first."""
        ordered = sorted(self._ranks.items(), key=lambda item: item[1])
        return [rdn for rdn, _rank in ordered[:count]]

    @classmethod
    def from_popularity(
        cls,
        domains: Iterable[str],
        default: int = DEFAULT_UNRANKED,
    ) -> "AlexaRanking":
        """Build a ranking from domains ordered most- to least-popular."""
        return cls(list(domains), default=default)
