"""URL substrate: parsing, public-suffix resolution and popularity ranking.

This subpackage implements the URL structure model of Section II-B of the
paper (Fig. 1): a URL decomposes into a protocol, a fully qualified domain
name (FQDN), a registered domain name (RDN) made of a main level domain
(mld) and a public suffix (ps), plus the phisher-controlled *FreeURL*
components (subdomains, path and query).
"""

from repro.urls.alexa import AlexaRanking, DEFAULT_UNRANKED
from repro.urls.parsing import ParsedUrl, UrlParseError, parse_url
from repro.urls.public_suffix import PublicSuffixList, default_psl

__all__ = [
    "AlexaRanking",
    "DEFAULT_UNRANKED",
    "ParsedUrl",
    "PublicSuffixList",
    "UrlParseError",
    "default_psl",
    "parse_url",
]
