"""Public Suffix List rules engine.

Implements the matching algorithm specified at https://publicsuffix.org/list/
over a bundled snapshot of rules (:mod:`repro.urls.suffix_data`):

1. A rule matches a domain when the rule's labels equal the right-most
   labels of the domain (``*`` matches any single label).
2. Exception rules (``!`` prefix) take priority over every other rule.
3. Otherwise the prevailing rule is the matching rule with the most labels.
4. The public suffix is the set of labels matched by the prevailing rule
   (for an exception rule, the rule's labels minus its left-most label).
5. The registered domain is the public suffix plus one additional label.

If no rule matches, the prevailing rule is ``*`` (the top-level label is
treated as the public suffix), as mandated by the specification.
"""

from __future__ import annotations

from functools import lru_cache

from repro.urls.suffix_data import iter_snapshot_rules


class _Rule:
    """A single parsed PSL rule."""

    __slots__ = ("labels", "is_exception", "is_wildcard")

    def __init__(self, raw: str):
        self.is_exception = raw.startswith("!")
        if self.is_exception:
            raw = raw[1:]
        self.labels = tuple(raw.lower().split("."))
        self.is_wildcard = "*" in self.labels

    def matches(self, domain_labels: tuple[str, ...]) -> bool:
        """Return True when this rule matches the given domain labels."""
        if len(self.labels) > len(domain_labels):
            return False
        for rule_label, domain_label in zip(
            reversed(self.labels), reversed(domain_labels)
        ):
            if rule_label != "*" and rule_label != domain_label:
                return False
        return True

    def suffix_length(self) -> int:
        """Number of labels in the public suffix this rule defines."""
        if self.is_exception:
            return len(self.labels) - 1
        return len(self.labels)


class PublicSuffixList:
    """A queryable set of public-suffix rules.

    Parameters
    ----------
    rules:
        Iterable of raw rule strings.  Defaults to the bundled snapshot.

    Examples
    --------
    >>> psl = PublicSuffixList()
    >>> psl.public_suffix("www.amazon.co.uk")
    'co.uk'
    >>> psl.registered_domain("www.amazon.co.uk")
    'amazon.co.uk'
    >>> psl.registered_domain("foo.www.ck")  # exception rule !www.ck
    'www.ck'
    """

    def __init__(self, rules=None):
        raw_rules = list(rules) if rules is not None else list(iter_snapshot_rules())
        self._rules: list[_Rule] = [_Rule(raw) for raw in raw_rules]
        # Bucket rules by their right-most concrete label for fast lookup.
        self._by_tld: dict[str, list[_Rule]] = {}
        for rule in self._rules:
            tld = rule.labels[-1]
            self._by_tld.setdefault(tld, []).append(rule)

    def __len__(self) -> int:
        return len(self._rules)

    def _prevailing_rule(self, domain_labels: tuple[str, ...]) -> _Rule | None:
        candidates = self._by_tld.get(domain_labels[-1], ())
        matching = [rule for rule in candidates if rule.matches(domain_labels)]
        if not matching:
            return None
        exceptions = [rule for rule in matching if rule.is_exception]
        if exceptions:
            return max(exceptions, key=lambda rule: len(rule.labels))
        return max(matching, key=lambda rule: len(rule.labels))

    def public_suffix(self, fqdn: str) -> str:
        """Return the public suffix of ``fqdn``.

        Falls back to the last label when no rule matches (the ``*``
        implicit rule of the specification).
        """
        labels = _normalize(fqdn)
        if not labels:
            return ""
        rule = self._prevailing_rule(labels)
        length = rule.suffix_length() if rule is not None else 1
        length = min(length, len(labels))
        return ".".join(labels[len(labels) - length:])

    def registered_domain(self, fqdn: str) -> str | None:
        """Return the RDN of ``fqdn`` (public suffix plus one label).

        Returns ``None`` when the whole FQDN is itself a public suffix,
        i.e. there is no registrable label to the left of the suffix.
        """
        labels = _normalize(fqdn)
        if not labels:
            return None
        suffix = self.public_suffix(fqdn)
        suffix_len = len(suffix.split(".")) if suffix else 0
        if suffix_len >= len(labels):
            return None
        return ".".join(labels[len(labels) - suffix_len - 1:])

    def is_public_suffix(self, fqdn: str) -> bool:
        """True when ``fqdn`` exactly equals a public suffix."""
        labels = _normalize(fqdn)
        return bool(labels) and ".".join(labels) == self.public_suffix(fqdn)

    def split(self, fqdn: str) -> tuple[str, str, str]:
        """Split ``fqdn`` into ``(subdomains, mld, public_suffix)``.

        ``subdomains`` and either remaining part may be empty strings when
        the corresponding component is absent.
        """
        labels = _normalize(fqdn)
        if not labels:
            return "", "", ""
        suffix = self.public_suffix(fqdn)
        suffix_len = len(suffix.split(".")) if suffix else 0
        remainder = labels[: len(labels) - suffix_len]
        if not remainder:
            return "", "", suffix
        mld = remainder[-1]
        subdomains = ".".join(remainder[:-1])
        return subdomains, mld, suffix


def _normalize(fqdn: str) -> tuple[str, ...]:
    """Lower-case and split an FQDN into labels, dropping empty labels."""
    fqdn = fqdn.strip().strip(".").lower()
    if not fqdn:
        return ()
    return tuple(label for label in fqdn.split(".") if label)


@lru_cache(maxsize=1)
def default_psl() -> PublicSuffixList:
    """Return the process-wide :class:`PublicSuffixList` built from the snapshot."""
    return PublicSuffixList()
