"""URL decomposition following Section II-B of the paper (Fig. 1).

A URL is split as::

    protocol://[subdomains.]mld.ps[/path][?query]
               \\________FQDN_________/
                          \\__RDN__/
    FreeURL = subdomains + path + query

The registered domain name (RDN) is constrained — the phisher must register
it — while the *FreeURL* components (subdomains, path, query) are fully
under the page owner's control.  IP-based URLs have no domain structure:
``rdn``, ``mld`` and ``public_suffix`` are ``None`` for them, which is
exactly the degenerate case discussed in Section VII-B of the paper.
"""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from repro.urls.public_suffix import PublicSuffixList, default_psl


class UrlParseError(ValueError):
    """Raised when a string cannot be interpreted as a URL."""


_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*://")
_HOST_LABEL_RE = re.compile(r"^[a-z0-9_](?:[a-z0-9_-]*[a-z0-9_])?$", re.IGNORECASE)


@dataclass(frozen=True)
class ParsedUrl:
    """Structured view of a URL with the paper's component model.

    Attributes
    ----------
    raw:
        The original URL string.
    protocol:
        URL scheme, e.g. ``"https"``.
    fqdn:
        The fully qualified domain name (or the textual IP address for
        IP-based URLs).
    port:
        Explicit port, or ``None``.
    path, query, fragment:
        Standard URL components (possibly empty strings).
    is_ip:
        True when the host is an IPv4/IPv6 address rather than a domain.
    subdomains:
        The prefix of the FQDN before the RDN (``""`` when absent).
    mld:
        Main level domain — the registrable label left of the public suffix.
    public_suffix:
        The public suffix (e.g. ``"co.uk"``).
    rdn:
        Registered domain name, ``mld + "." + public_suffix``.
    """

    raw: str
    protocol: str
    fqdn: str
    port: int | None
    path: str
    query: str
    fragment: str
    is_ip: bool
    subdomains: str
    mld: str | None
    public_suffix: str | None
    rdn: str | None = field(default=None)

    @property
    def free_url(self) -> str:
        """The phisher-controlled URL parts: subdomains, path and query."""
        parts = []
        if self.subdomains:
            parts.append(self.subdomains)
        if self.path and self.path != "/":
            parts.append(self.path)
        if self.query:
            parts.append(self.query)
        return " ".join(parts)

    @property
    def level_domain_count(self) -> int:
        """Number of dot-separated labels in the FQDN (0 for IP hosts)."""
        if self.is_ip or not self.fqdn:
            return 0
        return len([label for label in self.fqdn.split(".") if label])

    @property
    def uses_https(self) -> bool:
        """True when the URL is served over HTTPS."""
        return self.protocol == "https"

    def same_rdn(self, other: "ParsedUrl") -> bool:
        """True when both URLs share a (non-null) registered domain."""
        return self.rdn is not None and self.rdn == other.rdn

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.raw


def _is_ip_address(host: str) -> bool:
    candidate = host[1:-1] if host.startswith("[") and host.endswith("]") else host
    try:
        ipaddress.ip_address(candidate)
    except ValueError:
        return False
    return True


def parse_url(url: str, psl: PublicSuffixList | None = None) -> ParsedUrl:
    """Parse ``url`` into a :class:`ParsedUrl`.

    A missing scheme defaults to ``http`` (mirroring browser behaviour for
    URLs pasted into the address bar).  Raises :class:`UrlParseError` for
    strings with no usable host.
    """
    if psl is None:
        psl = default_psl()
    if not isinstance(url, str) or not url.strip():
        raise UrlParseError(f"empty or non-string URL: {url!r}")
    url = url.strip()
    if not _SCHEME_RE.match(url):
        url = "http://" + url
    try:
        split = urlsplit(url)
    except ValueError as exc:
        raise UrlParseError(f"malformed URL {url!r}: {exc}") from exc

    host = (split.hostname or "").strip().strip(".").lower()
    if not host:
        raise UrlParseError(f"URL has no host: {url!r}")

    try:
        port = split.port
    except ValueError:
        port = None

    if _is_ip_address(host):
        return ParsedUrl(
            raw=url,
            protocol=split.scheme.lower(),
            fqdn=host,
            port=port,
            path=split.path or "",
            query=split.query or "",
            fragment=split.fragment or "",
            is_ip=True,
            subdomains="",
            mld=None,
            public_suffix=None,
            rdn=None,
        )

    for label in host.split("."):
        if not _HOST_LABEL_RE.match(label):
            raise UrlParseError(f"invalid host label {label!r} in {url!r}")

    subdomains, mld, suffix = psl.split(host)
    rdn = f"{mld}.{suffix}" if mld and suffix else (mld or None)
    return ParsedUrl(
        raw=url,
        protocol=split.scheme.lower(),
        fqdn=host,
        port=port,
        path=split.path or "",
        query=split.query or "",
        fragment=split.fragment or "",
        is_ip=False,
        subdomains=subdomains,
        mld=mld or None,
        public_suffix=suffix or None,
        rdn=rdn,
    )
