"""Term extraction (Section III-B of the paper).

Let ``A = {a..z}``.  Terms are extracted from any text source by:

1. canonicalising letter characters — upper case, accented and special
   letter variants are mapped to a matching letter in ``A``
   (e.g. ``{B, β, b̀, b̂} -> b``);
2. splitting the input whenever a character outside ``A`` is met;
3. discarding substrings shorter than :data:`MIN_TERM_LENGTH` (3).

The procedure is deliberately language independent: no dictionary or stop
word list is used.  This also reproduces the paper's stated limitations
(Section VII-B): digit- or hyphen-separated brands like ``dl4a`` split
into fragments that are then discarded.
"""

from __future__ import annotations

import unicodedata
from collections import Counter
from functools import lru_cache

MIN_TERM_LENGTH = 3

# Letters from non-Latin scripts that visually or phonetically match a Latin
# letter.  NFKD decomposition handles accented Latin letters; this table
# covers the common homoglyphs phishers use (Greek/Cyrillic substitution).
_HOMOGLYPHS = {
    "α": "a", "β": "b", "γ": "y", "ε": "e", "κ": "k", "ν": "v", "ο": "o",
    "ρ": "p", "τ": "t", "υ": "u", "χ": "x",
    "а": "a", "в": "b", "е": "e", "к": "k", "м": "m", "н": "h", "о": "o",
    "р": "p", "с": "c", "т": "t", "у": "y", "х": "x",
    "ß": "ss", "æ": "ae", "œ": "oe", "ø": "o", "ð": "d", "þ": "th",
    "ł": "l", "đ": "d", "ħ": "h", "ı": "i", "ŋ": "n",
}


@lru_cache(maxsize=65536)
def _canonicalize_char(char: str) -> str:
    """Map a single character to its canonical a-z form, or '' if none."""
    lowered = char.lower()
    if "a" <= lowered <= "z":
        return lowered
    if lowered in _HOMOGLYPHS:
        return _HOMOGLYPHS[lowered]
    decomposed = unicodedata.normalize("NFKD", lowered)
    letters = [c for c in decomposed if "a" <= c <= "z"]
    if letters:
        return "".join(letters)
    return ""


def canonicalize(text: str) -> str:
    """Canonicalise ``text``: a-z letters kept, variants mapped, the rest
    replaced by a single space (acting as a split point).

    Combining marks (decomposed accents) are elided entirely rather than
    splitting the word they decorate: ``be´ta`` stays one term.
    """
    out: list[str] = []
    for char in text:
        mapped = _canonicalize_char(char)
        if mapped:
            out.append(mapped)
        elif unicodedata.combining(char):
            continue
        else:
            out.append(" ")
    return "".join(out)


def extract_terms(text: str, min_length: int = MIN_TERM_LENGTH) -> list[str]:
    """Extract the ordered list of terms from ``text``.

    Terms are maximal runs of canonical letters with length >= ``min_length``.
    Repetitions are preserved (the caller decides whether to count them).
    """
    if not text:
        return []
    return [
        term for term in canonicalize(text).split() if len(term) >= min_length
    ]


def term_counts(text: str, min_length: int = MIN_TERM_LENGTH) -> Counter:
    """Extract terms from ``text`` and return their occurrence counts."""
    return Counter(extract_terms(text, min_length=min_length))
