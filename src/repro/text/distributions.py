"""Term distributions and the Hellinger distance (Sections III-B, IV-B).

A *term distribution* ``D_S`` of a data source ``S`` is the set of pairs
``(t_i, p_i)`` where ``t_i`` is a term extracted from ``S`` and ``p_i`` its
occurrence probability within ``S``.  Dissimilarity between distributions
is measured with the (squared) Hellinger distance, an f-divergence that is
symmetric and bounded in ``[0, 1]``::

    H^2(P, Q) = 1/2 * sum_{x in P ∪ Q} (sqrt(P(x)) - sqrt(Q(x)))^2

``H^2 = 0`` means identical distributions, ``H^2 = 1`` means disjoint
supports.  Following the paper's Equation (1) we use the squared form
directly as the feature value.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.text.terms import MIN_TERM_LENGTH, extract_terms


class TermDistribution:
    """An immutable probability distribution over terms.

    Construct with :meth:`from_text`, :meth:`from_terms` or
    :meth:`from_counts`; the empty distribution is falsy.
    """

    __slots__ = ("_probs",)

    def __init__(self, probabilities: Mapping[str, float] | None = None):
        probs = dict(probabilities or {})
        for term, prob in probs.items():
            if prob <= 0:
                raise ValueError(f"non-positive probability for {term!r}: {prob}")
        total = sum(probs.values())
        if probs and not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"probabilities sum to {total}, expected 1")
        self._probs = probs

    # ---- constructors -------------------------------------------------
    @classmethod
    def from_counts(cls, counts: Mapping[str, int]) -> "TermDistribution":
        """Build from term occurrence counts (zero counts are dropped)."""
        positive = {term: count for term, count in counts.items() if count > 0}
        total = sum(positive.values())
        if total == 0:
            return cls()
        return cls({term: count / total for term, count in positive.items()})

    @classmethod
    def from_terms(cls, terms: Iterable[str]) -> "TermDistribution":
        """Build from a sequence of (possibly repeated) terms."""
        return cls.from_counts(Counter(terms))

    @classmethod
    def from_text(
        cls, text: str, min_length: int = MIN_TERM_LENGTH
    ) -> "TermDistribution":
        """Extract terms from raw ``text`` and build their distribution."""
        return cls.from_terms(extract_terms(text, min_length=min_length))

    # ---- mapping-like interface ---------------------------------------
    def __bool__(self) -> bool:
        return bool(self._probs)

    def __len__(self) -> int:
        return len(self._probs)

    def __contains__(self, term: str) -> bool:
        return term in self._probs

    def __iter__(self):
        return iter(self._probs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TermDistribution):
            return NotImplemented
        return self._probs == other._probs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(
            f"{t}:{p:.3f}" for t, p in sorted(self._probs.items())[:4]
        )
        return f"TermDistribution({len(self)} terms: {preview}...)"

    def probability(self, term: str) -> float:
        """Occurrence probability of ``term`` (0.0 when absent)."""
        return self._probs.get(term, 0.0)

    @property
    def terms(self) -> set[str]:
        """The support of the distribution."""
        return set(self._probs)

    def items(self):
        """Iterate over ``(term, probability)`` pairs."""
        return self._probs.items()

    def top(self, count: int) -> list[tuple[str, float]]:
        """The ``count`` most probable terms, ties broken alphabetically."""
        ranked = sorted(self._probs.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:count]

    def probability_mass_of_substrings(self, text: str) -> float:
        """Sum of probabilities of terms that are substrings of ``text``.

        Used by feature set f3: how much of a distribution's mass is made
        of fragments of the starting/landing mld.
        """
        if not text:
            return 0.0
        return sum(prob for term, prob in self._probs.items() if term in text)


def jaccard_distance(p: TermDistribution, q: TermDistribution) -> float:
    """Jaccard distance between the supports of two distributions.

    The ablation comparator for the paper's Hellinger choice: it ignores
    term probabilities entirely and only measures set overlap.  Bounded
    in ``[0, 1]``; same edge-case conventions as
    :func:`hellinger_distance`.
    """
    if not p and not q:
        return 0.0
    if not p or not q:
        return 1.0
    intersection = len(p.terms & q.terms)
    union = len(p.terms | q.terms)
    return 1.0 - intersection / union


def hellinger_distance(p: TermDistribution, q: TermDistribution) -> float:
    """Squared Hellinger distance between two term distributions.

    Follows the paper's Equation (1).  Edge cases: two empty distributions
    are identical (0.0); an empty vs. a non-empty distribution are fully
    dissimilar (1.0), matching the paper's treatment of missing sources
    (empty FQDN distributions of IP URLs "lead to several null features"
    only through downstream defaulting, handled by the feature extractor).
    """
    if not p and not q:
        return 0.0
    if not p or not q:
        return 1.0
    total = 0.0
    # Sorted iteration keeps float summation order (and therefore model
    # training) independent of the process's hash seed.
    for term in sorted(p.terms | q.terms):
        diff = math.sqrt(p.probability(term)) - math.sqrt(q.probability(term))
        total += diff * diff
    # Clamp tiny floating point overshoot so the metric stays in [0, 1].
    return min(1.0, max(0.0, 0.5 * total))


def sqrt_probability_matrix(
    distributions: Sequence[TermDistribution],
) -> np.ndarray:
    """Dense ``(n, |vocab|)`` matrix of square-root probabilities.

    Columns follow the sorted union vocabulary of all ``distributions``;
    rows of empty distributions are all-zero.  This is the shared input
    representation for batched distance computations.
    """
    vocab: set[str] = set()
    for dist in distributions:
        vocab |= dist.terms
    column = {term: i for i, term in enumerate(sorted(vocab))}
    matrix = np.zeros((len(distributions), len(column)), dtype=np.float64)
    for row, dist in enumerate(distributions):
        for term, prob in dist.items():
            matrix[row, column[term]] = math.sqrt(prob)
    return matrix


def hellinger_pairs_many(
    pages: Sequence[Sequence[TermDistribution]],
    pairs: Sequence[tuple[int, int]],
) -> np.ndarray:
    """Per-page Hellinger pair blocks for many pages: ``(n_pages, n_pairs)``.

    The batch-extraction entry point for feature set f2.  Each page keeps
    its **own** vocabulary: padding all pages into one shared matrix
    would change the length of every row sum, and numpy's unrolled
    summation groups partial sums by position — appending zeros regroups
    the real addends and can shift the result by an ulp.  Per-page
    kernels keep every value bit-identical to the single-page
    :func:`hellinger_pairs` (and therefore to the serial extractor),
    which is the contract the differential harness enforces; the batch
    win comes from amortizing the pair-index arrays and the surrounding
    Python dispatch, not from fusing vocabularies.
    """
    if not pages:
        return np.empty((0, len(pairs)), dtype=np.float64)
    out = np.empty((len(pages), len(pairs)), dtype=np.float64)
    for row, distributions in enumerate(pages):
        out[row] = hellinger_pairs(distributions, pairs)
    return out


def hellinger_pairs(
    distributions: Sequence[TermDistribution],
    pairs: Sequence[tuple[int, int]],
) -> np.ndarray:
    """Squared Hellinger distances for index ``pairs``, as one numpy batch.

    Replaces ``len(pairs)`` scalar :func:`hellinger_distance` calls with
    one vectorised difference-and-reduce over the shared vocabulary —
    the hot path of feature set f2 (66 pairs per page).  Conventions
    match the scalar function exactly: two empty distributions are at
    distance 0.0, empty vs non-empty at 1.0, everything clamped to
    ``[0, 1]``.  Values agree with the scalar path to within float
    summation reordering (≤ a few ulps).
    """
    if not pairs:
        return np.empty(0, dtype=np.float64)
    matrix = sqrt_probability_matrix(distributions)
    left = np.fromiter((p[0] for p in pairs), dtype=np.intp, count=len(pairs))
    right = np.fromiter((p[1] for p in pairs), dtype=np.intp, count=len(pairs))
    if matrix.shape[1] == 0:
        distances = np.zeros(len(pairs), dtype=np.float64)
    else:
        # Difference-based form (not the dot-product expansion): it is
        # numerically closest to the scalar accumulation and can never
        # go negative through cancellation.
        diff = matrix[left] - matrix[right]
        distances = 0.5 * np.einsum("ij,ij->i", diff, diff)
        np.clip(distances, 0.0, 1.0, out=distances)
    # Empty-distribution conventions override the algebraic result.
    empty = np.fromiter(
        (not dist for dist in distributions), dtype=bool,
        count=len(distributions),
    )
    both_empty = empty[left] & empty[right]
    one_empty = empty[left] ^ empty[right]
    distances[both_empty] = 0.0
    distances[one_empty] = 1.0
    return distances
