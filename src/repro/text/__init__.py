"""Text substrate: term extraction and term-distribution machinery.

Implements Section III-B of the paper: canonicalisation of characters to
the 26 lowercase English letters, splitting into terms of length >= 3, and
probability distributions over terms compared with the Hellinger distance.
"""

from repro.text.distributions import TermDistribution, hellinger_distance
from repro.text.terms import (
    MIN_TERM_LENGTH,
    canonicalize,
    extract_terms,
    term_counts,
)

__all__ = [
    "MIN_TERM_LENGTH",
    "TermDistribution",
    "canonicalize",
    "extract_terms",
    "hellinger_distance",
    "term_counts",
]
