"""Brand registry: the targets phishing campaigns impersonate.

phishBrand in the paper covers 600 phishing pages against 126 distinct
targets.  The registry bundles a hand-written core of recognisable
brands (banks, payment processors, webmail, e-commerce, social networks
— the sectors APWG reports phishing against) and tops it up with
deterministically synthesised brands until the requested count is
reached, so experiments can ask for >= 126 targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.wordlists import vocabulary


@dataclass(frozen=True)
class Brand:
    """A brand that legitimate sites represent and phishers impersonate.

    Attributes
    ----------
    name:
        Display name, e.g. ``"Bank of America"``.
    mld:
        Main level domain of the brand's real site, e.g. ``"bankofamerica"``.
    suffix:
        Public suffix of the real site, e.g. ``"com"``.
    industry:
        Sector tag (``banking``/``payment``/``email``/``commerce``/...).
    keyterms:
        Terms characterising the brand, used in page titles and text.
    language:
        Primary language of the brand's site content.
    popularity:
        1 = most popular tier; larger = less popular.
    """

    name: str
    mld: str
    suffix: str = "com"
    industry: str = "commerce"
    keyterms: tuple[str, ...] = ()
    language: str = "english"
    popularity: int = 1

    @property
    def rdn(self) -> str:
        """The brand's registered domain name."""
        return f"{self.mld}.{self.suffix}"

    @property
    def homepage(self) -> str:
        """Canonical homepage URL."""
        return f"https://www.{self.rdn}/"

    @property
    def name_words(self) -> tuple[str, ...]:
        """Lower-case words of the display name (>= 3 letters)."""
        return tuple(
            word for word in self.name.lower().replace("-", " ").split()
            if len(word) >= 3
        )


_CORE_BRANDS: tuple[Brand, ...] = (
    # -- payment / finance (the most-phished sector) --
    Brand("PayPal", "paypal", "com", "payment",
          ("paypal", "payment", "money", "transfer", "account"), popularity=1),
    Brand("Bank of America", "bankofamerica", "com", "banking",
          ("bank", "america", "banking", "account", "credit"), popularity=1),
    Brand("Wells Fargo", "wellsfargo", "com", "banking",
          ("wells", "fargo", "banking", "account", "loans"), popularity=1),
    Brand("Chase", "chase", "com", "banking",
          ("chase", "banking", "credit", "card", "account"), popularity=1),
    Brand("Citibank", "citibank", "com", "banking",
          ("citi", "citibank", "banking", "credit", "account"), popularity=2),
    Brand("HSBC", "hsbc", "com", "banking",
          ("hsbc", "banking", "global", "account", "premier"), popularity=2),
    Brand("Barclays", "barclays", "co.uk", "banking",
          ("barclays", "banking", "account", "online", "premier"), popularity=2),
    Brand("Santander", "santander", "com", "banking",
          ("santander", "banco", "banking", "cuenta", "credito"),
          language="spanish", popularity=2),
    Brand("BNP Paribas", "bnpparibas", "fr", "banking",
          ("paribas", "banque", "compte", "credit", "epargne"),
          language="french", popularity=2),
    Brand("Credit Agricole", "credit-agricole", "fr", "banking",
          ("credit", "agricole", "banque", "compte", "epargne"),
          language="french", popularity=2),
    Brand("Deutsche Bank", "deutsche-bank", "de", "banking",
          ("deutsche", "bank", "konto", "kredit", "finanzen"),
          language="german", popularity=2),
    Brand("Sparkasse", "sparkasse", "de", "banking",
          ("sparkasse", "konto", "sparen", "kredit", "bank"),
          language="german", popularity=2),
    Brand("UniCredit", "unicredit", "it", "banking",
          ("unicredit", "banca", "conto", "credito", "risparmio"),
          language="italian", popularity=2),
    Brand("Intesa Sanpaolo", "intesasanpaolo", "com", "banking",
          ("intesa", "sanpaolo", "banca", "conto", "risparmio"),
          language="italian", popularity=2),
    Brand("Banco do Brasil", "bancodobrasil", "com.br", "banking",
          ("banco", "brasil", "conta", "credito", "poupanca"),
          language="portuguese", popularity=2),
    Brand("Itau", "itau", "com.br", "banking",
          ("itau", "banco", "conta", "cartao", "credito"),
          language="portuguese", popularity=2),
    Brand("BBVA", "bbva", "es", "banking",
          ("bbva", "banco", "cuenta", "tarjeta", "credito"),
          language="spanish", popularity=2),
    Brand("American Express", "americanexpress", "com", "payment",
          ("american", "express", "card", "credit", "membership"), popularity=2),
    Brand("Visa", "visa", "com", "payment",
          ("visa", "card", "payment", "credit", "secure"), popularity=2),
    Brand("Mastercard", "mastercard", "com", "payment",
          ("mastercard", "card", "payment", "credit", "priceless"), popularity=2),
    Brand("Western Union", "westernunion", "com", "payment",
          ("western", "union", "money", "transfer", "send"), popularity=3),
    Brand("Capital One", "capitalone", "com", "banking",
          ("capital", "one", "credit", "card", "banking"), popularity=3),
    Brand("US Bank", "usbank", "com", "banking",
          ("bank", "banking", "account", "checking", "savings"), popularity=3),
    Brand("TD Bank", "tdbank", "com", "banking",
          ("bank", "banking", "convenient", "account", "checking"), popularity=3),
    Brand("Lloyds Bank", "lloydsbank", "co.uk", "banking",
          ("lloyds", "bank", "banking", "account", "online"), popularity=3),
    Brand("NatWest", "natwest", "co.uk", "banking",
          ("natwest", "bank", "banking", "account", "online"), popularity=3),
    Brand("ING", "ing", "nl", "banking",
          ("ing", "bank", "banking", "account", "savings"), popularity=3),
    Brand("La Banque Postale", "labanquepostale", "fr", "banking",
          ("banque", "postale", "compte", "courrier", "epargne"),
          language="french", popularity=3),
    Brand("Caixa", "caixa", "com.br", "banking",
          ("caixa", "banco", "conta", "poupanca", "credito"),
          language="portuguese", popularity=3),
    Brand("Commerzbank", "commerzbank", "de", "banking",
          ("commerzbank", "bank", "konto", "kredit", "depot"),
          language="german", popularity=3),
    # -- email / internet services --
    Brand("Google", "google", "com", "email",
          ("google", "search", "gmail", "account", "drive"), popularity=1),
    Brand("Gmail", "gmail", "com", "email",
          ("gmail", "google", "mail", "inbox", "account"), popularity=1),
    Brand("Yahoo", "yahoo", "com", "email",
          ("yahoo", "mail", "news", "search", "account"), popularity=1),
    Brand("Microsoft", "microsoft", "com", "email",
          ("microsoft", "windows", "office", "account", "outlook"), popularity=1),
    Brand("Outlook", "outlook", "com", "email",
          ("outlook", "mail", "microsoft", "inbox", "calendar"), popularity=1),
    Brand("Apple", "apple", "com", "commerce",
          ("apple", "iphone", "icloud", "store", "account"), popularity=1),
    Brand("iCloud", "icloud", "com", "email",
          ("icloud", "apple", "storage", "photos", "account"), popularity=2),
    Brand("AOL", "aol", "com", "email",
          ("aol", "mail", "news", "account", "inbox"), popularity=3),
    Brand("Dropbox", "dropbox", "com", "storage",
          ("dropbox", "files", "storage", "share", "sync"), popularity=2),
    Brand("Adobe", "adobe", "com", "software",
          ("adobe", "creative", "document", "account", "cloud"), popularity=2),
    Brand("Orange", "orange", "fr", "telecom",
          ("orange", "mobile", "internet", "compte", "facture"),
          language="french", popularity=2),
    Brand("Free", "free", "fr", "telecom",
          ("free", "freebox", "mobile", "compte", "facture"),
          language="french", popularity=3),
    Brand("Deutsche Telekom", "telekom", "de", "telecom",
          ("telekom", "mobil", "internet", "konto", "rechnung"),
          language="german", popularity=2),
    Brand("Vodafone", "vodafone", "com", "telecom",
          ("vodafone", "mobile", "internet", "account", "billing"), popularity=2),
    Brand("Comcast", "xfinity", "com", "telecom",
          ("xfinity", "comcast", "internet", "account", "billing"), popularity=3),
    Brand("AT&T", "att", "com", "telecom",
          ("att", "wireless", "internet", "account", "billing"), popularity=2),
    # -- e-commerce / marketplaces --
    Brand("Amazon", "amazon", "com", "commerce",
          ("amazon", "shop", "order", "prime", "account"), popularity=1),
    Brand("Amazon UK", "amazon", "co.uk", "commerce",
          ("amazon", "shop", "order", "prime", "account"), popularity=2),
    Brand("eBay", "ebay", "com", "commerce",
          ("ebay", "auction", "buy", "sell", "account"), popularity=1),
    Brand("Alibaba", "alibaba", "com", "commerce",
          ("alibaba", "trade", "supplier", "wholesale", "order"), popularity=2),
    Brand("Walmart", "walmart", "com", "commerce",
          ("walmart", "shop", "store", "savings", "order"), popularity=2),
    Brand("Netflix", "netflix", "com", "streaming",
          ("netflix", "watch", "movies", "series", "account"), popularity=1),
    Brand("Spotify", "spotify", "com", "streaming",
          ("spotify", "music", "premium", "playlist", "account"), popularity=2),
    Brand("Steam", "steampowered", "com", "gaming",
          ("steam", "games", "store", "community", "account"), popularity=2),
    Brand("Mercado Livre", "mercadolivre", "com.br", "commerce",
          ("mercado", "livre", "comprar", "vender", "oferta"),
          language="portuguese", popularity=2),
    Brand("Zalando", "zalando", "de", "commerce",
          ("zalando", "mode", "schuhe", "bestellen", "versand"),
          language="german", popularity=3),
    Brand("Cdiscount", "cdiscount", "com", "commerce",
          ("cdiscount", "achat", "prix", "livraison", "commande"),
          language="french", popularity=3),
    # -- social / communication --
    Brand("Facebook", "facebook", "com", "social",
          ("facebook", "friends", "share", "profile", "account"), popularity=1),
    Brand("Instagram", "instagram", "com", "social",
          ("instagram", "photos", "share", "follow", "profile"), popularity=1),
    Brand("Twitter", "twitter", "com", "social",
          ("twitter", "tweet", "follow", "news", "account"), popularity=1),
    Brand("LinkedIn", "linkedin", "com", "social",
          ("linkedin", "professional", "network", "jobs", "profile"),
          popularity=2),
    Brand("WhatsApp", "whatsapp", "com", "social",
          ("whatsapp", "message", "chat", "call", "account"), popularity=1),
    Brand("Snapchat", "snapchat", "com", "social",
          ("snapchat", "snap", "friends", "stories", "chat"), popularity=3),
    # -- logistics / government-ish (classic phishing lures) --
    Brand("DHL", "dhl", "com", "logistics",
          ("dhl", "parcel", "tracking", "delivery", "shipment"), popularity=2),
    Brand("FedEx", "fedex", "com", "logistics",
          ("fedex", "shipping", "tracking", "delivery", "package"), popularity=2),
    Brand("UPS", "ups", "com", "logistics",
          ("ups", "shipping", "tracking", "delivery", "package"), popularity=2),
    Brand("La Poste", "laposte", "fr", "logistics",
          ("poste", "colis", "suivi", "courrier", "livraison"),
          language="french", popularity=2),
    Brand("Correios", "correios", "com.br", "logistics",
          ("correios", "encomenda", "rastreamento", "entrega", "envio"),
          language="portuguese", popularity=3),
    Brand("IRS", "irs", "gov", "government",
          ("irs", "tax", "refund", "federal", "return"), popularity=3),
    Brand("HM Revenue", "hmrc", "gov.uk", "government",
          ("hmrc", "tax", "refund", "revenue", "return"), popularity=3),
)


class BrandRegistry:
    """Lookup and sampling over a set of brands."""

    def __init__(self, brands):
        self._brands: list[Brand] = list(brands)
        by_rdn: dict[str, Brand] = {}
        for brand in self._brands:
            if brand.rdn in by_rdn:
                raise ValueError(f"duplicate brand rdn: {brand.rdn}")
            by_rdn[brand.rdn] = brand
        self._by_rdn = by_rdn
        # Multiple RDNs can share an mld (amazon.com / amazon.co.uk);
        # the first registered wins for mld lookup.
        self._by_mld: dict[str, Brand] = {}
        for brand in self._brands:
            self._by_mld.setdefault(brand.mld, brand)

    def __len__(self) -> int:
        return len(self._brands)

    def __iter__(self):
        return iter(self._brands)

    def __getitem__(self, index: int) -> Brand:
        return self._brands[index]

    def by_mld(self, mld: str) -> Brand | None:
        """Brand whose real mld is ``mld``, or ``None``."""
        return self._by_mld.get(mld)

    def by_rdn(self, rdn: str) -> Brand | None:
        """Brand whose real RDN is ``rdn``, or ``None``."""
        return self._by_rdn.get(rdn)

    def by_language(self, language: str) -> list[Brand]:
        """All brands whose primary language is ``language``."""
        return [brand for brand in self._brands if brand.language == language]

    def sample(self, rng, count: int = 1) -> list[Brand]:
        """Draw ``count`` distinct brands (popular brands more likely)."""
        weights = [1.0 / brand.popularity for brand in self._brands]
        total = sum(weights)
        probs = [weight / total for weight in weights]
        indices = rng.choice(
            len(self._brands), size=min(count, len(self._brands)),
            replace=False, p=probs,
        )
        return [self._brands[int(index)] for index in indices]


def _synthesize_brands(count: int) -> list[Brand]:
    """Deterministically generate extra brands from business vocabulary."""
    suffixes = ("com", "net", "io", "co.uk", "de", "fr", "it", "es", "com.br")
    industries = ("banking", "payment", "commerce", "insurance", "telecom")
    languages = ("english", "english", "english", "french", "german",
                 "italian", "portuguese", "spanish")
    business = vocabulary("english")["business"]
    common = vocabulary("english")["common"]
    brands: list[Brand] = []
    index = 0
    while len(brands) < count:
        first = business[index % len(business)]
        second = common[(index * 7 + 3) % len(common)]
        if first == second:
            index += 1
            continue
        mld = f"{first}{second}"
        name = f"{first.capitalize()} {second.capitalize()}"
        brands.append(
            Brand(
                name=name,
                mld=mld,
                suffix=suffixes[index % len(suffixes)],
                industry=industries[index % len(industries)],
                keyterms=(first, second, "account", "secure", "online"),
                language=languages[index % len(languages)],
                popularity=3 + index % 3,
            )
        )
        index += 1
    return brands


def default_brands(minimum: int = 126) -> BrandRegistry:
    """The default registry: core brands topped up to >= ``minimum``.

    126 matches the number of distinct targets in the paper's phishBrand
    dataset.
    """
    brands = list(_CORE_BRANDS)
    existing = {brand.mld for brand in brands}
    for brand in _synthesize_brands(max(0, minimum - len(brands)) + 16):
        if len(brands) >= minimum:
            break
        if brand.mld in existing:
            continue
        brands.append(brand)
        existing.add(brand.mld)
    return BrandRegistry(brands)
