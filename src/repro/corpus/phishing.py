"""Generator of phishing websites enforcing the paper's phisher limitations.

The generative model encodes the two constraints of Section III-A:

* **Constraint** — a phisher cannot use the target's registered domain:
  the phish's RDN is the phisher's own (gibberish, deceptive words,
  typosquat, free-hosting subdomain, a compromised legitimate domain or a
  raw IP).  Only the *FreeURL* (subdomains, path, query) can carry target
  terms, which is exactly the obfuscation phishers use.
* **Control** — to look credible, the phish embeds content from and links
  to the target's real site: external HREF links and logged resources
  point at the target's RDN, and title/text/copyright reuse target terms.

Evasion variants (Section VII-C) are expressed as an
:class:`EvasionProfile` toggling individual tricks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.corpus.brands import Brand, BrandRegistry
from repro.corpus.html_builder import PageSpec, render_html
from repro.corpus.wordlists import vocabulary
from repro.web.hosting import SyntheticWeb
from repro.web.page import Screenshot

#: Hosting modes with default sampling weights (IP URLs < 2%, Section VII-B).
HOSTING_WEIGHTS = {
    "random": 0.38,
    "deceptive": 0.20,
    "typosquat": 0.12,
    "hosting_provider": 0.18,
    "compromised": 0.09,
    "ip": 0.03,
}

_FREE_HOSTS = (
    "000webhostapp.com", "blogspot.com", "weebly.com", "wixsite.com",
    "netlify.app", "herokuapp.com", "byethost.com", "epizy.com",
    "altervista.org", "duckdns.org",
)
_CHEAP_TLDS = ("com", "net", "info", "xyz", "online", "site", "top", "club",
               "icu", "link", "click", "work")
_LURE_WORDS = ("secure", "verify", "update", "confirm", "account", "signin",
               "login", "webapps", "alert", "suspended", "limited", "service",
               "support", "billing", "auth", "session", "validation")
_SHORTENER_RDNS = ("srtlnk.com", "tinypath.net", "lnkto.click", "qcklnk.xyz")

_CONSONANTS = "bcdfghjklmnpqrstvwxz"
_VOWELS = "aeiou"


@dataclass(frozen=True)
class EvasionProfile:
    """Adaptive-attack toggles (Section VII-C evasion techniques)."""

    minimal_text: bool = False
    no_external_links: bool = False
    no_external_resources: bool = False
    image_based: bool = False
    misspell_terms: bool = False
    short_url: bool = False

    @classmethod
    def none(cls) -> "EvasionProfile":
        """No evasion — the baseline phishing page."""
        return cls()

    @classmethod
    def all_tricks(cls) -> "EvasionProfile":
        """Every evasion technique at once (quality-destroying, per paper)."""
        return cls(
            minimal_text=True, no_external_links=True,
            no_external_resources=True, image_based=True,
            misspell_terms=True, short_url=True,
        )


#: Craftsmanship tiers of phishing kits and their sampling weights.
#: "high" is a near-pixel-perfect clone (rewritten internal resources,
#: HTTPS, plenty of copied text) — the hard positives.
QUALITY_WEIGHTS = {"low": 0.2, "medium": 0.5, "high": 0.3}


@dataclass
class GeneratedPhish:
    """Metadata of one generated phishing site."""

    starting_url: str
    landing_url: str
    rdn: str | None
    mld: str | None
    target: Brand | None
    hosting: str
    language: str
    quality: str = "medium"
    evasion: EvasionProfile = field(default_factory=EvasionProfile)

    @property
    def label(self) -> int:
        """Ground-truth class label (1 = phishing)."""
        return 1

    @property
    def target_mld(self) -> str | None:
        """The impersonated brand's mld (the target-ID ground truth)."""
        return self.target.mld if self.target else None


class PhishingSiteGenerator:
    """Generates phishing sites and hosts them on a synthetic web.

    Parameters
    ----------
    web:
        The synthetic web pages are registered into.
    rng:
        ``numpy.random.Generator`` driving all sampling.
    brands:
        Registry of potential targets (their real sites should be hosted
        for outbound links to resolve, though this is not required).
    compromised_pool:
        Legitimate RDNs available for "compromised server" hosting.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        rng: np.random.Generator,
        brands: BrandRegistry,
        compromised_pool: list[str] | None = None,
    ):
        self.web = web
        self.rng = rng
        self.brands = brands
        self.compromised_pool = list(compromised_pool or [])
        self._used_urls: set[str] = set()

    # ------------------------------------------------------------------
    # naming helpers
    # ------------------------------------------------------------------
    def _gibberish(self, syllables: int | None = None) -> str:
        count = syllables or int(self.rng.integers(2, 5))
        out = []
        for _ in range(count):
            out.append(_CONSONANTS[int(self.rng.integers(len(_CONSONANTS)))])
            out.append(_VOWELS[int(self.rng.integers(len(_VOWELS)))])
        word = "".join(out)
        if self.rng.random() < 0.3:
            word += str(int(self.rng.integers(100)))
        return word

    def _hex_token(self, length: int = 8) -> str:
        digits = "0123456789abcdef"
        return "".join(
            digits[int(index)] for index in self.rng.integers(0, 16, length)
        )

    def _typosquat(self, mld: str) -> str:
        """Mutate a target mld the way typosquatters do."""
        base = mld.replace("-", "")
        style = int(self.rng.integers(4))
        position = int(self.rng.integers(1, max(2, len(base) - 1)))
        if style == 0:                               # doubled letter
            return base[:position] + base[position] + base[position:]
        if style == 1:                               # digit lookalike
            lookalikes = {"o": "0", "l": "1", "i": "1", "e": "3", "a": "4",
                          "s": "5"}
            for index, char in enumerate(base):
                if char in lookalikes:
                    return base[:index] + lookalikes[char] + base[index + 1:]
            return base + "1"
        if style == 2:                               # inserted hyphen
            return base[:position] + "-" + base[position:]
        return base[:position] + base[position - 1] + base[position:]  # swapish

    def _misspell(self, word: str) -> str:
        """Light misspelling used by the misspell_terms evasion."""
        if len(word) < 4:
            return word
        position = int(self.rng.integers(1, len(word) - 1))
        style = int(self.rng.integers(3))
        if style == 0:
            return word[:position] + word[position + 1:]           # drop
        if style == 1:
            return word[:position] + word[position] + word[position:]  # double
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        return (word[:position]
                + alphabet[int(self.rng.integers(26))]
                + word[position + 1:])                              # replace

    # ------------------------------------------------------------------
    # hosting
    # ------------------------------------------------------------------
    def _hosting_identity(
        self, hosting: str, target: Brand | None
    ) -> tuple[str, str | None, str | None]:
        """Return ``(host_fqdn_base, rdn, mld)`` for a hosting mode.

        The returned host may later be prefixed with obfuscation
        subdomains (except for IP and hosting-provider modes).
        """
        if hosting == "ip":
            octets = self.rng.integers(1, 255, size=4)
            host = ".".join(str(int(octet)) for octet in octets)
            return host, None, None
        if hosting == "hosting_provider":
            provider = _FREE_HOSTS[int(self.rng.integers(len(_FREE_HOSTS)))]
            token = self._gibberish()
            if target is not None and self.rng.random() < 0.5:
                token = f"{target.mld}-{token}"[:30].strip("-")
            host = f"{token}.{provider}"
            # With PSL private rules the provider domain is the suffix, so
            # the phisher's registrable label is the token.
            return host, host, token
        if hosting == "compromised" and self.compromised_pool:
            rdn = self.compromised_pool[
                int(self.rng.integers(len(self.compromised_pool)))
            ]
            return rdn, rdn, rdn.split(".", 1)[0]
        if hosting == "typosquat" and target is not None:
            mld = self._typosquat(target.mld)
            tld = _CHEAP_TLDS[int(self.rng.integers(len(_CHEAP_TLDS)))]
            return f"{mld}.{tld}", f"{mld}.{tld}", mld
        if hosting == "deceptive":
            words = [
                _LURE_WORDS[int(index)]
                for index in self.rng.integers(0, len(_LURE_WORDS), 2)
            ]
            joiner = "-" if self.rng.random() < 0.6 else ""
            mld = joiner.join(dict.fromkeys(words)) or words[0]
            tld = _CHEAP_TLDS[int(self.rng.integers(len(_CHEAP_TLDS)))]
            return f"{mld}.{tld}", f"{mld}.{tld}", mld
        # default: random gibberish domain
        mld = self._gibberish()
        tld = _CHEAP_TLDS[int(self.rng.integers(len(_CHEAP_TLDS)))]
        return f"{mld}.{tld}", f"{mld}.{tld}", mld

    def _obfuscated_url(
        self, host: str, hosting: str, target: Brand | None,
        evasion: EvasionProfile, quality: str = "medium",
    ) -> str:
        """Build the landing URL with FreeURL obfuscation."""
        https_prob = 0.45 if quality == "high" else 0.18
        scheme = "https" if self.rng.random() < https_prob else "http"
        obfuscate_prob = 0.35 if quality == "high" else 0.55

        subdomain_parts: list[str] = []
        can_prefix = hosting not in ("ip", "hosting_provider")
        if can_prefix and target is not None and self.rng.random() < obfuscate_prob:
            # The classic trick: target's FQDN as subdomains of the
            # phisher's RDN, e.g. paypal.com.evilhost.xyz.
            if self.rng.random() < 0.5:
                subdomain_parts.extend([target.mld, target.suffix])
            else:
                subdomain_parts.append(target.mld)
        if can_prefix and self.rng.random() < 0.3:
            subdomain_parts.append(
                _LURE_WORDS[int(self.rng.integers(len(_LURE_WORDS)))]
            )
        fqdn = ".".join(subdomain_parts + [host]) if subdomain_parts else host

        if evasion.short_url:
            path_segments = [self._hex_token(5)]
        else:
            path_segments = []
            for _ in range(int(self.rng.integers(1, 4))):
                draw = self.rng.random()
                if draw < 0.45:
                    path_segments.append(
                        _LURE_WORDS[int(self.rng.integers(len(_LURE_WORDS)))]
                    )
                elif draw < 0.65 and target is not None:
                    path_segments.append(target.mld)
                else:
                    path_segments.append(
                        self._hex_token(int(self.rng.integers(6, 16)))
                    )
        url = f"{scheme}://{fqdn}/" + "/".join(path_segments)

        if not evasion.short_url and self.rng.random() < 0.45:
            params = [
                f"cmd={_LURE_WORDS[int(self.rng.integers(len(_LURE_WORDS)))]}",
                f"id={self._hex_token(12)}",
            ]
            if target is not None and self.rng.random() < 0.3:
                params.append(f"brand={target.mld}")
            url += "?" + "&".join(params)
        return url

    # ------------------------------------------------------------------
    # content
    # ------------------------------------------------------------------
    def _phish_content(
        self, target: Brand | None, language: str, evasion: EvasionProfile,
        own_base: str, quality: str = "medium",
        secondary_brands: list[Brand] | None = None,
    ) -> tuple[PageSpec, Screenshot]:
        banks = vocabulary(language)
        is_clone = quality == "high"
        secondary_brands = secondary_brands or []

        if target is not None:
            target_terms = list(
                dict.fromkeys(target.name_words + target.keyterms)
            )
            display_name = target.name
            target_base = f"https://www.{target.rdn}"
        else:
            target_terms = []
            display_name = ""
            target_base = ""

        def maybe_misspell(word: str) -> str:
            if evasion.misspell_terms and self.rng.random() < 0.6:
                return self._misspell(word)
            return word

        # Title mimics the target's.
        if target is not None:
            title_terms = [maybe_misspell(term) for term in target_terms[:2]]
            web_word = banks["web"][int(self.rng.integers(len(banks["web"])))]
            title = f"{' '.join(title_terms).title()} - {web_word}"
        else:
            title = self.rng.choice(["Login", "Webmail", "Sign in", ""])

        # Text: lure-heavy and short at low/medium quality; a clone copies
        # enough of the target's copy to read like the real site.
        paragraphs: list[str] = []
        if evasion.minimal_text:
            paragraph_count, word_range = 1, (6, 7)
        elif is_clone:
            paragraph_count, word_range = int(self.rng.integers(3, 6)), (18, 40)
        else:
            paragraph_count, word_range = int(self.rng.integers(1, 3)), (12, 30)
        lure_prob = 0.12 if is_clone else 0.25
        target_prob = 0.22 if is_clone else 0.3
        for _ in range(paragraph_count):
            words: list[str] = []
            length = int(self.rng.integers(*word_range))
            for _ in range(length):
                draw = self.rng.random()
                if draw < target_prob and target_terms:
                    words.append(maybe_misspell(
                        target_terms[int(self.rng.integers(len(target_terms)))]
                    ))
                elif draw < target_prob + lure_prob:
                    words.append(
                        _LURE_WORDS[int(self.rng.integers(len(_LURE_WORDS)))]
                    )
                else:
                    words.append(
                        banks["common"][int(self.rng.integers(len(banks["common"])))]
                    )
            paragraphs.append(" ".join(words).capitalize() + ".")

        # Links: external to the target, few internal.  A clone rewrites
        # most navigation onto the phisher's own host.
        links: list[tuple[str, str]] = []
        if target is not None and not evasion.no_external_links:
            # ~30% of clones are fully self-contained (no external links).
            if is_clone and self.rng.random() < 0.3:
                external_count = 0
            elif is_clone:
                external_count = int(self.rng.integers(1, 3))
            else:
                external_count = int(self.rng.integers(2, 6))
            for _ in range(external_count):
                path = self.rng.choice(
                    ["help", "security", "privacy", "signin", "about"]
                )
                links.append((f"{target_base}/{path}", str(path).title()))
        if is_clone:
            for _ in range(int(self.rng.integers(4, 10))):
                word = banks["web"][int(self.rng.integers(len(banks["web"])))]
                links.append((f"{own_base}/{word}", word.title()))
        elif self.rng.random() < 0.4:
            links.append((f"{own_base}/{self._hex_token(6)}", "Continue"))

        # Resources: target-hosted images plus the phisher's own; a clone
        # self-hosts nearly everything (rewritten asset URLs).
        resources: list[tuple[str, str]] = []
        if target is not None and not evasion.no_external_resources:
            logo_path = self.rng.choice(
                [f"/img/{target.mld}-logo.png", "/logo.png",
                 f"/assets/img/{target.mld}.png"]
            )
            resources.append(("img", f"{target_base}{logo_path}"))
            if not is_clone:
                for _ in range(int(self.rng.integers(0, 3))):
                    name = self.rng.choice(["banner", "header", "footer",
                                            self._hex_token(4)])
                    resources.append(
                        ("img", f"{target_base}/img/{name}.png")
                    )
                if self.rng.random() < 0.3:
                    resources.append(("css", f"{target_base}/assets/site.css"))
        own_resource_count = (
            int(self.rng.integers(4, 9)) if is_clone
            else int(self.rng.integers(1, 4))
        )
        if is_clone:
            resources.append(("css", f"{own_base}/assets/site.css"))
            resources.append(("script", f"{own_base}/assets/app.js"))
        for _ in range(own_resource_count):
            # Kits copy the target's asset names about as often as they
            # ship freshly-hashed blobs.
            if self.rng.random() < 0.55:
                pool = target_terms or list(_LURE_WORDS)
                name = pool[int(self.rng.integers(len(pool)))]
            else:
                name = self._hex_token(6)
            resources.append(("img", f"{own_base}/img/{name}.png"))
        if self.rng.random() < 0.15 and target is not None and not is_clone:
            resources.append(("iframe", f"{target_base}/"))

        # Secondary brand references — payment card logos, "sign in with"
        # buttons.  They muddy target identification (several candidate
        # targets) exactly as on real phish.
        secondary_mentions: list[str] = []
        for brand in secondary_brands:
            resources.append(
                ("img", f"https://www.{brand.rdn}/img/{brand.mld}-logo.png")
            )
            secondary_mentions.append(brand.name)
        if secondary_mentions and paragraphs:
            paragraphs.append(
                "We accept " + " ".join(secondary_mentions) + "."
            )

        if evasion.image_based:
            # Text lives in pixels: body text gone, more images.
            image_texts = [title] + paragraphs
            if display_name:
                image_texts.append(display_name)
            paragraphs = []
            for _ in range(3):
                resources.append(
                    ("img", f"{own_base}/page{self._hex_token(3)}.png")
                )
        else:
            image_texts = [display_name] if display_name else []

        inputs = ["email", "password"]
        if self.rng.random() < 0.4:
            inputs.append("password")
        if self.rng.random() < 0.3:
            inputs.append("text")

        copyright_line = (
            f"© 2015 {display_name}. All rights reserved." if display_name else ""
        )
        spec = PageSpec(
            title=title,
            paragraphs=paragraphs,
            links=links,
            resources=resources,
            inputs=inputs,
            form_action=f"{own_base}/post.php",
            copyright_line=copyright_line,
        )
        rendered = "\n".join(
            part for part in [title, *paragraphs, copyright_line] if part
        )
        screenshot = Screenshot(
            rendered_text=rendered, image_texts=tuple(image_texts)
        )
        return spec, screenshot

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(
        self,
        target: Brand | None = None,
        hosting: str | None = None,
        evasion: EvasionProfile | None = None,
        language: str | None = None,
        quality: str | None = None,
        with_target_hint: bool = True,
    ) -> GeneratedPhish:
        """Generate one phishing site and host its pages.

        Parameters
        ----------
        target:
            Brand to impersonate; sampled from the registry when omitted.
        hosting:
            One of :data:`HOSTING_WEIGHTS`; sampled when omitted.
        evasion:
            Evasion profile; defaults to no evasion.
        language:
            Page language; defaults to the target's language.
        with_target_hint:
            When False, the page carries *no* reference to any target
            (the paper's 17 "unknown target" pages): only input fields.
        """
        if evasion is None:
            # Real campaigns occasionally use a single evasion trick; the
            # training distribution should reflect that (Section VII-C:
            # "we observed some of these techniques actually being used").
            draw = self.rng.random()
            if draw < 0.05:
                evasion = EvasionProfile(minimal_text=True)
            elif draw < 0.10:
                evasion = EvasionProfile(no_external_resources=True)
            elif draw < 0.13:
                evasion = EvasionProfile(image_based=True)
            elif draw < 0.16:
                evasion = EvasionProfile(misspell_terms=True)
            else:
                evasion = EvasionProfile.none()
        if with_target_hint:
            if target is None:
                target = self.brands.sample(self.rng, 1)[0]
        else:
            target = None

        secondary_brands: list[Brand] = []
        if target is not None and self.rng.random() < 0.3:
            pool = [
                brand for brand in self.brands.sample(self.rng, 3)
                if brand.mld != target.mld
            ]
            secondary_brands = pool[: int(self.rng.integers(1, 3))]
        language = language or (target.language if target else "english")

        if quality is None:
            tiers = list(QUALITY_WEIGHTS)
            tier_weights = np.asarray(list(QUALITY_WEIGHTS.values()))
            quality = str(self.rng.choice(tiers, p=tier_weights / tier_weights.sum()))
        if quality not in QUALITY_WEIGHTS:
            raise ValueError(f"unknown quality {quality!r}")

        if hosting is None:
            modes = list(HOSTING_WEIGHTS)
            weights = np.asarray(list(HOSTING_WEIGHTS.values()))
            hosting = str(self.rng.choice(modes, p=weights / weights.sum()))
        if hosting == "compromised" and not self.compromised_pool:
            hosting = "random"
        if hosting == "typosquat" and target is None:
            hosting = "random"

        host, rdn, mld = self._hosting_identity(hosting, target)
        landing_url = self._obfuscated_url(host, hosting, target, evasion, quality)
        tries = 0
        while landing_url in self._used_urls:
            landing_url = self._obfuscated_url(host, hosting, target, evasion, quality)
            tries += 1
            if tries > 10:  # pragma: no cover
                landing_url += f"?u={self._hex_token(6)}"
                break
        self._used_urls.add(landing_url)

        scheme_host = landing_url.split("/", 3)
        own_base = f"{scheme_host[0]}//{scheme_host[2]}"
        spec, screenshot = self._phish_content(
            target, language, evasion, own_base, quality,
            secondary_brands=secondary_brands,
        )
        self.web.host(landing_url, render_html(spec), screenshot,
                      overwrite=True)

        # Redirection: the lure URL often differs from the landing page.
        starting_url = landing_url
        if self.rng.random() < 0.35:
            hops = 1 if self.rng.random() < 0.7 else 2
            current_target = landing_url
            for _ in range(hops):
                shortener = _SHORTENER_RDNS[
                    int(self.rng.integers(len(_SHORTENER_RDNS)))
                ]
                hop_url = f"http://{shortener}/{self._hex_token(6)}"
                self.web.redirect(hop_url, current_target, overwrite=True)
                current_target = hop_url
            starting_url = current_target

        return GeneratedPhish(
            starting_url=starting_url,
            landing_url=landing_url,
            rdn=rdn,
            mld=mld,
            target=target,
            hosting=hosting,
            language=language,
            quality=quality,
            evasion=evasion,
        )

    def generate_with_evasion(self, technique: str, **kwargs) -> GeneratedPhish:
        """Generate a phish using one named evasion technique.

        ``technique`` is an :class:`EvasionProfile` field name, or
        ``"ip_url"`` to force IP hosting.
        """
        if technique == "ip_url":
            return self.generate(hosting="ip", **kwargs)
        if technique not in EvasionProfile.__dataclass_fields__:
            raise ValueError(f"unknown evasion technique {technique!r}")
        profile = replace(EvasionProfile.none(), **{technique: True})
        return self.generate(evasion=profile, **kwargs)
