"""Generator of legitimate websites for the synthetic web.

Legitimate sites follow the regularities the paper's features key on:

* the registered domain reflects the site's name/brand (Section IV-B,
  "legitimate websites are likely to register a domain name reflecting
  the brand or the service they represent");
* terms are used *consistently* across title, text, domain and links;
* most links and loaded resources are internal (same RDN), with little
  redirection.

The generator also injects, at low controlled rates, the hard cases the
paper blames for its residual false positives (Section VII-B): long
concatenated domain names, abbreviated mlds, digit-laden short brands,
parked domains and near-empty pages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.brands import Brand
from repro.corpus.html_builder import PageSpec, render_html
from repro.corpus.wordlists import SHORT_TOKENS, vocabulary
from repro.web.hosting import SyntheticWeb
from repro.web.page import Screenshot

# External infrastructure real sites commonly pull from / link to.
CDN_DOMAINS = (
    "https://fonts.googleapis.com/css?family=open+sans&display=swap",
    "https://ajax.googleapis.com/ajax/libs/jquery/2.1.4/jquery.min.js",
    "https://cdnjs.cloudflare.com/ajax/libs/bootstrap/3.3.5/js/bootstrap.min.js",
    "https://cdn.jsdelivr.net/npm/slider/dist/slider.min.js",
    "https://code.jquery.com/jquery-2.1.4.min.js",
    "https://unpkg.com/widgets@1.2.0/dist/bundle.js",
)
# Legit sites also run on free hosting (blogs, hobby pages) — the very
# same providers phishers abuse.
FREE_HOSTS_LEGIT = ("blogspot.com", "wordpress.com", "github.io",
                    "netlify.app", "wixsite.com")
SOCIAL_LINKS = (
    "https://www.facebook.com/", "https://twitter.com/",
    "https://www.instagram.com/", "https://www.youtube.com/",
    "https://www.linkedin.com/",
)

#: Site kinds and their default sampling weights.  The rare kinds are the
#: FP-prone populations of Section VII-B.
KIND_WEIGHTS = {
    "business": 0.50,
    "blog": 0.16,
    "shop": 0.10,
    "portal": 0.07,       # login-heavy pages (webmail, intranet, SaaS)
    "cdnheavy": 0.05,     # assets served from third-party CDNs
    "longword": 0.03,
    "hyphen": 0.025,
    "shortbrand": 0.015,
    "abbrev": 0.015,
    "parked": 0.002,      # uncleaned test sets only — see CLEANED_KIND_WEIGHTS
    "minimal": 0.002,
}

#: Weights after the paper's legTrain cleaning pass, which removed
#: unavailable pages and dead links: no parked or minimal pages remain.
CLEANED_KIND_WEIGHTS = {
    kind: weight for kind, weight in KIND_WEIGHTS.items()
    if kind not in ("parked", "minimal")
}

_SUFFIX_POOL = ("com", "com", "com", "net", "org", "info", "io", "co", "biz")
_CC_SUFFIX = {
    "english": ("com", "co.uk", "us", "net", "org"),
    "french": ("fr", "com", "net"),
    "german": ("de", "com", "net"),
    "italian": ("it", "com", "net"),
    "portuguese": ("com.br", "pt", "com"),
    "spanish": ("es", "com", "net", "com.mx", "com.ar"),
}


@dataclass
class GeneratedSite:
    """Metadata of one generated legitimate site."""

    starting_url: str
    landing_url: str
    rdn: str
    mld: str
    language: str
    kind: str
    name_terms: tuple[str, ...]
    brand: Brand | None = None
    popularity_tier: int = 3
    searchable_text: str = ""

    @property
    def label(self) -> int:
        """Ground-truth class label (0 = legitimate)."""
        return 0


class LegitimateSiteGenerator:
    """Generates legitimate sites and hosts them on a synthetic web.

    Parameters
    ----------
    web:
        The synthetic web pages are registered into.
    rng:
        ``numpy.random.Generator`` driving all sampling.
    language:
        Default content language.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        rng: np.random.Generator,
        language: str = "english",
    ):
        self.web = web
        self.rng = rng
        self.language = language
        self._used_mlds: set[str] = set()

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------
    def _pick(self, bank, count: int = 1) -> list[str]:
        indices = self.rng.integers(0, len(bank), size=count)
        return [bank[int(index)] for index in indices]

    def _sentence(self, banks, name_terms, word_count: int) -> str:
        """One sentence mixing vocabulary banks and site-name mentions."""
        words: list[str] = []
        for _ in range(word_count):
            draw = self.rng.random()
            if draw < 0.08 and name_terms:
                words.append(name_terms[int(self.rng.integers(len(name_terms)))])
            elif draw < 0.16:
                words.append(SHORT_TOKENS[int(self.rng.integers(len(SHORT_TOKENS)))])
            elif draw < 0.28:
                words.append(banks["web"][int(self.rng.integers(len(banks["web"])))])
            elif draw < 0.38:
                words.append(
                    banks["business"][int(self.rng.integers(len(banks["business"])))]
                )
            else:
                words.append(
                    banks["common"][int(self.rng.integers(len(banks["common"])))]
                )
        sentence = " ".join(words)
        return sentence.capitalize() + "."

    def _paragraph(self, banks, name_terms, sentences: int) -> str:
        return " ".join(
            self._sentence(banks, name_terms, int(self.rng.integers(8, 18)))
            for _ in range(sentences)
        )

    def _unique_mld(self, candidate: str) -> str:
        mld = candidate
        tries = 0
        while mld in self._used_mlds:
            tries += 1
            mld = f"{candidate}{int(self.rng.integers(2, 99))}"
            if tries > 20:  # pragma: no cover - pathological collision storm
                mld = f"{candidate}x{int(self.rng.integers(1000))}"
        self._used_mlds.add(mld)
        return mld

    # ------------------------------------------------------------------
    # site naming per kind
    # ------------------------------------------------------------------
    def _site_identity(self, kind: str, banks) -> tuple[str, tuple[str, ...], str]:
        """Return ``(mld, name_terms, display_name)`` for a site kind."""
        business = banks["business"]
        common = banks["common"]
        first = self._pick(business)[0]
        second = self._pick(common)[0]
        third = self._pick(common)[0]

        if kind == "longword":
            # e.g. theinstantexchange — one long unsplittable term.
            mld = f"{second}{third}{first}"
            return self._unique_mld(mld), (second, third, first), \
                f"{second.capitalize()}{third.capitalize()}{first.capitalize()}"
        if kind == "hyphen":
            mld = f"{first}-{second}"
            return self._unique_mld(mld), (first, second), \
                f"{first.capitalize()}-{second.capitalize()}"
        if kind == "shortbrand":
            # Digit-separated short brand: terms are discarded (< 3 letters).
            letters = "abcdefghijklmnopqrstuvwxyz"
            mld = (
                letters[int(self.rng.integers(26))]
                + str(int(self.rng.integers(10)))
                + letters[int(self.rng.integers(26))]
                + letters[int(self.rng.integers(26))]
            )
            return self._unique_mld(mld), (first, second), mld.upper()
        if kind == "abbrev":
            # mld abbreviates the name: "premier financial" -> "pfa".
            abbrev = first[:2] + second[:1]
            return self._unique_mld(abbrev), (first, second), \
                f"{first.capitalize()} {second.capitalize()}"
        mld = f"{first}{second}"
        return self._unique_mld(mld), (first, second), \
            f"{first.capitalize()} {second.capitalize()}"

    # ------------------------------------------------------------------
    # page assembly
    # ------------------------------------------------------------------
    def _internal_links(self, base: str, banks, count: int) -> list[tuple[str, str]]:
        links = []
        for _ in range(count):
            segments = self._pick(banks["web"] + banks["common"],
                                  int(self.rng.integers(1, 3)))
            anchor = " ".join(self._pick(banks["common"], 2))
            links.append((f"{base}/{'/'.join(segments)}", anchor))
        return links

    def _build_standard_site(
        self, kind: str, language: str
    ) -> GeneratedSite:
        banks = vocabulary(language)
        mld, name_terms, display_name = self._site_identity(kind, banks)
        suffix_pool = _CC_SUFFIX.get(language, _SUFFIX_POOL)
        suffix = suffix_pool[int(self.rng.integers(len(suffix_pool)))]
        rdn = f"{mld}.{suffix}"

        # A few legitimate sites live on free hosting (hobby blogs), on
        # the very providers phishers abuse.
        free_hosted = self.rng.random() < 0.04
        if free_hosted:
            provider = FREE_HOSTS_LEGIT[
                int(self.rng.integers(len(FREE_HOSTS_LEGIT)))
            ]
            rdn = f"{mld}.{provider}"  # provider domains are PSL suffixes

        use_https = self.rng.random() < 0.82
        scheme = "https" if use_https else "http"
        use_www = self.rng.random() < 0.6 and not free_hosted
        host = f"www.{rdn}" if use_www else rdn
        # Some real sites hang services off extra subdomains.
        if not free_hosted and self.rng.random() < 0.12:
            service = self._pick(("shop", "mail", "account", "portal",
                                  "app", "secure", "my"))[0]
            host = f"{service}.{rdn}"
        base = f"{scheme}://{host}"

        # Landing URL: homepage, a subpage, or a deep page with tracking
        # ids — real URL tails are long too.
        path_draw = self.rng.random()
        if path_draw < 0.35:
            path_terms = self._pick(banks["web"] + banks["common"],
                                    int(self.rng.integers(1, 4)))
            landing_url = f"{base}/{'/'.join(path_terms)}"
        elif path_draw < 0.47:
            segments = self._pick(banks["web"] + banks["common"],
                                  int(self.rng.integers(2, 5)))
            digits = "0123456789abcdef"
            token = "".join(
                digits[int(i)] for i in self.rng.integers(0, 16, 10)
            )
            landing_url = f"{base}/{'/'.join(segments)}/{token}"
            if self.rng.random() < 0.5:
                landing_url += (
                    f"?sessionid={token[:8]}&ref="
                    f"{self._pick(banks['web'])[0]}"
                )
        else:
            landing_url = f"{base}/"

        # Content volume per kind.
        if kind == "blog":
            paragraph_count = int(self.rng.integers(4, 8))
            internal_count = int(self.rng.integers(10, 22))
        elif kind == "shop":
            paragraph_count = int(self.rng.integers(2, 5))
            internal_count = int(self.rng.integers(8, 18))
        elif kind == "portal":
            # Login portals are text-poor and form-heavy, like phish.
            paragraph_count = 1
            internal_count = int(self.rng.integers(1, 5))
        else:
            paragraph_count = int(self.rng.integers(2, 6))
            internal_count = int(self.rng.integers(5, 14))

        paragraphs = [
            self._paragraph(banks, name_terms, int(self.rng.integers(2, 5)))
            for _ in range(paragraph_count)
        ]
        tagline = " ".join(self._pick(banks["common"], 3))
        if kind == "portal":
            title = self._pick(banks["web"], 1)[0].capitalize()
            if self.rng.random() < 0.6:
                title = f"{title} - {display_name}"
        elif self.rng.random() < 0.08:
            # Some real sites ship generic titles with no brand mention.
            title = tagline.capitalize()
        else:
            title = f"{display_name} - {tagline}"
        headings = [
            " ".join([display_name] + self._pick(banks["common"], 2))
        ]

        links = self._internal_links(base, banks, internal_count)
        # Blogs name their links after the URL (the paper's news-site case).
        if kind == "blog":
            links = [
                (url, " ".join(url.rsplit("/", 2)[-2:])) for url, _txt in links
            ]
        for _ in range(int(self.rng.integers(0, 4))):
            links.append(
                (SOCIAL_LINKS[int(self.rng.integers(len(SOCIAL_LINKS)))],
                 self._pick(banks["web"])[0])
            )
        if kind == "blog":
            # Blogs cross-link other publications heavily.
            for _ in range(int(self.rng.integers(2, 7))):
                other = self._pick(banks["common"], 2)
                links.append(
                    (f"https://www.{other[0]}{other[1]}.com/"
                     f"{self._pick(banks['common'])[0]}",
                     " ".join(other))
                )

        resources: list[tuple[str, str]] = []
        if kind == "cdnheavy":
            # Assets outsourced to a third-party CDN: the logged links are
            # mostly *external*, which is phish-like (Section VII-B noise).
            provider = self._pick(("cloudassets", "fastcdn", "edgecache",
                                   "staticfarm"))[0]
            static_base = (
                f"https://cdn{int(self.rng.integers(1, 9))}.{provider}.net"
            )
        elif self.rng.random() < 0.4:
            static_base = f"{scheme}://static.{rdn}"
        else:
            static_base = base
        def asset_name(pool) -> str:
            # Build pipelines hash a good share of real-site asset names
            # (cache busting), so dictionary names are not universal.
            if self.rng.random() < 0.3:
                digits = "0123456789abcdef"
                return "".join(
                    digits[int(i)] for i in self.rng.integers(0, 16, 8)
                )
            return self._pick(pool)[0]

        for _ in range(int(self.rng.integers(1, 4))):
            resources.append(
                ("css", f"{static_base}/css/{asset_name(banks['common'])}.css")
            )
        for _ in range(int(self.rng.integers(1, 4))):
            # Self-hosted copies of common libraries are ubiquitous, so
            # internal script names overlap CDN vocabulary.
            if self.rng.random() < 0.4:
                lib = self._pick(("jquery", "bootstrap", "analytics",
                                  "slider", "main", "app"))[0]
                resources.append(("script", f"{static_base}/js/{lib}.min.js"))
            else:
                resources.append(
                    ("script",
                     f"{static_base}/js/{asset_name(banks['common'])}.js")
                )
        for _ in range(int(self.rng.integers(2, 8))):
            resources.append(
                ("img",
                 f"{static_base}/img/{asset_name(banks['common'] + name_terms)}.png")
            )
        for _ in range(int(self.rng.integers(0, 3))):
            resources.append(
                ("script", CDN_DOMAINS[int(self.rng.integers(len(CDN_DOMAINS)))])
            )
        # Hotlinked images from partner sites (short external URLs).
        if self.rng.random() < 0.25:
            partner = "".join(self._pick(banks["common"], 2))
            for _ in range(int(self.rng.integers(1, 3))):
                name = self._pick(banks["common"])[0]
                resources.append(
                    ("img", f"https://img.{partner}.com/{name}.jpg")
                )

        inputs: list[str] = []
        if kind == "portal":
            inputs.extend(["email", "password"])
            if self.rng.random() < 0.3:
                inputs.append("password")  # confirm field
        else:
            if self.rng.random() < 0.55:
                inputs.append("text")      # search box
            if self.rng.random() < 0.3:
                inputs.append("email")     # newsletter
            if kind == "shop" and self.rng.random() < 0.5:
                inputs.extend(["text", "password"])

        copyright_line = f"© 2015 {display_name}. All rights reserved."
        spec = PageSpec(
            title=title,
            paragraphs=paragraphs,
            links=links,
            resources=resources,
            inputs=inputs,
            form_action=f"{base}/search",
            copyright_line=copyright_line,
            headings=headings,
        )
        html = render_html(spec)
        screenshot = Screenshot(
            rendered_text="\n".join([title, *headings, *paragraphs,
                                     copyright_line]),
            image_texts=(display_name,) if self.rng.random() < 0.5 else (),
        )
        self.web.host(landing_url, html, screenshot)

        # Starting URL: usually the landing URL; sometimes a redirecting
        # plain-http / non-www variant, or a marketing tracker hop on a
        # *different* RDN (newsletters and ads do this for real sites too).
        starting_url = landing_url
        redirect_draw = self.rng.random()
        if redirect_draw < 0.2:
            alt_host = rdn if use_www else f"www.{rdn}"
            starting_url = f"http://{alt_host}/"
            if starting_url != landing_url:
                self.web.redirect(starting_url, landing_url)
        elif redirect_draw < 0.27:
            tracker = (
                f"http://track.adserv{int(self.rng.integers(1, 6))}.com/r"
                f"?cid={int(self.rng.integers(10**6))}"
            )
            self.web.redirect(tracker, landing_url)
            starting_url = tracker

        tier = int(self.rng.choice([1, 2, 3, 4], p=[0.08, 0.22, 0.4, 0.3]))
        searchable = " ".join([title, *paragraphs])
        return GeneratedSite(
            starting_url=starting_url,
            landing_url=landing_url,
            rdn=rdn,
            mld=mld,
            language=language,
            kind=kind,
            name_terms=name_terms,
            popularity_tier=tier,
            searchable_text=searchable,
        )

    def _build_parked_site(self, language: str) -> GeneratedSite:
        """A parked domain: ad links, near-zero unique content."""
        banks = vocabulary(language)
        mld, name_terms, display_name = self._site_identity("business", banks)
        rdn = f"{mld}.com"
        landing_url = f"http://{rdn}/"
        ad_links = [
            (f"http://ads{index}.adnetwork{int(self.rng.integers(1, 9))}.com/"
             f"click?domain={mld}",
             " ".join(self._pick(banks["business"], 2)))
            for index in range(int(self.rng.integers(4, 10)))
        ]
        spec = PageSpec(
            title=f"{rdn} - domain parked",
            paragraphs=["This domain may be for sale. Related searches:"],
            links=ad_links,
            resources=[("script", "http://cdn.parkingpartner.net/serve.js")],
            inputs=[],
        )
        html = render_html(spec)
        self.web.host(landing_url, html, Screenshot(rendered_text=spec.title))
        return GeneratedSite(
            starting_url=landing_url,
            landing_url=landing_url,
            rdn=rdn,
            mld=mld,
            language=language,
            kind="parked",
            name_terms=name_terms,
            popularity_tier=4,
            searchable_text="",
        )

    def _build_minimal_site(self, language: str) -> GeneratedSite:
        """A nearly-empty page (unavailable/placeholder content)."""
        banks = vocabulary(language)
        mld, name_terms, _display_name = self._site_identity("business", banks)
        rdn = f"{mld}.com"
        landing_url = f"http://{rdn}/index.html"
        spec = PageSpec(title="", paragraphs=["Under construction"])
        self.web.host(landing_url, render_html(spec), Screenshot())
        return GeneratedSite(
            starting_url=landing_url,
            landing_url=landing_url,
            rdn=rdn,
            mld=mld,
            language=language,
            kind="minimal",
            name_terms=name_terms,
            popularity_tier=4,
            searchable_text="",
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, language: str | None = None,
                 kind: str | None = None,
                 kind_weights: dict[str, float] | None = None) -> GeneratedSite:
        """Generate one legitimate site and host its pages.

        ``kind`` defaults to a draw from ``kind_weights`` (default
        :data:`KIND_WEIGHTS`; pass :data:`CLEANED_KIND_WEIGHTS` for a
        corpus that went through the paper's cleaning pass).
        """
        language = language or self.language
        if kind is None:
            weights_map = kind_weights or KIND_WEIGHTS
            kinds = list(weights_map)
            weights = np.asarray(list(weights_map.values()))
            kind = str(self.rng.choice(kinds, p=weights / weights.sum()))
        if kind == "parked":
            return self._build_parked_site(language)
        if kind == "minimal":
            return self._build_minimal_site(language)
        return self._build_standard_site(kind, language)

    def generate_brand_site(self, brand: Brand) -> GeneratedSite:
        """Host the *real* website of a brand (homepage + login page).

        Phishing pages link back to these URLs; the search engine indexes
        them; the Alexa ranking puts them in the top tier.
        """
        banks = vocabulary(brand.language)
        self._used_mlds.add(brand.mld)
        base = f"https://www.{brand.rdn}"
        landing_url = f"{base}/"
        login_url = f"{base}/signin"

        name_terms = tuple(
            term for term in brand.name_words + brand.keyterms if len(term) >= 3
        )
        paragraphs = [
            self._paragraph(banks, name_terms, 3) for _ in range(3)
        ]
        # Brand keyterms appear prominently (titles, headings, text).
        brand_sentence = (
            f"{brand.name} {' '.join(brand.keyterms)} "
            + " ".join(self._pick(banks["web"], 4))
        )
        paragraphs.insert(0, brand_sentence.capitalize() + ".")

        links = self._internal_links(base, banks, 12)
        links.append((login_url, "Sign in"))
        resources = [
            ("css", f"{base}/assets/site.css"),
            ("script", f"{base}/assets/app.js"),
            ("img", f"{base}/img/{brand.mld}-logo.png"),
            ("img", f"{base}/img/banner.png"),
        ]
        copyright_line = f"© 2015 {brand.name}. All rights reserved."
        title = f"{brand.name} - " + " ".join(brand.keyterms[:3])
        html = render_html(PageSpec(
            title=title,
            paragraphs=paragraphs,
            links=links,
            resources=resources,
            inputs=["text"],
            copyright_line=copyright_line,
            headings=[brand.name],
        ))
        self.web.host(landing_url, html, Screenshot(
            rendered_text="\n".join([title, brand.name, *paragraphs,
                                     copyright_line]),
            image_texts=(brand.name,),
        ))

        login_html = render_html(PageSpec(
            title=f"Sign in - {brand.name}",
            paragraphs=[f"Sign in to your {brand.name} account to continue."],
            links=[(landing_url, brand.name), (f"{base}/help", "Help")],
            resources=[("css", f"{base}/assets/site.css"),
                       ("img", f"{base}/img/{brand.mld}-logo.png")],
            inputs=["email", "password"],
            form_action=f"{base}/session",
            copyright_line=copyright_line,
        ))
        self.web.host(login_url, login_html, Screenshot(
            rendered_text=f"Sign in - {brand.name}\n{copyright_line}",
            image_texts=(brand.name,),
        ))
        # Bare-domain redirect, as real brand sites do.
        self.web.redirect(f"http://{brand.rdn}/", landing_url)

        searchable = " ".join([title, *paragraphs])
        return GeneratedSite(
            starting_url=landing_url,
            landing_url=landing_url,
            rdn=brand.rdn,
            mld=brand.mld,
            language=brand.language,
            kind="brand",
            name_terms=name_terms,
            brand=brand,
            popularity_tier=brand.popularity,
            searchable_text=searchable,
        )
