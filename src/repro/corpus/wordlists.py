"""Per-language vocabularies for the synthetic web.

The paper evaluates on legitimate webpages in six European languages
(English, French, German, Italian, Portuguese, Spanish).  Each language
here gets three banks of words:

* ``common`` — everyday words used to fill body text;
* ``web`` — website-ish words (navigation labels, calls to action);
* ``business`` — commerce/service words used in site names, titles and
  domain names.

All words have >= 3 canonical letters so they survive term extraction
(Section III-B); accented words are included on purpose — the extraction
pipeline canonicalises them, which is part of what we are reproducing.
"""

from __future__ import annotations

LANGUAGES = ("english", "french", "german", "italian", "portuguese", "spanish")

_VOCABULARIES: dict[str, dict[str, tuple[str, ...]]] = {
    "english": {
        "common": (
            "about", "after", "again", "always", "around", "because", "before",
            "between", "company", "country", "customer", "daily", "design",
            "development", "different", "during", "every", "example", "family",
            "feature", "first", "follow", "found", "free", "friend", "future",
            "general", "great", "group", "health", "history", "house", "idea",
            "important", "information", "interest", "large", "latest", "learn",
            "life", "little", "local", "long", "make", "management", "member",
            "moment", "money", "month", "morning", "nature", "network", "news",
            "night", "number", "offer", "office", "online", "order", "other",
            "people", "perfect", "person", "place", "plan", "point", "popular",
            "power", "present", "price", "problem", "product", "program",
            "project", "public", "quality", "question", "read", "reason",
            "report", "research", "result", "right", "school", "science",
            "season", "second", "section", "series", "service", "share",
            "simple", "small", "social", "special", "start", "story", "street",
            "strong", "student", "study", "style", "subject", "system", "team",
            "technology", "thing", "this", "time", "today", "together", "travel",
            "update", "value", "video", "view", "water", "website", "week",
            "welcome", "with", "work", "world", "year", "young",
        ),
        "web": (
            "account", "access", "blog", "browse", "cart", "catalog", "checkout",
            "click", "contact", "cookie", "dashboard", "delivery", "discover",
            "download", "email", "explore", "faq", "help", "home", "join",
            "language", "login", "logout", "menu", "newsletter", "page",
            "password", "payment", "policy", "privacy", "profile", "register",
            "search", "secure", "settings", "shipping", "shop", "signin",
            "signup", "sitemap", "submit", "subscribe", "support", "terms",
            "username", "verify",
        ),
        "business": (
            "advisor", "agency", "analytics", "assurance", "bank", "banking",
            "capital", "care", "cloud", "commerce", "consulting", "credit",
            "data", "deposit", "digital", "direct", "energy", "exchange",
            "express", "finance", "financial", "fund", "garden", "global",
            "holding", "insurance", "invest", "kitchen", "lab", "logistics",
            "market", "media", "mobile", "partner", "pay", "premier", "prime",
            "savings", "secure", "smart", "solutions", "store", "studio",
            "trade", "transfer", "trust", "union", "ventures", "wallet", "web",
        ),
    },
    "french": {
        "common": (
            "abord", "accueil", "aide", "ainsi", "annee", "apres", "article",
            "aujourd", "aussi", "autre", "avant", "avec", "beaucoup", "besoin",
            "bien", "bonjour", "cependant", "chaque", "chose", "client",
            "commande", "comme", "compte", "conseil", "dans", "decouvrir",
            "depuis", "dernier", "deux", "disponible", "donc", "droit",
            "emploi", "encore", "enfant", "ensemble", "entre", "entreprise",
            "envie", "equipe", "espace", "exemple", "faire", "famille",
            "femme", "fois", "france", "gestion", "grand", "gratuit", "groupe",
            "histoire", "homme", "idee", "important", "information", "jour",
            "journee", "livre", "long", "magasin", "maison", "marche", "matin",
            "meilleur", "meme", "mois", "monde", "national", "nombre",
            "nouveau", "nouvelle", "offre", "ouvert", "pays", "pendant",
            "personne", "petit", "peut", "place", "plus", "point", "pour",
            "premier", "prix", "produit", "profiter", "projet", "propos",
            "qualite", "question", "raison", "recherche", "region", "rendre",
            "reponse", "reseau", "sans", "sante", "savoir", "semaine",
            "service", "seulement", "simple", "site", "societe", "solution",
            "sous", "souvent", "suivre", "temps", "tous", "tout", "travail",
            "trouver", "utiliser", "valeur", "vente", "vers", "vie", "ville",
            "voir", "votre", "vous", "voyage",
        ),
        "web": (
            "abonnement", "acces", "achat", "actualites", "adresse", "aide",
            "boutique", "catalogue", "commander", "communaute", "compte",
            "confidentialite", "connexion", "contact", "cookies", "courriel",
            "decouvrez", "email", "identifiant", "inscription", "langue",
            "lettre", "livraison", "menu", "merci", "mentions", "motdepasse",
            "newsletter", "page", "paiement", "panier", "plan", "politique",
            "profil", "recherche", "reglement", "retour", "securise",
            "telecharger", "valider", "verifier",
        ),
        "business": (
            "agence", "assurance", "banque", "caisse", "capital", "carte",
            "change", "commerce", "conseil", "courtier", "credit", "direct",
            "epargne", "finance", "fonds", "garantie", "immobilier",
            "investir", "livret", "marche", "mutuelle", "paiement", "patrimoine",
            "placement", "portefeuille", "poste", "pret", "rachat", "societe",
            "transfert", "virement",
        ),
    },
    "german": {
        "common": (
            "aber", "alle", "allgemein", "angebot", "arbeit", "artikel",
            "auch", "aufgabe", "beginn", "beispiel", "bereich", "bericht",
            "beste", "bild", "bitte", "buch", "darum", "dabei", "damit",
            "danke", "dann", "datum", "dein", "deutschland", "dienst",
            "dieser", "ding", "doch", "dort", "durch", "eigen", "einfach",
            "ende", "energie", "entwicklung", "erfahrung", "erfolg", "erste",
            "familie", "finden", "firma", "folgen", "frage", "frau", "frei",
            "freund", "fuhrung", "ganz", "gegen", "gehen", "geld", "gemeinsam",
            "geschichte", "gesellschaft", "gesundheit", "gruppe", "gute",
            "haben", "haus", "heute", "hier", "hilfe", "hoch", "idee", "immer",
            "information", "inhalt", "jahr", "jetzt", "jung", "kind", "klein",
            "kommen", "kunde", "kurz", "land", "lange", "leben", "leistung",
            "lesen", "leute", "liebe", "losung", "machen", "mann", "markt",
            "mehr", "mensch", "mit", "mitte", "monat", "morgen", "nach",
            "nacht", "name", "natur", "neue", "nicht", "noch", "nummer",
            "nutzen", "oder", "ohne", "ort", "plan", "platz", "preis",
            "problem", "produkt", "projekt", "punkt", "qualitat", "recht",
            "region", "reise", "richtig", "sache", "schnell", "schon",
            "schule", "sehen", "sehr", "seite", "selbst", "sicher", "sind",
            "stadt", "stark", "stelle", "stunde", "suche", "system", "team",
            "teil", "thema", "tipp", "uber", "unternehmen", "viel", "vielen",
            "weitere", "welt", "wert", "wichtig", "wissen", "woche", "wort",
            "zeit", "ziel", "zusammen", "zwischen",
        ),
        "web": (
            "abmelden", "abonnieren", "anmelden", "anmeldung", "benutzer",
            "benutzername", "bestellen", "bestellung", "bezahlen", "datenschutz",
            "download", "einkaufswagen", "einloggen", "email", "hilfe",
            "impressum", "kennwort", "konto", "kontakt", "lieferung", "mein",
            "newsletter", "passwort", "profil", "registrieren", "sicherheit",
            "startseite", "suchen", "versand", "warenkorb", "weiter",
            "zahlung", "zugang",
        ),
        "business": (
            "aktien", "anlage", "bank", "beratung", "borse", "depot", "direkt",
            "finanz", "finanzen", "geldanlage", "girokonto", "handel",
            "kapital", "kasse", "konto", "kredit", "markt", "sparen",
            "sparkasse", "uberweisung", "verein", "versicherung", "vermogen",
            "wirtschaft", "zahlung", "zins",
        ),
    },
    "italian": {
        "common": (
            "abbiamo", "accesso", "alcuni", "altro", "anche", "ancora", "anni",
            "anno", "attraverso", "azienda", "bene", "casa", "caso", "citta",
            "cliente", "come", "cosa", "cosi", "creare", "cultura", "dalla",
            "dare", "della", "dento", "dopo", "dove", "durante", "ecco",
            "esempio", "essere", "fare", "famiglia", "fine", "forma", "forte",
            "gente", "giorno", "grande", "grazie", "gruppo", "idea",
            "importante", "informazioni", "insieme", "italia", "lavoro",
            "libero", "libro", "luogo", "madre", "maggio", "mano", "mattina",
            "meglio", "mercato", "mese", "mettere", "migliore", "modo",
            "molto", "mondo", "natura", "nazionale", "notte", "nuovo", "oggi",
            "ogni", "oltre", "ordine", "pagina", "paese", "parte", "passo",
            "pensare", "persona", "piccolo", "piano", "porta", "possibile",
            "prezzo", "prima", "primo", "prodotto", "progetto", "proprio",
            "punto", "qualcosa", "qualita", "quando", "quello", "questo",
            "ragione", "rete", "ricerca", "risposta", "salute", "sapere",
            "scoprire", "scuola", "sempre", "senza", "servizio", "settimana",
            "sistema", "societa", "soluzione", "sono", "storia", "strada",
            "studio", "successo", "tempo", "terra", "tutto", "ultimo", "unico",
            "uomo", "utile", "valore", "vedere", "vendita", "verso", "vita",
            "vivere", "volta",
        ),
        "web": (
            "abbonamento", "accedi", "accesso", "account", "acquista",
            "aggiungi", "aiuto", "area", "carrello", "catalogo", "cerca",
            "chiudi", "condizioni", "consegna", "contatti", "cookie",
            "email", "gratis", "indirizzo", "iscriviti", "lingua", "negozio",
            "newsletter", "offerte", "ordina", "pagamento", "pagina",
            "password", "privacy", "profilo", "registrati", "ricerca",
            "sicuro", "spedizione", "termini", "utente", "verifica",
        ),
        "business": (
            "agenzia", "assicurazione", "banca", "bancario", "borsa",
            "capitale", "carta", "cassa", "commercio", "conto", "credito",
            "deposito", "diretta", "finanza", "finanziaria", "fondo",
            "gestione", "impresa", "investimento", "mercato", "mutuo",
            "pagamenti", "posta", "prestito", "risparmio", "tesoro",
            "trasferimento",
        ),
    },
    "portuguese": {
        "common": (
            "abril", "agora", "ainda", "alguns", "ano", "antes", "apenas",
            "aqui", "area", "assim", "ate", "bem", "boa", "brasil", "caso",
            "cidade", "cliente", "coisa", "com", "como", "conta", "contra",
            "casa", "cada", "dia", "depois", "desde", "dinheiro", "direito",
            "dois", "durante", "ela", "ele", "empresa", "entre", "equipe",
            "escola", "espaco", "estado", "este", "exemplo", "familia",
            "fazer", "filho", "fim", "forma", "forte", "gente", "governo",
            "grande", "grupo", "historia", "hoje", "hora", "ideia",
            "importante", "informacao", "inicio", "junto", "lado", "lugar",
            "maior", "mais", "melhor", "mercado", "mesmo", "momento", "mundo",
            "muito", "nacional", "nada", "noite", "nome", "nosso", "nova",
            "novo", "numero", "onde", "ontem", "outro", "pagina", "pais",
            "para", "parte", "pessoa", "plano", "ponto", "porque", "possivel",
            "preco", "primeiro", "problema", "produto", "programa", "projeto",
            "qualidade", "quando", "quanto", "quase", "quem", "razao", "rede",
            "regiao", "resposta", "resultado", "saber", "saude", "semana",
            "sempre", "servico", "sistema", "sobre", "sociedade", "solucao",
            "tambem", "tarde", "tempo", "terra", "tipo", "todo", "trabalho",
            "tudo", "ultimo", "valor", "vender", "ver", "vez", "viagem",
            "vida", "voce",
        ),
        "web": (
            "acessar", "acesso", "ajuda", "atendimento", "busca", "cadastro",
            "carrinho", "catalogo", "compra", "comprar", "condicoes",
            "contato", "conta", "email", "endereco", "entrar", "entrega",
            "enviar", "frete", "gratis", "idioma", "inicio", "loja",
            "newsletter", "oferta", "pagamento", "pagina", "pedido",
            "perfil", "pesquisa", "politica", "privacidade", "registrar",
            "seguro", "senha", "suporte", "termos", "usuario", "verificar",
        ),
        "business": (
            "agencia", "banco", "bancario", "bolsa", "caixa", "cambio",
            "capital", "cartao", "comercio", "conta", "corretora", "credito",
            "deposito", "digital", "emprestimo", "financas", "financeira",
            "fundo", "investimento", "mercado", "negocio", "pagamentos",
            "poupanca", "seguro", "tesouro", "transferencia",
        ),
    },
    "spanish": {
        "common": (
            "ahora", "algo", "alguien", "ano", "antes", "aqui", "area",
            "asi", "ayuda", "bien", "bueno", "cada", "calidad", "calle",
            "cambio", "casa", "caso", "ciudad", "cliente", "comercio",
            "como", "compania", "conocer", "contra", "cosa", "cuando",
            "cuenta", "cultura", "dato", "deber", "decir", "desde", "despues",
            "dia", "dinero", "donde", "durante", "ejemplo", "ella", "empresa",
            "encontrar", "entre", "equipo", "escuela", "espacio", "espana",
            "estado", "este", "familia", "forma", "fuerte", "futuro", "gente",
            "gobierno", "gran", "grande", "grupo", "hacer", "hasta", "historia",
            "hombre", "hora", "hoy", "idea", "importante", "informacion",
            "inicio", "junto", "lado", "lugar", "luego", "madre", "manera",
            "mano", "mayor", "mejor", "mercado", "mes", "mismo", "momento",
            "mucho", "mujer", "mundo", "nacional", "nada", "noche", "nombre",
            "nuestro", "nueva", "nuevo", "numero", "otro", "pagina", "pais",
            "palabra", "para", "parte", "persona", "plan", "poder", "porque",
            "posible", "precio", "primero", "problema", "producto", "programa",
            "proyecto", "pueblo", "punto", "razon", "red", "region",
            "respuesta", "resultado", "saber", "salud", "semana", "servicio",
            "siempre", "sistema", "sobre", "sociedad", "solucion", "tambien",
            "tarde", "tiempo", "tierra", "tipo", "todo", "trabajo", "ultimo",
            "valor", "vender", "ver", "vez", "viaje", "vida", "zona",
        ),
        "web": (
            "acceder", "acceso", "articulo", "ayuda", "buscar", "busqueda",
            "carrito", "catalogo", "cesta", "comprar", "condiciones",
            "contacto", "contrasena", "correo", "cuenta", "direccion",
            "email", "enviar", "envio", "gratis", "idioma", "ingresar",
            "inicio", "oferta", "pagina", "pago", "pedido", "perfil",
            "politica", "privacidad", "registrarse", "seguro", "soporte",
            "terminos", "tienda", "usuario", "verificar",
        ),
        "business": (
            "agencia", "ahorro", "banca", "banco", "bolsa", "caja", "cambio",
            "capital", "comercio", "credito", "cuenta", "deposito", "dinero",
            "empresa", "finanzas", "financiera", "fondo", "hipoteca",
            "inversion", "mercado", "negocio", "pagos", "prestamo", "seguro",
            "tarjeta", "tesoro", "transferencia",
        ),
    },
}

# Short filler tokens that appear on real pages but are *discarded* by the
# term extractor (< 3 letters) — included so pages contain realistic noise.
SHORT_TOKENS = ("a", "an", "de", "el", "la", "le", "of", "to", "in", "on",
                "e", "o", "um", "il", "du", "im", "am", "es", "y", "et")


def vocabulary(language: str) -> dict[str, tuple[str, ...]]:
    """The word banks (``common``/``web``/``business``) for ``language``."""
    try:
        return _VOCABULARIES[language]
    except KeyError:
        raise ValueError(
            f"unknown language {language!r}; expected one of {LANGUAGES}"
        ) from None


def all_words(language: str) -> tuple[str, ...]:
    """All words of a language, across the three banks."""
    banks = vocabulary(language)
    return banks["common"] + banks["web"] + banks["business"]
