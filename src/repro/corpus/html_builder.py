"""Shared HTML assembly for the corpus generators.

Both generators (legitimate and phishing) emit real HTML through this
builder, so the downstream pipeline exercises the actual parser — no
shortcuts from generator to feature extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html import escape


@dataclass
class PageSpec:
    """Declarative description of a webpage to render.

    ``links`` are ``(url, anchor_text)`` pairs; ``resources`` are
    ``(tag, url)`` pairs with tag in {script, css, img, iframe};
    ``inputs`` are input ``type`` attributes; ``image_texts`` is text
    baked into images (visible only to OCR).
    """

    title: str = ""
    paragraphs: list[str] = field(default_factory=list)
    links: list[tuple[str, str]] = field(default_factory=list)
    resources: list[tuple[str, str]] = field(default_factory=list)
    inputs: list[str] = field(default_factory=list)
    form_action: str = ""
    copyright_line: str = ""
    image_texts: list[str] = field(default_factory=list)
    headings: list[str] = field(default_factory=list)


def render_html(spec: PageSpec) -> str:
    """Render a :class:`PageSpec` to an HTML document string."""
    head_parts: list[str] = [f"<title>{escape(spec.title)}</title>"]
    body_parts: list[str] = []

    for tag, url in spec.resources:
        url_attr = escape(url, quote=True)
        if tag == "css":
            head_parts.append(f'<link rel="stylesheet" href="{url_attr}">')
        elif tag == "script":
            head_parts.append(f'<script src="{url_attr}"></script>')
        elif tag == "img":
            body_parts.append(f'<img src="{url_attr}" alt="">')
        elif tag == "iframe":
            body_parts.append(f'<iframe src="{url_attr}"></iframe>')
        else:
            raise ValueError(f"unknown resource tag {tag!r}")

    for heading in spec.headings:
        body_parts.append(f"<h2>{escape(heading)}</h2>")

    nav_items = "".join(
        f'<li><a href="{escape(url, quote=True)}">{escape(text)}</a></li>'
        for url, text in spec.links
    )
    if nav_items:
        body_parts.append(f"<ul class=\"nav\">{nav_items}</ul>")

    for paragraph in spec.paragraphs:
        body_parts.append(f"<p>{escape(paragraph)}</p>")

    if spec.inputs:
        action = escape(spec.form_action or "/submit", quote=True)
        fields = "".join(
            f'<input type="{escape(input_type, quote=True)}" name="f{index}">'
            for index, input_type in enumerate(spec.inputs)
        )
        body_parts.append(
            f'<form action="{action}" method="post">{fields}'
            f'<input type="submit" value="OK"></form>'
        )

    if spec.copyright_line:
        body_parts.append(f"<footer><p>{escape(spec.copyright_line)}</p></footer>")

    return (
        "<!DOCTYPE html><html><head>"
        + "".join(head_parts)
        + "</head><body>"
        + "\n".join(body_parts)
        + "</body></html>"
    )
