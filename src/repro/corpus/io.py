"""Dataset persistence: the scraper's JSON format.

The paper's scraper "saves the data in json format" per visited page
(Section VI-A).  This module stores a whole labeled dataset as JSON
Lines — one page snapshot with its ground-truth metadata per line — so
scraped corpora can be archived and re-analysed without rebuilding the
synthetic world.

Format (one JSON object per line)::

    {"label": 0, "language": "english", "kind": "business",
     "target_mld": null, "target_rdn": null,
     "snapshot": { ... PageSnapshot.to_dict() ... }}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.corpus.datasets import Dataset, LabeledPage
from repro.web.page import PageSnapshot


def page_to_record(page: LabeledPage) -> dict:
    """Serialise one labeled page to a plain dict."""
    return {
        "label": page.label,
        "language": page.language,
        "kind": page.kind,
        "target_mld": page.target_mld,
        "target_rdn": page.target_rdn,
        "snapshot": page.snapshot.to_dict(),
    }


def page_from_record(record: dict) -> LabeledPage:
    """Rebuild a labeled page from :func:`page_to_record` output."""
    missing = {"label", "snapshot"} - set(record)
    if missing:
        raise ValueError(f"record is missing fields: {sorted(missing)}")
    return LabeledPage(
        snapshot=PageSnapshot.from_dict(record["snapshot"]),
        label=int(record["label"]),
        language=record.get("language", "english"),
        kind=record.get("kind", "unknown"),
        target_mld=record.get("target_mld"),
        target_rdn=record.get("target_rdn"),
    )


def save_dataset(dataset: Dataset, path: str | Path) -> int:
    """Write ``dataset`` to ``path`` as JSON Lines; returns pages written.

    The first line is a header object carrying the dataset name and the
    pre-cleaning size, so Table V can be rebuilt from the file alone.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "__dataset__": dataset.name,
            "initial_count": dataset.initial_count,
        }
        handle.write(json.dumps(header) + "\n")
        for page in dataset:
            handle.write(
                json.dumps(page_to_record(page), ensure_ascii=False) + "\n"
            )
    return len(dataset)


def load_dataset(path: str | Path) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    pages: list[LabeledPage] = []
    name = path.stem
    initial_count = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "__dataset__" in record:
                name = record["__dataset__"]
                initial_count = record.get("initial_count")
                continue
            try:
                pages.append(page_from_record(record))
            except (ValueError, KeyError) as exc:
                raise ValueError(
                    f"{path}:{line_number + 1}: bad record: {exc}"
                ) from exc
    return Dataset(name=name, pages=pages, initial_count=initial_count)
