"""Dataset construction: the synthetic counterpart of Table V.

:func:`build_world` assembles everything one experiment run needs:

* a :class:`~repro.web.hosting.SyntheticWeb` populated with brand sites,
  legitimate sites in six languages and phishing campaigns;
* an Alexa-style popularity ranking over the legitimate domains;
* a search engine indexing the legitimate web;
* scraped, labeled datasets mirroring the paper's: ``legTrain``,
  ``phishTrain``, ``phishTest``, ``phishBrand`` and per-language
  legitimate test sets.

Temporal structure matters to the paper (scenario2 trains on the oldest
data): the *training* phishing campaign targets only a subset of brands,
while *test* campaigns draw from all brands — so the test set contains
brands never seen during training, exercising brand-independence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.brands import Brand, BrandRegistry, default_brands
from repro.corpus.feeds import PhishFeed
from repro.corpus.legitimate import (
    CLEANED_KIND_WEIGHTS,
    GeneratedSite,
    LegitimateSiteGenerator,
)
from repro.corpus.phishing import GeneratedPhish, PhishingSiteGenerator
from repro.corpus.wordlists import LANGUAGES
from repro.urls.alexa import AlexaRanking
from repro.web.browser import Browser
from repro.web.hosting import SyntheticWeb
from repro.web.page import PageSnapshot
from repro.web.search import SearchEngine


@dataclass
class LabeledPage:
    """One scraped, ground-truth-labeled webpage."""

    snapshot: PageSnapshot
    label: int                      # 0 legitimate, 1 phishing
    language: str
    kind: str                       # legit site kind or phish hosting mode
    target_mld: str | None = None   # ground-truth target for phish
    target_rdn: str | None = None

    @property
    def url(self) -> str:
        """The page's starting URL (its dataset identity)."""
        return self.snapshot.starting_url


@dataclass
class Dataset:
    """A named collection of labeled pages (one row of Table V)."""

    name: str
    pages: list[LabeledPage]
    initial_count: int | None = None   # raw feed size before cleaning

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self):
        return iter(self.pages)

    def __getitem__(self, index):
        return self.pages[index]

    def labels(self) -> np.ndarray:
        """Ground-truth label vector."""
        return np.asarray([page.label for page in self.pages], dtype=np.int64)

    def subset(self, indices) -> "Dataset":
        """A new dataset restricted to ``indices``."""
        return Dataset(
            name=self.name,
            pages=[self.pages[int(index)] for index in indices],
            initial_count=None,
        )

    def __add__(self, other: "Dataset") -> "Dataset":
        return Dataset(
            name=f"{self.name}+{other.name}",
            pages=self.pages + other.pages,
        )


@dataclass
class CorpusConfig:
    """Sizes and rates of the generated corpus.

    Defaults are a ~1/10 scale of the paper's Table V, keeping the
    class ratios (legitimate-heavy test sets) while staying fast enough
    for CI.  Use :meth:`paper_scale` for other scales.
    """

    seed: int = 7
    n_brands: int = 126
    leg_train: int = 450
    phish_train: int = 110
    phish_test: int = 125
    phish_brand: int = 60
    english_test: int = 4000
    other_language_test: int = 400
    #: share of brands available to the *training* phishing campaign.
    train_brand_share: float = 0.6
    #: raw-feed contamination rates (removed by cleaning).
    feed_unavailable_rate: float = 0.08
    feed_legitimate_rate: float = 0.04
    feed_parked_rate: float = 0.03
    #: share of phishBrand pages with no target hint (paper: 17/600).
    unknown_target_rate: float = 0.028

    @classmethod
    def paper_scale(cls, scale: float = 1.0, seed: int = 7) -> "CorpusConfig":
        """Config proportional to the paper's dataset sizes.

        ``scale=1.0`` reproduces Table V head-counts (slow: ~150k pages);
        the default constructor is roughly ``paper_scale(0.04)`` with a
        larger floor on the phishing sets.
        """
        return cls(
            seed=seed,
            leg_train=max(50, int(4531 * scale)),
            phish_train=max(30, int(1036 * scale)),
            phish_test=max(30, int(1216 * scale)),
            phish_brand=max(20, int(600 * scale)),
            english_test=max(200, int(100_000 * scale)),
            other_language_test=max(100, int(10_000 * scale)),
        )


@dataclass
class World:
    """Everything a reproduction experiment needs, fully materialised."""

    config: CorpusConfig
    web: SyntheticWeb
    browser: Browser
    brands: BrandRegistry
    alexa: AlexaRanking
    search: SearchEngine
    datasets: dict[str, Dataset]
    brand_sites: list[GeneratedSite]
    feeds: dict[str, PhishFeed] = field(default_factory=dict)

    def dataset(self, name: str) -> Dataset:
        """Lookup a dataset by Table V name."""
        try:
            return self.datasets[name]
        except KeyError:
            raise KeyError(
                f"unknown dataset {name!r}; have {sorted(self.datasets)}"
            ) from None

    @property
    def language_test_sets(self) -> dict[str, Dataset]:
        """The six per-language legitimate test sets."""
        return {lang: self.datasets[lang] for lang in LANGUAGES}


def _scrape_legit(
    browser: Browser, sites: list[GeneratedSite]
) -> list[LabeledPage]:
    pages = []
    for site in sites:
        snapshot = browser.load(site.starting_url)
        pages.append(
            LabeledPage(
                snapshot=snapshot,
                label=0,
                language=site.language,
                kind=site.kind,
            )
        )
    return pages


def _scrape_phish(
    browser: Browser, phishes: list[GeneratedPhish]
) -> list[LabeledPage]:
    pages = []
    for phish in phishes:
        snapshot = browser.load(phish.starting_url)
        pages.append(
            LabeledPage(
                snapshot=snapshot,
                label=1,
                language=phish.language,
                kind=phish.hosting,
                target_mld=phish.target_mld,
                target_rdn=phish.target.rdn if phish.target else None,
            )
        )
    return pages


def _build_feed(
    name: str,
    rng: np.random.Generator,
    phishes: list[GeneratedPhish],
    junk_urls: dict[str, list[str]],
    config: CorpusConfig,
) -> PhishFeed:
    """Assemble a raw feed: real phish plus contamination."""
    feed = PhishFeed(name)
    hour = 0
    for phish in phishes:
        feed.submit(phish.starting_url, hour=hour, status="phish")
        hour += int(rng.integers(0, 3))
    n = len(phishes)
    for status, rate in (
        ("unavailable", config.feed_unavailable_rate),
        ("legitimate", config.feed_legitimate_rate),
        ("parked", config.feed_parked_rate),
    ):
        pool = junk_urls.get(status, [])
        count = min(len(pool), int(round(rate * n)))
        for url in pool[:count]:
            feed.submit(url, hour=int(rng.integers(0, max(1, hour))),
                        status=status)
    return feed


def build_world(config: CorpusConfig | None = None) -> World:
    """Generate the synthetic world and all Table V datasets.

    Deterministic given ``config.seed``.
    """
    config = config or CorpusConfig()
    rng = np.random.default_rng(config.seed)
    web = SyntheticWeb()
    browser = Browser(web)
    brands = default_brands(config.n_brands)

    legit_gen = LegitimateSiteGenerator(web, rng)

    # ---- brand sites (the real targets) -------------------------------
    brand_sites = [legit_gen.generate_brand_site(brand) for brand in brands]

    # ---- legitimate sites per language ---------------------------------
    # legTrain went through the paper's cleaning pass (no parked/minimal
    # pages); the language test sets "did not receive any cleaning
    # treatment" (Section VI-B), so they draw from the full kind mix.
    legtrain_sites = [
        legit_gen.generate(language="english",
                           kind_weights=CLEANED_KIND_WEIGHTS)
        for _ in range(config.leg_train)
    ]
    legit_sites: dict[str, list[GeneratedSite]] = {}
    counts = {
        "english": config.english_test,
        **{
            lang: config.other_language_test
            for lang in LANGUAGES if lang != "english"
        },
    }
    for language, count in counts.items():
        legit_sites[language] = [
            legit_gen.generate(language=language) for _ in range(count)
        ]

    # ---- Alexa-style popularity ranking ---------------------------------
    # Global web infrastructure (social networks, CDNs) heads the list,
    # then brand sites; tiers 1-3 of generated sites fill the top-1M and
    # tier 4 stays unranked (matching the paper's remark that ~43.5% of
    # test RDNs were in the Alexa top 1M).
    alexa = AlexaRanking()
    infra_rdns = (
        "facebook.com", "youtube.com", "twitter.com", "instagram.com",
        "linkedin.com", "googleapis.com", "cloudflare.com", "jsdelivr.net",
        "jquery.com", "unpkg.com",
    )
    rank = 1
    for rdn in infra_rdns:
        alexa.add(rdn, rank)
        rank += 1
    for site in sorted(brand_sites, key=lambda s: s.popularity_tier):
        alexa.add(site.rdn, rank)
        rank += int(rng.integers(1, 50))
    rankable = [
        site for sites in legit_sites.values() for site in sites
        if site.popularity_tier <= 3
    ] + [site for site in legtrain_sites if site.popularity_tier <= 3]
    rng.shuffle(rankable)
    for site in rankable:
        alexa.add(site.rdn, rank)
        rank += int(rng.integers(1, max(2, 900_000 // max(1, len(rankable)))))

    # ---- search engine over the legitimate web --------------------------
    search = SearchEngine()
    for site in brand_sites:
        search.index_page(site.landing_url, site.searchable_text)
    for site in legtrain_sites:
        if site.searchable_text:
            search.index_page(site.landing_url, site.searchable_text)
    for sites in legit_sites.values():
        for site in sites:
            if site.searchable_text:
                search.index_page(site.landing_url, site.searchable_text)

    # ---- phishing campaigns ---------------------------------------------
    compromised_pool = [
        site.rdn for site in legtrain_sites if site.kind == "business"
    ][:40]
    phish_gen = PhishingSiteGenerator(
        web, rng, brands, compromised_pool=compromised_pool
    )

    n_train_brands = max(1, int(len(brands) * config.train_brand_share))
    train_brand_pool = list(brands)[:n_train_brands]

    def train_target() -> Brand:
        return train_brand_pool[int(rng.integers(len(train_brand_pool)))]

    phish_train = [
        phish_gen.generate(target=train_target())
        for _ in range(config.phish_train)
    ]
    # Test campaigns (newer): all brands, including ones unseen in training.
    phish_test = [phish_gen.generate() for _ in range(config.phish_test)]

    n_unknown = int(round(config.unknown_target_rate * config.phish_brand))
    phish_brand = [
        phish_gen.generate() for _ in range(config.phish_brand - n_unknown)
    ]
    phish_brand += [
        phish_gen.generate(with_target_hint=False) for _ in range(n_unknown)
    ]

    # ---- feeds with contamination + cleaning ----------------------------
    dead_urls = [
        f"http://{phish_gen._gibberish()}.{tld}/gone"
        for tld in ("com", "net", "xyz", "info", "top", "club")
        for _ in range(6)
    ]
    parked_sites = [
        legit_gen.generate(language="english", kind="parked") for _ in range(12)
    ]
    misreported = [
        site.starting_url for site in legit_sites["english"][:40]
    ]
    junk = {
        "unavailable": dead_urls,
        "legitimate": misreported,
        "parked": [site.starting_url for site in parked_sites],
    }
    feeds = {
        "phishTrain": _build_feed("phishTrain", rng, phish_train, junk, config),
        "phishTest": _build_feed("phishTest", rng, phish_test, junk, config),
    }

    # ---- scraped datasets -----------------------------------------------
    datasets: dict[str, Dataset] = {
        "legTrain": Dataset(
            "legTrain",
            _scrape_legit(browser, legtrain_sites),
            initial_count=config.leg_train + len(misreported) // 4,
        ),
        "english": Dataset(
            "english",
            _scrape_legit(browser, legit_sites["english"]),
        ),
        "phishTrain": Dataset(
            "phishTrain",
            _scrape_phish(browser, phish_train),
            initial_count=feeds["phishTrain"].initial_count,
        ),
        "phishTest": Dataset(
            "phishTest",
            _scrape_phish(browser, phish_test),
            initial_count=feeds["phishTest"].initial_count,
        ),
        "phishBrand": Dataset(
            "phishBrand", _scrape_phish(browser, phish_brand)
        ),
    }
    for language in LANGUAGES:
        if language == "english":
            continue
        datasets[language] = Dataset(
            language, _scrape_legit(browser, legit_sites[language])
        )

    return World(
        config=config,
        web=web,
        browser=browser,
        brands=brands,
        alexa=alexa,
        search=search,
        datasets=datasets,
        brand_sites=brand_sites,
        feeds=feeds,
    )
