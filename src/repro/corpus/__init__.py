"""Corpus substrate: generative models of legitimate and phishing sites.

The paper's datasets (Table V) come from PhishTank feeds and Intel
Security URL lists in six languages.  Offline, this subpackage generates
a synthetic equivalent: a world of legitimate websites (per-language
vocabularies, brand-consistent domains, internal-link-heavy structure)
and phishing sites that enforce the paper's phisher limitations — they
mimic a target's content and link back to it, but cannot forge the
target's registered domain.
"""

from repro.corpus.brands import Brand, BrandRegistry, default_brands
from repro.corpus.datasets import (
    CorpusConfig,
    Dataset,
    LabeledPage,
    World,
    build_world,
)
from repro.corpus.feeds import FeedEntry, PhishFeed
from repro.corpus.legitimate import LegitimateSiteGenerator
from repro.corpus.phishing import EvasionProfile, PhishingSiteGenerator
from repro.corpus.wordlists import LANGUAGES, vocabulary

__all__ = [
    "Brand",
    "BrandRegistry",
    "CorpusConfig",
    "Dataset",
    "EvasionProfile",
    "FeedEntry",
    "LANGUAGES",
    "LabeledPage",
    "LegitimateSiteGenerator",
    "PhishFeed",
    "PhishingSiteGenerator",
    "World",
    "build_world",
    "default_brands",
    "vocabulary",
]
