"""PhishTank-style feed simulation with label noise and cleaning.

The paper's phishing URLs come from hourly PhishTank polls, then are
"manually cleaned to remove any legitimate or unavailable websites and
parked domain names" (Section VI-B, Table V).  :class:`PhishFeed` models
the raw feed: genuine phishing URLs mixed with misreported legitimate
URLs, dead links and parked domains.  :meth:`PhishFeed.clean` reproduces
the cleaning pass: navigation failures drop unavailable entries and the
curated ground-truth status stands in for the paper's manual review.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.browser import Browser

#: Feed entry statuses.  Only "phish" survives cleaning.
STATUSES = ("phish", "legitimate", "unavailable", "parked")


@dataclass(frozen=True)
class FeedEntry:
    """One submission to the phishing feed.

    ``status`` is the curated ground truth an analyst would assign;
    ``submitted_hour`` orders the feed chronologically (the paper polls
    PhishTank every hour).
    """

    url: str
    submitted_hour: int
    status: str

    def __post_init__(self):
        if self.status not in STATUSES:
            raise ValueError(f"unknown feed status {self.status!r}")


class PhishFeed:
    """A chronological feed of suspected phishing URLs."""

    def __init__(self, name: str):
        self.name = name
        self._entries: list[FeedEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(sorted(self._entries, key=lambda entry: entry.submitted_hour))

    def submit(self, url: str, hour: int, status: str = "phish") -> FeedEntry:
        """Add one submission to the feed."""
        entry = FeedEntry(url=url, submitted_hour=hour, status=status)
        self._entries.append(entry)
        return entry

    @property
    def initial_count(self) -> int:
        """Size of the raw feed (the 'Initial' column of Table V)."""
        return len(self._entries)

    def clean(self, browser: Browser) -> list[FeedEntry]:
        """The cleaning pass: drop unavailable, legitimate and parked entries.

        Unavailable entries are detected mechanically (navigation fails);
        misreported-legitimate and parked entries are dropped based on
        their curated status, standing in for the paper's manual review.
        Returns surviving entries in chronological order (the 'Clean'
        column of Table V).
        """
        survivors: list[FeedEntry] = []
        for entry in self:
            if browser.try_load(entry.url) is None:
                continue  # dead link — mechanically removed
            if entry.status != "phish":
                continue  # manual review removes misreports and parked pages
            survivors.append(entry)
        return survivors

    def status_counts(self) -> dict[str, int]:
        """Histogram of curated statuses in the raw feed."""
        counts = {status: 0 for status in STATUSES}
        for entry in self._entries:
            counts[entry.status] += 1
        return counts
