"""Ma et al.-style baseline: URL-lexical bag-of-words + linear model.

"Beyond Blacklists" [Ma, Saul, Savage, Voelker — KDD'09] classifies URLs
from lexical tokens alone (hostname and path tokens as sparse binary
features) with an online linear learner.  We reproduce the lexical part
with feature hashing into a fixed-width vector plus a handful of the
numeric URL statistics they report, trained by logistic regression.

Only the URL is consulted — no page content — which is why this family
cannot model term-usage consistency.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.ml.linear import LogisticRegression
from repro.urls.parsing import UrlParseError, parse_url
from repro.web.page import PageSnapshot


class UrlLexicalClassifier:
    """Hashed URL-token features + logistic regression.

    Parameters
    ----------
    n_hash_features:
        Width of the hashed bag-of-words vector.
    threshold:
        Decision threshold on the predicted probability.
    """

    def __init__(
        self,
        n_hash_features: int = 1024,
        threshold: float = 0.5,
        epochs: int = 40,
        random_state: int | None = 0,
    ):
        self.n_hash_features = n_hash_features
        self.threshold = threshold
        self.model = LogisticRegression(
            epochs=epochs, random_state=random_state
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _tokens(url: str) -> list[str]:
        """Lexical tokens: hostname labels plus path/query fragments."""
        try:
            parsed = parse_url(url)
        except UrlParseError:
            return ["<unparsable>"]
        tokens = parsed.fqdn.split(".")
        for part in (parsed.path, parsed.query):
            for separator in "/?.=&-_":
                part = part.replace(separator, " ")
            tokens.extend(token for token in part.split() if token)
        return tokens

    def featurize_url(self, url: str) -> np.ndarray:
        """The hashed feature vector of one URL."""
        vector = np.zeros(self.n_hash_features + 4)
        for token in self._tokens(url):
            index = zlib.crc32(token.encode()) % self.n_hash_features
            vector[index] = 1.0
        try:
            parsed = parse_url(url)
            vector[-4] = len(url) / 100.0
            vector[-3] = parsed.level_domain_count
            vector[-2] = url.count(".") / 10.0
            vector[-1] = 1.0 if parsed.is_ip else 0.0
        except UrlParseError:
            pass
        return vector

    def featurize_snapshot(self, snapshot: PageSnapshot) -> np.ndarray:
        """Features of a page = features of its starting URL."""
        return self.featurize_url(snapshot.starting_url)

    # ------------------------------------------------------------------
    def fit_snapshots(self, snapshots, labels) -> "UrlLexicalClassifier":
        """Train on page snapshots (their starting URLs)."""
        X = np.vstack([self.featurize_snapshot(s) for s in snapshots])
        self.model.fit(X, np.asarray(labels))
        return self

    def predict_proba_snapshots(self, snapshots) -> np.ndarray:
        """Phishing probability per snapshot."""
        X = np.vstack([self.featurize_snapshot(s) for s in snapshots])
        return self.model.predict_proba(X)

    def predict_snapshots(self, snapshots) -> np.ndarray:
        """Hard 0/1 predictions per snapshot."""
        return (
            self.predict_proba_snapshots(snapshots) >= self.threshold
        ).astype(np.int64)
