"""Ma et al.-style baseline: URL-lexical bag-of-words + linear model.

"Beyond Blacklists" [Ma, Saul, Savage, Voelker — KDD'09] classifies URLs
from lexical tokens alone (hostname and path tokens as sparse binary
features) with an online linear learner.  We reproduce the lexical part
with feature hashing into a fixed-width vector plus a handful of the
numeric URL statistics they report, trained by logistic regression.

Only the URL is consulted — no page content — which is why this family
cannot model term-usage consistency.  That same property makes it the
serving tier's **triage** model (see :mod:`repro.serve.triage`): it
scores a URL in microseconds, before any page load.  To keep tier-0
scoring a single numpy pass, featurisation is *vectorised*: token
hashing runs as a table-driven CRC32 over a padded byte matrix —
bit-identical to the per-token ``zlib.crc32`` loop (pinned by a
differential test) but computed for every unique token of a batch at
once.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.ml.linear import LogisticRegression
from repro.urls.parsing import UrlParseError, parse_url
from repro.web.page import PageSnapshot


def _crc32_table() -> np.ndarray:
    """The 256-entry lookup table of the CRC-32 used by ``zlib.crc32``."""
    table = np.arange(256, dtype=np.uint32)
    polynomial = np.uint32(0xEDB88320)
    for _ in range(8):
        table = np.where(
            (table & np.uint32(1)).astype(bool),
            polynomial ^ (table >> np.uint32(1)),
            table >> np.uint32(1),
        ).astype(np.uint32)
    return table


_CRC32_TABLE = _crc32_table()


def crc32_batch(tokens: list[bytes]) -> np.ndarray:
    """``zlib.crc32`` of every token, vectorised across the batch.

    Builds one padded ``uint8`` matrix (token x byte position) and runs
    the table-driven CRC recurrence column by column, masked by token
    length — a loop over the *longest token's* bytes, not over tokens.
    Bit-identical to ``zlib.crc32(token)`` for every token.
    """
    if not tokens:
        return np.zeros(0, dtype=np.uint32)
    lengths = np.fromiter(
        (len(token) for token in tokens), dtype=np.int64, count=len(tokens)
    )
    width = int(lengths.max()) if len(lengths) else 0
    crc = np.full(len(tokens), 0xFFFFFFFF, dtype=np.uint32)
    if width:
        matrix = np.zeros((len(tokens), width), dtype=np.uint8)
        blob = np.frombuffer(b"".join(tokens), dtype=np.uint8)
        rows = np.repeat(np.arange(len(tokens)), lengths)
        offsets = np.repeat(np.cumsum(lengths) - lengths, lengths)
        matrix[rows, np.arange(len(blob)) - offsets] = blob
        for column in range(width):
            active = lengths > column
            crc[active] = (
                _CRC32_TABLE[
                    (crc[active] ^ matrix[active, column]) & np.uint32(0xFF)
                ]
                ^ (crc[active] >> np.uint32(8))
            )
    return crc ^ np.uint32(0xFFFFFFFF)


class UrlLexicalClassifier:
    """Hashed URL-token features + logistic regression.

    Parameters
    ----------
    n_hash_features:
        Width of the hashed bag-of-words vector.
    threshold:
        Decision threshold on the predicted probability.
    """

    def __init__(
        self,
        n_hash_features: int = 1024,
        threshold: float = 0.5,
        epochs: int = 40,
        random_state: int | None = 0,
    ):
        self.n_hash_features = n_hash_features
        self.threshold = threshold
        self.model = LogisticRegression(
            epochs=epochs, random_state=random_state
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _tokens(url: str) -> list[str]:
        """Lexical tokens: hostname labels plus path/query fragments."""
        try:
            parsed = parse_url(url)
        except UrlParseError:
            return ["<unparsable>"]
        tokens = parsed.fqdn.split(".")
        for part in (parsed.path, parsed.query):
            for separator in "/?.=&-_":
                part = part.replace(separator, " ")
            tokens.extend(token for token in part.split() if token)
        return tokens

    def _numeric_tail(self, url: str, vector: np.ndarray) -> None:
        """Fill the four trailing numeric URL statistics in place."""
        try:
            parsed = parse_url(url)
            vector[-4] = len(url) / 100.0
            vector[-3] = parsed.level_domain_count
            vector[-2] = url.count(".") / 10.0
            vector[-1] = 1.0 if parsed.is_ip else 0.0
        except UrlParseError:
            pass

    def featurize_url(self, url: str) -> np.ndarray:
        """The hashed feature vector of one URL (reference path)."""
        vector = np.zeros(self.n_hash_features + 4)
        for token in self._tokens(url):
            index = zlib.crc32(token.encode()) % self.n_hash_features
            vector[index] = 1.0
        self._numeric_tail(url, vector)
        return vector

    def featurize_urls(self, urls) -> np.ndarray:
        """Feature matrix of a URL batch, one vectorised hashing pass.

        Tokenisation stays per URL (it needs the URL parser), but
        hashing — the per-token hot loop — runs once over the batch's
        *unique* tokens via :func:`crc32_batch`, and the binary
        indicators scatter into the matrix with one fancy-indexed
        store.  Output is bit-identical to stacking
        :meth:`featurize_url` row by row.
        """
        urls = list(urls)
        matrix = np.zeros((len(urls), self.n_hash_features + 4))
        if not urls:
            return matrix
        token_ids: dict[str, int] = {}
        rows: list[int] = []
        columns: list[int] = []
        for row, url in enumerate(urls):
            for token in self._tokens(url):
                slot = token_ids.setdefault(token, len(token_ids))
                rows.append(row)
                columns.append(slot)
        hashes = crc32_batch(
            [token.encode() for token in token_ids]
        ) % np.uint32(self.n_hash_features)
        matrix[
            np.asarray(rows, dtype=np.int64),
            hashes[np.asarray(columns, dtype=np.int64)],
        ] = 1.0
        for row, url in enumerate(urls):
            self._numeric_tail(url, matrix[row])
        return matrix

    def featurize_snapshot(self, snapshot: PageSnapshot) -> np.ndarray:
        """Features of a page = features of its starting URL."""
        return self.featurize_url(snapshot.starting_url)

    # ------------------------------------------------------------------
    def fit_urls(self, urls, labels) -> "UrlLexicalClassifier":
        """Train on raw URLs — no page snapshots required."""
        X = self.featurize_urls(urls)
        self.model.fit(X, np.asarray(labels))
        return self

    def predict_proba_urls(self, urls) -> np.ndarray:
        """Phishing probability per URL, in one vectorised pass."""
        return self.model.predict_proba(self.featurize_urls(urls))

    def predict_urls(self, urls) -> np.ndarray:
        """Hard 0/1 predictions per URL."""
        return (self.predict_proba_urls(urls) >= self.threshold).astype(
            np.int64
        )

    def score_url(self, url: str) -> float:
        """Phishing probability of a single URL."""
        return float(self.predict_proba_urls([url])[0])

    # ------------------------------------------------------------------
    def fit_snapshots(self, snapshots, labels) -> "UrlLexicalClassifier":
        """Train on page snapshots (their starting URLs)."""
        return self.fit_urls(
            [snapshot.starting_url for snapshot in snapshots], labels
        )

    def predict_proba_snapshots(self, snapshots) -> np.ndarray:
        """Phishing probability per snapshot."""
        return self.predict_proba_urls(
            [snapshot.starting_url for snapshot in snapshots]
        )

    def predict_snapshots(self, snapshots) -> np.ndarray:
        """Hard 0/1 predictions per snapshot."""
        return (
            self.predict_proba_snapshots(snapshots) >= self.threshold
        ).astype(np.int64)
