"""Whittaker et al.-style baseline: content bag-of-words classifier.

Google's large-scale classifier [Whittaker, Ryner, Nazif — NDSS'10] feeds
hundreds of thousands of mostly static bag-of-words features (page text,
URL, hosting data) to a learned model.  We reproduce the character of
that approach — *static term features learned from the training set* —
with feature hashing over page text/title/URL terms and a gradient
boosting model.

The point of this baseline in the reproduction is its failure mode: term
features like "paypal" dominate, so phish against brands absent from the
training set are systematically missed (the paper's adaptability
argument).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.ml.boosting import GradientBoostingClassifier
from repro.text.terms import extract_terms
from repro.web.page import PageSnapshot


class BagOfWordsClassifier:
    """Hashed content bag-of-words + gradient boosting.

    Parameters
    ----------
    n_hash_features:
        Width of the hashed term-count vector.
    threshold:
        Decision threshold on the predicted probability.
    """

    def __init__(
        self,
        n_hash_features: int = 2048,
        threshold: float = 0.5,
        n_estimators: int = 80,
        random_state: int | None = 0,
    ):
        self.n_hash_features = n_hash_features
        self.threshold = threshold
        self.model = GradientBoostingClassifier(
            n_estimators=n_estimators,
            max_depth=3,
            subsample=0.9,
            max_features=64,
            random_state=random_state,
        )

    # ------------------------------------------------------------------
    def featurize_snapshot(self, snapshot: PageSnapshot) -> np.ndarray:
        """Hashed term counts over text, title and the starting URL."""
        vector = np.zeros(self.n_hash_features)
        terms = (
            extract_terms(snapshot.text)
            + extract_terms(snapshot.title)
            + extract_terms(snapshot.starting_url)
        )
        for term in terms:
            index = zlib.crc32(term.encode()) % self.n_hash_features
            vector[index] += 1.0
        return vector

    def fit_snapshots(self, snapshots, labels) -> "BagOfWordsClassifier":
        """Train on page snapshots."""
        X = np.vstack([self.featurize_snapshot(s) for s in snapshots])
        self.model.fit(X, np.asarray(labels))
        return self

    def predict_proba_snapshots(self, snapshots) -> np.ndarray:
        """Phishing probability per snapshot."""
        X = np.vstack([self.featurize_snapshot(s) for s in snapshots])
        return self.model.predict_proba(X)

    def predict_snapshots(self, snapshots) -> np.ndarray:
        """Hard 0/1 predictions per snapshot."""
        return (
            self.predict_proba_snapshots(snapshots) >= self.threshold
        ).astype(np.int64)
