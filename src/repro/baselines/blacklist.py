"""Blacklist defense model: the deployment argument of Section VIII.

The multi-criteria systems the paper compares against (Whittaker et al.,
Thomas et al.) run *offline*, crawling URLs "to automatically build
blacklists.  This process induces a delay of several hours that is
problematic in the context of phishing detection, since phishing attacks
have a median lifetime of a few hours."

:class:`BlacklistDefense` models that pipeline: phishing URLs become
blocked only ``propagation_delay`` hours after first being observed,
while a client-side detector protects from the first visit.  The
:func:`exposure_analysis` helper quantifies the resulting victim
exposure window over a campaign timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Campaign:
    """One phishing campaign on a timeline (hours)."""

    url: str
    launched_at: float
    lifetime: float          # hours until takedown/park
    reported_at: float       # when a feed first sees it

    @property
    def dies_at(self) -> float:
        """Hour at which the campaign goes offline."""
        return self.launched_at + self.lifetime


class BlacklistDefense:
    """An offline blacklist with a propagation delay.

    Parameters
    ----------
    propagation_delay:
        Hours between a URL being reported and the blacklist entry
        reaching clients (crawl + verify + publish; "several hours").
    coverage:
        Probability that a reported URL is verified and listed at all.
    seed:
        Seed for the coverage draw.
    """

    def __init__(
        self,
        propagation_delay: float = 6.0,
        coverage: float = 0.9,
        seed: int = 0,
    ):
        if propagation_delay < 0:
            raise ValueError(
                f"propagation_delay must be >= 0, got {propagation_delay}"
            )
        if not 0 <= coverage <= 1:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        self.propagation_delay = propagation_delay
        self.coverage = coverage
        self._rng = np.random.default_rng(seed)
        self._listed_at: dict[str, float] = {}

    def observe_report(self, campaign: Campaign) -> None:
        """Process one feed report; maybe schedule a blacklist entry."""
        if campaign.url in self._listed_at:
            return
        if self._rng.random() <= self.coverage:
            self._listed_at[campaign.url] = (
                campaign.reported_at + self.propagation_delay
            )

    def blocks(self, url: str, at_time: float) -> bool:
        """Is ``url`` blocked for a client visiting at ``at_time``?"""
        listed = self._listed_at.get(url)
        return listed is not None and at_time >= listed

    def listed_time(self, url: str) -> float | None:
        """When the entry became effective, or ``None``."""
        return self._listed_at.get(url)


def generate_campaign_timeline(
    count: int,
    median_lifetime: float = 9.0,
    report_lag: float = 1.0,
    seed: int = 0,
) -> list[Campaign]:
    """Synthesise a campaign timeline matching APWG-style statistics.

    Lifetimes are log-normal with the given median (the paper cites a
    median of a few hours, per the Global Phishing Survey); reports
    arrive an exponential ``report_lag`` after launch.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    launches = np.sort(rng.uniform(0, 24 * 7, size=count))
    lifetimes = rng.lognormal(mean=np.log(median_lifetime), sigma=0.8,
                              size=count)
    lags = rng.exponential(scale=report_lag, size=count)
    return [
        Campaign(
            url=f"http://phish{index}.example/{index:x}",
            launched_at=float(launch),
            lifetime=float(lifetime),
            reported_at=float(launch + lag),
        )
        for index, (launch, lifetime, lag) in enumerate(
            zip(launches, lifetimes, lags)
        )
    ]


def exposure_analysis(
    campaigns: list[Campaign],
    blacklist: BlacklistDefense,
    client_side_recall: float = 0.95,
) -> dict[str, float]:
    """Compare victim exposure under blacklist vs client-side defense.

    Exposure of one campaign = the fraction of its lifetime during which
    a visiting victim is unprotected.  A blacklist protects only from
    its (delayed) listing time; a client-side detector protects from the
    first page load with probability ``client_side_recall``.
    """
    if not campaigns:
        raise ValueError("need at least one campaign")
    for campaign in campaigns:
        blacklist.observe_report(campaign)

    blacklist_exposures = []
    never_listed = 0
    for campaign in campaigns:
        listed = blacklist.listed_time(campaign.url)
        if listed is None or listed >= campaign.dies_at:
            blacklist_exposures.append(1.0)
            never_listed += listed is None
        else:
            unprotected = max(0.0, listed - campaign.launched_at)
            blacklist_exposures.append(
                min(1.0, unprotected / campaign.lifetime)
            )

    return {
        "campaigns": float(len(campaigns)),
        "blacklist_mean_exposure": float(np.mean(blacklist_exposures)),
        "blacklist_fully_exposed_share": float(
            np.mean([exposure == 1.0 for exposure in blacklist_exposures])
        ),
        "client_side_mean_exposure": 1.0 - client_side_recall,
        "never_listed": float(never_listed),
    }
