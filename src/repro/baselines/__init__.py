"""Baseline phishing detectors for the Table X comparison.

Three families of prior work re-implemented on our substrates:

* :class:`~repro.baselines.cantina.CantinaClassifier` — TF-IDF keyword
  extraction + search-engine membership check (Zhang et al., "Cantina");
* :class:`~repro.baselines.url_lexical.UrlLexicalClassifier` — hashed
  bag-of-words over URL tokens with a linear model (Ma et al. style);
* :class:`~repro.baselines.bag_of_words.BagOfWordsClassifier` — hashed
  bag-of-words over page content (Whittaker et al. style), illustrating
  brand-dependent static features.
"""

from repro.baselines.bag_of_words import BagOfWordsClassifier
from repro.baselines.blacklist import (
    BlacklistDefense,
    Campaign,
    exposure_analysis,
    generate_campaign_timeline,
)
from repro.baselines.cantina import CantinaClassifier
from repro.baselines.url_lexical import UrlLexicalClassifier

__all__ = [
    "BagOfWordsClassifier",
    "BlacklistDefense",
    "Campaign",
    "CantinaClassifier",
    "UrlLexicalClassifier",
    "exposure_analysis",
    "generate_campaign_timeline",
]
