"""Cantina-style baseline: TF-IDF keywords + search-engine lookup.

Cantina [Zhang, Hong, Cranor — WWW'07] computes the TF-IDF signature of a
page, queries a search engine with the top-K terms and declares the page
legitimate when its own domain appears in the results.  No learning is
involved, but the method is *language dependent*: IDF weights come from a
reference corpus (we build one from training pages), which is exactly the
dependence the paper criticises.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.text.terms import extract_terms
from repro.urls.parsing import UrlParseError, parse_url
from repro.web.page import PageSnapshot
from repro.web.search import SearchEngine


class CantinaClassifier:
    """TF-IDF + search-engine phishing detector.

    Parameters
    ----------
    search:
        Search engine over the legitimate web.
    top_terms:
        Number of TF-IDF-ranked terms used as the query (Cantina uses 5).
    search_depth:
        Results inspected per query.
    """

    def __init__(
        self, search: SearchEngine, top_terms: int = 5, search_depth: int = 10
    ):
        self.search = search
        self.top_terms = top_terms
        self.search_depth = search_depth
        self._document_frequency: Counter = Counter()
        self._n_documents = 0

    # ------------------------------------------------------------------
    def fit_idf(self, snapshots) -> "CantinaClassifier":
        """Build the IDF reference corpus from ``snapshots``."""
        for snapshot in snapshots:
            terms = set(extract_terms(snapshot.text)) | set(
                extract_terms(snapshot.title)
            )
            self._document_frequency.update(terms)
            self._n_documents += 1
        return self

    def signature(self, snapshot: PageSnapshot) -> list[str]:
        """The page's top TF-IDF terms (its Cantina 'lexical signature')."""
        counts = Counter(extract_terms(snapshot.text))
        counts.update(extract_terms(snapshot.title))
        if not counts:
            return []
        scored = []
        for term, tf in counts.items():
            df = self._document_frequency.get(term, 0)
            idf = math.log((1 + self._n_documents) / (1 + df)) + 1
            scored.append((tf * idf, term))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [term for _score, term in scored[: self.top_terms]]

    # ------------------------------------------------------------------
    def classify_snapshot(self, snapshot: PageSnapshot) -> bool:
        """True when the page is classified as phishing."""
        try:
            own_rdns = {
                rdn for rdn in (
                    parse_url(snapshot.starting_url).rdn,
                    parse_url(snapshot.landing_url).rdn,
                ) if rdn
            }
        except UrlParseError:
            return True  # unparsable URL: treat as phish
        terms = self.signature(snapshot)
        if not terms:
            return True  # contentless page: Cantina flags it
        returned = self.search.result_rdns(terms, top_k=self.search_depth)
        return not (own_rdns & returned)

    def predict_snapshots(self, snapshots) -> np.ndarray:
        """Hard 0/1 predictions for an iterable of snapshots."""
        return np.asarray(
            [int(self.classify_snapshot(snapshot)) for snapshot in snapshots],
            dtype=np.int64,
        )
