"""A simulated search engine over the legitimate portion of the web.

The target identification process (Section V-B) queries a search engine
with keyterms and inspects the registered domains (RDNs) of the top hits.
It rests on the paper's assumption that *a search engine does not return
phishing sites as top hits*: fresh phish are not yet indexed and old
phish are already blacklisted.  Our :class:`SearchEngine` enforces this
by indexing only the legitimate websites of the synthetic web.

Ranking is classic TF-IDF with document-length normalisation; results
are deduplicated by RDN, so the engine returns at most one hit per
registered domain — what matters to the identification steps.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.text.terms import extract_terms
from repro.urls.parsing import UrlParseError, parse_url


@dataclass(frozen=True)
class SearchResult:
    """One search hit."""

    url: str
    rdn: str
    mld: str
    score: float


class SearchEngine:
    """An inverted-index, TF-IDF-ranked search engine.

    Documents are added with :meth:`index_page`; each document is the
    textual content of one page, keyed by its URL.  Domain terms (mld,
    subdomains) are indexed too with a boost — like real engines, domain
    matches rank highly.
    """

    DOMAIN_BOOST = 3.0

    def __init__(self):
        self._postings: dict[str, dict[int, float]] = defaultdict(dict)
        self._doc_urls: list[str] = []
        self._doc_rdns: list[str] = []
        self._doc_mlds: list[str] = []
        self._doc_lengths: list[float] = []
        # Array mirrors of the postings/lengths, built lazily per term
        # by query() and dropped whenever a page is indexed.
        self._term_arrays: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._lengths_array: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._doc_urls)

    # ------------------------------------------------------------------
    def index_page(self, url: str, content: str) -> None:
        """Add one page to the index.

        ``content`` should be the searchable text (title + body text).
        Pages with unparsable URLs or no registered domain are skipped —
        a real engine would not index a bare IP host highly anyway.
        """
        try:
            parsed = parse_url(url)
        except UrlParseError:
            return
        if not parsed.rdn or not parsed.mld:
            return

        doc_id = len(self._doc_urls)
        counts = Counter(extract_terms(content))
        for term in extract_terms(parsed.mld) + extract_terms(parsed.subdomains):
            counts[term] += self.DOMAIN_BOOST
        # Whole-mld token so exact domain queries hit hard.
        counts[parsed.mld] += self.DOMAIN_BOOST

        if not counts:
            return
        self._doc_urls.append(url)
        self._doc_rdns.append(parsed.rdn)
        self._doc_mlds.append(parsed.mld)
        self._doc_lengths.append(
            math.sqrt(sum(count * count for count in counts.values()))
        )
        for term, count in counts.items():
            self._postings[term][doc_id] = count
        self._term_arrays.clear()
        self._lengths_array = None

    # ------------------------------------------------------------------
    def query(self, terms, top_k: int = 10) -> list[SearchResult]:
        """Run a keyterm query, returning at most ``top_k`` results.

        ``terms`` is an iterable of already-extracted terms (a keyterms
        list).  Results are ranked by TF-IDF cosine-ish score and
        deduplicated by RDN.
        """
        terms = [term.lower() for term in terms if term]
        if not terms or not self._doc_urls:
            return []
        n_docs = len(self._doc_urls)
        if self._lengths_array is None:
            self._lengths_array = np.asarray(
                self._doc_lengths, dtype=np.float64
            )
        scores = np.zeros(n_docs, dtype=np.float64)
        touched = np.zeros(n_docs, dtype=bool)
        # Sorted iteration keeps score summation order hash-seed-free.
        for term in sorted(set(terms)):
            postings = self._postings.get(term)
            if not postings:
                continue
            arrays = self._term_arrays.get(term)
            if arrays is None:
                arrays = (
                    np.fromiter(
                        postings.keys(), dtype=np.int64, count=len(postings)
                    ),
                    np.fromiter(
                        postings.values(), dtype=np.float64,
                        count=len(postings),
                    ),
                )
                self._term_arrays[term] = arrays
            doc_ids, tf = arrays
            idf = math.log(1 + n_docs / len(postings))
            # Doc ids are unique per term, so fancy-index += is exact;
            # per element this is tf * idf / length, accumulated in the
            # same term order as the scalar loop it replaced.
            scores[doc_ids] += tf * idf / self._lengths_array[doc_ids]
            touched[doc_ids] = True

        hit_ids = np.flatnonzero(touched)
        hit_scores = scores[hit_ids]
        # Rank by (-score, doc_id): lexsort's last key is primary.
        order = np.lexsort((hit_ids, -hit_scores))
        results: list[SearchResult] = []
        seen_rdns: set[str] = set()
        for position in order:
            doc_id = int(hit_ids[position])
            score = float(hit_scores[position])
            rdn = self._doc_rdns[doc_id]
            if rdn in seen_rdns:
                continue
            seen_rdns.add(rdn)
            results.append(
                SearchResult(
                    url=self._doc_urls[doc_id],
                    rdn=rdn,
                    mld=self._doc_mlds[doc_id],
                    score=score,
                )
            )
            if len(results) >= top_k:
                break
        return results

    def result_rdns(self, terms, top_k: int = 10) -> set[str]:
        """Convenience: the set of RDNs returned for a query."""
        return {result.rdn for result in self.query(terms, top_k=top_k)}

    def result_mlds(self, terms, top_k: int = 10) -> set[str]:
        """Convenience: the set of mlds returned for a query."""
        return {result.mld for result in self.query(terms, top_k=top_k)}
