"""Simulated optical character recognition over page screenshots.

The paper applies OCR to webpage screenshots to obtain the ``D_image``
term distribution and the *OCR prominent terms* used in step 4 of target
identification — primarily to handle image-based phishing pages whose
text lives in pixels, not in the DOM.

Real OCR is noisy; :class:`SimulatedOcr` models that with a per-character
error process (substitution into a visually confusable character, or a
dropped character).  The noise is deterministic given a seed, so
experiments are reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.web.page import Screenshot

# Visual confusions typical of OCR engines on web fonts.
_CONFUSIONS = {
    "o": "0", "l": "1", "i": "l", "e": "c", "a": "o", "s": "5",
    "b": "6", "g": "9", "t": "f", "n": "m", "u": "v", "r": "n",
    "c": "e", "m": "rn", "h": "b", "d": "cl",
}


class SimulatedOcr:
    """A deterministic, configurable-noise OCR engine.

    Parameters
    ----------
    error_rate:
        Probability of corrupting each character (0.0 = perfect OCR).
    drop_rate:
        Share of errors that drop the character instead of confusing it.
    seed:
        Base seed for the deterministic noise stream.
    """

    def __init__(
        self, error_rate: float = 0.02, drop_rate: float = 0.3, seed: int = 0
    ):
        if not 0 <= error_rate <= 1:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        if not 0 <= drop_rate <= 1:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self.error_rate = error_rate
        self.drop_rate = drop_rate
        self.seed = seed

    def read(self, screenshot: Screenshot) -> str:
        """Recognise the text present in a screenshot, with noise.

        The same screenshot always yields the same recognised text: the
        noise stream is keyed on the screenshot content and the seed.
        """
        text = screenshot.full_text
        if not text:
            return ""
        if self.error_rate == 0:
            return text
        # crc32, not hash(): Python string hashing is salted per process,
        # which would make OCR noise irreproducible across runs.
        rng = np.random.default_rng(
            zlib.crc32(text.encode("utf-8")) ^ self.seed
        )
        draws = rng.random(len(text))
        kinds = rng.random(len(text))
        out: list[str] = []
        for char, draw, kind in zip(text, draws, kinds):
            if draw >= self.error_rate:
                out.append(char)
            elif kind < self.drop_rate:
                continue  # character missed entirely
            else:
                out.append(_CONFUSIONS.get(char.lower(), char))
        return "".join(out)
