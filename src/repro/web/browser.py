"""The simulated browser/scraper.

Reproduces the observable behaviour of the paper's monitored Firefox
(Selenium) scraper: given a starting URL it follows HTTP redirects,
records the redirection chain, parses the landing page, logs every
embedded-resource fetch (including resources of inlined IFrames) and
captures a screenshot — returning a :class:`PageSnapshot`.
"""

from __future__ import annotations

from repro.web.hosting import SyntheticWeb
from repro.web.page import PageSnapshot, Screenshot


class PageNotFound(LookupError):
    """Raised when a URL resolves to nothing on the synthetic web."""


class RedirectLoopError(RuntimeError):
    """Raised when a redirection chain exceeds the hop limit."""


class Browser:
    """Loads URLs from a :class:`SyntheticWeb` into page snapshots.

    Parameters
    ----------
    web:
        The synthetic web to browse.
    max_redirects:
        Maximum redirect hops before declaring a loop (default 10,
        mirroring typical browser limits).
    tracer:
        Optional tracer (the :class:`repro.obs.trace.Tracer` API,
        duck-typed so this module stays import-light) wrapping each
        navigation attempt in a ``browse.navigate`` span.
    metrics:
        Optional metrics registry (the
        :class:`repro.obs.metrics.MetricsRegistry` API) counting
        ``browse_navigations_total`` and ``browse_redirects_total``.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        max_redirects: int = 10,
        tracer=None,
        metrics=None,
    ):
        self.web = web
        self.max_redirects = max_redirects
        self.tracer = tracer
        self.metrics = metrics

    def load(self, starting_url: str) -> PageSnapshot:
        """Visit ``starting_url`` and return the scraped snapshot.

        Raises :class:`PageNotFound` for unknown URLs and
        :class:`RedirectLoopError` for over-long redirect chains.
        """
        if self.tracer is None:
            return self._load(starting_url)
        with self.tracer.span("browse.navigate", url=starting_url) as span:
            snapshot = self._load(starting_url)
            span.set(redirects=len(snapshot.redirection_chain) - 1)
            return snapshot

    def _load(self, starting_url: str) -> PageSnapshot:
        chain = [starting_url]
        current = self.web.get(starting_url)
        if current is None:
            raise PageNotFound(starting_url)

        hops = 0
        while current.is_redirect:
            hops += 1
            if hops > self.max_redirects:
                raise RedirectLoopError(
                    f"more than {self.max_redirects} redirects from {starting_url}"
                )
            chain.append(current.redirect_to)
            nxt = self.web.get(current.redirect_to)
            if nxt is None:
                raise PageNotFound(current.redirect_to)
            current = nxt

        snapshot = PageSnapshot(
            starting_url=starting_url,
            landing_url=current.url,
            redirection_chain=chain if chain[-1] == current.url else chain + [current.url],
            html=current.html,
            screenshot=current.screenshot or Screenshot(),
        )
        snapshot.logged_links = self._log_resources(snapshot)
        if self.metrics is not None:
            self.metrics.inc("browse_navigations_total")
            if hops:
                self.metrics.inc("browse_redirects_total", hops)
        return snapshot

    def _log_resources(self, snapshot: PageSnapshot) -> list[str]:
        """Resource URLs the browser fetches while rendering the page.

        Includes the landing page's embedded resources and, for IFrames
        pointing at hosted pages, the framed pages' resources too (a real
        browser logs those loads as well).
        """
        logged: list[str] = list(snapshot.elements.resource_links)
        for frame_url in snapshot.elements.iframe_links:
            framed = self.web.get(frame_url)
            if framed is None or framed.is_redirect:
                continue
            framed_snapshot = PageSnapshot(
                starting_url=frame_url, landing_url=frame_url, html=framed.html
            )
            logged.extend(framed_snapshot.elements.resource_links)
        return logged

    def try_load(self, starting_url: str) -> PageSnapshot | None:
        """Like :meth:`load` but returns ``None`` on any navigation failure."""
        try:
            return self.load(starting_url)
        except (PageNotFound, RedirectLoopError):
            return None
