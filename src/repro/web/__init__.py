"""Web substrate: the simulated web the experiments run against.

The paper's scraper is a monitored Firefox instance visiting the live
web.  Offline, this subpackage provides the same observable surface:

* :class:`~repro.web.hosting.SyntheticWeb` — a registry of hosted pages
  with redirection chains (the "web");
* :class:`~repro.web.browser.Browser` — loads a starting URL, follows
  redirects, parses the HTML and records the resource loads, producing a
  :class:`~repro.web.page.PageSnapshot` with exactly the data sources of
  Section II-C;
* :class:`~repro.web.ocr.SimulatedOcr` — noisy text recovery from
  screenshots (the ``D_image`` / OCR-prominent-terms source);
* :class:`~repro.web.search.SearchEngine` — an inverted-index search
  engine over legitimate pages, standing in for the search-engine queries
  of the target identification process (Section V-B);
* :mod:`~repro.web.faults` — deterministic fault injection
  (:class:`~repro.web.faults.FlakyWeb` and friends) simulating the live
  web's timeouts, resets, truncated pages and outages for the
  robustness experiments.
"""

from repro.web.browser import Browser, PageNotFound, RedirectLoopError
from repro.web.faults import FaultPlan, FlakyOcr, FlakySearchEngine, FlakyWeb
from repro.web.hosting import HostedPage, SyntheticWeb
from repro.web.ocr import SimulatedOcr
from repro.web.page import PageSnapshot, Screenshot
from repro.web.search import SearchEngine, SearchResult

__all__ = [
    "Browser",
    "FaultPlan",
    "FlakyOcr",
    "FlakySearchEngine",
    "FlakyWeb",
    "HostedPage",
    "PageNotFound",
    "PageSnapshot",
    "RedirectLoopError",
    "Screenshot",
    "SearchEngine",
    "SearchResult",
    "SimulatedOcr",
    "SyntheticWeb",
]
