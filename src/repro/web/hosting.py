"""The synthetic web: a registry of hosted pages and redirections.

Stands in for the live web the paper's scraper visited.  Each
:class:`HostedPage` is either a content page (HTML plus an optional
screenshot description) or a redirect hop.  The :class:`SyntheticWeb`
resolves URLs with light normalisation (scheme-sensitive, fragment
stripped, ``/`` path equivalent to empty path) so generated links and
registered pages line up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.page import Screenshot


def normalize_url(url: str) -> str:
    """Canonical key for URL lookup: strip fragment and trailing slash-only path."""
    url = url.strip()
    if "#" in url:
        url = url.split("#", 1)[0]
    if url.endswith("/") and url.count("/") == 3:  # e.g. http://host/
        url = url[:-1]
    return url


@dataclass
class HostedPage:
    """One URL hosted on the synthetic web.

    Exactly one of ``redirect_to`` / ``html`` is meaningful: a redirect
    hop forwards the browser, a content page serves HTML and a screenshot.
    """

    url: str
    html: str = ""
    screenshot: Screenshot = field(default_factory=Screenshot)
    redirect_to: str | None = None

    @property
    def is_redirect(self) -> bool:
        """True for a redirect hop, False for a content page."""
        return self.redirect_to is not None


class SyntheticWeb:
    """A registry of :class:`HostedPage` objects addressable by URL."""

    def __init__(self):
        self._pages: dict[str, HostedPage] = {}

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return normalize_url(url) in self._pages

    def add_page(self, page: HostedPage, overwrite: bool = False) -> None:
        """Register a page; refuses to clobber an existing URL by default."""
        key = normalize_url(page.url)
        if not overwrite and key in self._pages:
            raise ValueError(f"URL already hosted: {page.url}")
        self._pages[key] = page

    def host(
        self,
        url: str,
        html: str,
        screenshot: Screenshot | None = None,
        overwrite: bool = False,
    ) -> HostedPage:
        """Convenience: host a content page and return it."""
        page = HostedPage(
            url=url, html=html, screenshot=screenshot or Screenshot()
        )
        self.add_page(page, overwrite=overwrite)
        return page

    def redirect(self, url: str, target: str, overwrite: bool = False) -> HostedPage:
        """Convenience: host a redirect hop ``url -> target``."""
        page = HostedPage(url=url, redirect_to=target)
        self.add_page(page, overwrite=overwrite)
        return page

    def get(self, url: str) -> HostedPage | None:
        """Resolve a URL to its hosted page, or ``None``."""
        return self._pages.get(normalize_url(url))

    def urls(self) -> list[str]:
        """All hosted URLs (normalised form)."""
        return list(self._pages)

    def content_pages(self):
        """Iterate over non-redirect pages."""
        return (page for page in self._pages.values() if not page.is_redirect)

    def merge(self, other: "SyntheticWeb") -> None:
        """Add every page of ``other`` into this web (no overwrites)."""
        for page in other._pages.values():
            self.add_page(page)
