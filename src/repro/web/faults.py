"""Deterministic fault injection over the synthetic web.

The live web fails constantly: fetches time out, connections reset,
servers answer 5xx, HTML arrives truncated, screenshots go missing and
the search engine has outages.  :class:`FlakyWeb` wraps a
:class:`~repro.web.hosting.SyntheticWeb` and injects exactly those
failures at configurable rates, *deterministically*: each URL gets its
own seeded fault schedule indexed by visit number, so a run (including
every retry) replays identically regardless of page ordering — the
property the robustness benchmarks rely on.

Transient faults are genuinely transient: the schedule never emits more
than ``max_consecutive_transient`` faults in a row for one URL, so a
retry policy with more attempts than that is guaranteed to get through.
Permanent faults (dead hosts) are per-URL and never heal.

:class:`FlakySearchEngine` and :class:`FlakyOcr` play the same role for
the two auxiliary dependencies of target identification.
"""

from __future__ import annotations

import random
import zlib
from collections import Counter
from dataclasses import dataclass, replace

from repro.resilience.errors import (
    ConnectionReset,
    FetchTimeout,
    OcrFailure,
    PermanentFetchError,
    SearchUnavailableError,
    ServerError,
)
from repro.resilience.clock import Clock, SystemClock
from repro.web.hosting import HostedPage, SyntheticWeb, normalize_url
from repro.web.page import Screenshot

#: Degradation tags a :class:`FlakyWeb` can attach to a load.
TRUNCATED_HTML = "truncated_html"
MISSING_SCREENSHOT = "missing_screenshot"
SLOW_RESPONSE = "slow_response"

#: Fault-stat key for latency stalls (no degradation tag: a stalled
#: response arrives late but byte-identical, so verdicts are unaffected
#: — only deadlines and serving latency are).
STALL = "stall"


@dataclass(frozen=True)
class FaultPlan:
    """Rates and shapes of the injected failures (all per fetch).

    Parameters
    ----------
    seed:
        Base seed; per-URL schedules derive from it and the URL.
    timeout_rate, reset_rate, server_error_rate:
        Probabilities of the three transient fetch faults.
    slow_rate, slow_delay:
        Probability of a slow (but successful) response and its cost in
        clock seconds — consumed from the page's deadline budget.  Slow
        responses are tagged as a :data:`SLOW_RESPONSE` degradation.
    stall_rate, stall_delay:
        Probability of a latency *stall*: the fetch succeeds with
        byte-identical content but only after ``stall_delay`` clock
        seconds — a tail-latency spike, not a fidelity loss, so no
        degradation tag is attached.  Stalls are sized to blow
        per-request deadline budgets, which is what makes deadline
        expiry and load shedding testable without wall-clock sleeps
        (the delay advances the injected
        :class:`~repro.resilience.clock.Clock`).
    truncate_rate, truncate_fraction:
        Probability of serving truncated HTML, and the fraction of the
        document that survives.
    drop_screenshot_rate:
        Probability of losing the screenshot capture.
    permanent_rate:
        Share of URLs that are permanently dead (never heal).
    max_consecutive_transient:
        Hard cap on back-to-back transient faults per URL; guarantees a
        retry policy with more attempts than this always succeeds.
    """

    seed: int = 0
    timeout_rate: float = 0.0
    reset_rate: float = 0.0
    server_error_rate: float = 0.0
    slow_rate: float = 0.0
    slow_delay: float = 1.0
    stall_rate: float = 0.0
    stall_delay: float = 30.0
    truncate_rate: float = 0.0
    truncate_fraction: float = 0.3
    drop_screenshot_rate: float = 0.0
    permanent_rate: float = 0.0
    max_consecutive_transient: int = 3

    def __post_init__(self):
        rates = (
            self.timeout_rate, self.reset_rate, self.server_error_rate,
            self.slow_rate, self.stall_rate, self.truncate_rate,
            self.drop_screenshot_rate, self.permanent_rate,
        )
        for rate in rates:
            if not 0 <= rate <= 1:
                raise ValueError(f"rates must be in [0, 1], got {rate}")
        if self.max_consecutive_transient < 1:
            raise ValueError("max_consecutive_transient must be >= 1")
        if self.stall_delay < 0:
            raise ValueError(
                f"stall_delay must be >= 0, got {self.stall_delay}"
            )

    @property
    def transient_rate(self) -> float:
        """Combined probability of the three transient fetch faults."""
        return self.timeout_rate + self.reset_rate + self.server_error_rate

    @classmethod
    def transient(cls, rate: float, seed: int = 0, **kwargs) -> "FaultPlan":
        """A plan with ``rate`` split evenly across the transient kinds.

        Pure transient faults leave page *content* untouched, so a
        retried load is byte-identical to a fault-free one — the shape
        the completion-vs-accuracy robustness experiment needs.
        """
        share = rate / 3.0
        return cls(
            seed=seed, timeout_rate=share, reset_rate=share,
            server_error_rate=share, **kwargs,
        )

    @classmethod
    def degraded_content(
        cls, rate: float, seed: int = 0, **kwargs
    ) -> "FaultPlan":
        """A plan that only degrades content (truncation, lost shots)."""
        return cls(
            seed=seed, truncate_rate=rate, drop_screenshot_rate=rate,
            **kwargs,
        )

    @classmethod
    def latency(
        cls, rate: float, delay: float = 30.0, seed: int = 0, **kwargs
    ) -> "FaultPlan":
        """A plan that only injects latency stalls (content untouched).

        The shape the serving benchmarks use: every page loads with
        byte-identical content, but ``rate`` of the fetches cost
        ``delay`` injected-clock seconds — long enough to blow a
        per-request deadline, free in wall-clock terms under a
        :class:`~repro.resilience.clock.ManualClock`.
        """
        return cls(seed=seed, stall_rate=rate, stall_delay=delay, **kwargs)


@dataclass(frozen=True)
class _VisitFaults:
    """The faults scheduled for one (url, visit-index) pair."""

    transient: str | None = None       # "timeout" | "reset" | "server"
    slow: bool = False
    stall: bool = False
    truncate: bool = False
    drop_screenshot: bool = False


class _UrlSchedule:
    """Deterministic per-URL fault schedule, extended lazily per visit."""

    def __init__(self, url: str, plan: FaultPlan):
        self._rng = random.Random(
            zlib.crc32(url.encode("utf-8")) ^ (plan.seed * 0x9E3779B1)
        )
        # Stalls draw from their own derived stream so enabling them
        # leaves every pre-existing fault schedule byte-identical.
        self._stall_rng = random.Random(
            zlib.crc32(url.encode("utf-8")) ^ (plan.seed * 0xC2B2AE35)
        )
        self._plan = plan
        self.permanently_dead = self._rng.random() < plan.permanent_rate
        self._visits: list[_VisitFaults] = []
        self._consecutive = 0
        self.next_visit = 0

    def visit(self) -> _VisitFaults:
        """Consume and return the next visit's fault decision."""
        while len(self._visits) <= self.next_visit:
            self._visits.append(self._draw())
        faults = self._visits[self.next_visit]
        self.next_visit += 1
        return faults

    def _draw(self) -> _VisitFaults:
        plan = self._plan
        transient = None
        if self._consecutive < plan.max_consecutive_transient:
            draw = self._rng.random()
            if draw < plan.timeout_rate:
                transient = "timeout"
            elif draw < plan.timeout_rate + plan.reset_rate:
                transient = "reset"
            elif draw < plan.transient_rate:
                transient = "server"
        else:
            self._rng.random()  # keep the stream aligned
        self._consecutive = self._consecutive + 1 if transient else 0
        return _VisitFaults(
            transient=transient,
            slow=self._rng.random() < plan.slow_rate,
            stall=self._stall_rng.random() < plan.stall_rate,
            truncate=self._rng.random() < plan.truncate_rate,
            drop_screenshot=self._rng.random() < plan.drop_screenshot_rate,
        )


class FlakyWeb:
    """A :class:`SyntheticWeb` view that injects the plan's faults.

    Satisfies the same ``get`` contract the browser relies on, raising
    the resilience taxonomy's errors for faulted fetches and serving
    degraded copies (truncated HTML, missing screenshots) for content
    faults.  Degradations applied since the last
    :meth:`pop_degradations` call are queryable, so a wrapping
    :class:`~repro.resilience.browser.ResilientBrowser` can tag its
    verdicts.

    Parameters
    ----------
    inner:
        The pristine synthetic web.
    plan:
        The fault plan to inject.
    clock:
        Clock charged for slow responses (a
        :class:`~repro.resilience.clock.ManualClock` makes simulated
        slowness free in wall-clock terms).
    """

    def __init__(
        self,
        inner: SyntheticWeb,
        plan: FaultPlan,
        clock: Clock | None = None,
    ):
        self.inner = inner
        self.plan = plan
        self.clock = clock or SystemClock()
        self._schedules: dict[str, _UrlSchedule] = {}
        self._degradations: list[str] = []
        #: lifetime fault counters, exposed for experiment reporting
        self.stats: Counter = Counter()

    def __len__(self) -> int:
        return len(self.inner)

    def __contains__(self, url: str) -> bool:
        return url in self.inner

    def __getattr__(self, name: str):
        """Delegate the registry surface (host, urls, ...) to the inner web."""
        return getattr(self.inner, name)

    # ------------------------------------------------------------------
    def get(self, url: str) -> HostedPage | None:
        """Resolve ``url``, applying this fetch's scheduled faults.

        Raises :class:`PermanentFetchError` for dead URLs and one of
        the transient errors (:class:`FetchTimeout`,
        :class:`ConnectionReset`, :class:`ServerError`) for scheduled
        transient faults.  Content faults return a degraded *copy*; the
        hosted registry is never mutated.
        """
        page = self.inner.get(url)
        if page is None:
            return None

        key = normalize_url(url)
        schedule = self._schedules.get(key)
        if schedule is None:
            schedule = self._schedules[key] = _UrlSchedule(key, self.plan)
        if schedule.permanently_dead:
            self.stats["permanent"] += 1
            raise PermanentFetchError(url, f"host permanently down: {url}")

        faults = schedule.visit()
        if faults.transient == "timeout":
            self.stats["timeout"] += 1
            raise FetchTimeout(url)
        if faults.transient == "reset":
            self.stats["reset"] += 1
            raise ConnectionReset(url)
        if faults.transient == "server":
            self.stats["server_error"] += 1
            raise ServerError(url)

        if faults.slow:
            self.stats["slow"] += 1
            self._degradations.append(SLOW_RESPONSE)
            self.clock.sleep(self.plan.slow_delay)
        if faults.stall:
            # A latency spike, not a fidelity loss: the content below is
            # served unchanged, so no degradation tag — only the clock
            # (and any deadline measured against it) notices.
            self.stats[STALL] += 1
            self.clock.sleep(self.plan.stall_delay)
        if page.is_redirect:
            return page

        degraded = page
        if faults.truncate and page.html:
            self.stats["truncated"] += 1
            self._degradations.append(TRUNCATED_HTML)
            keep = int(len(page.html) * self.plan.truncate_fraction)
            degraded = replace(degraded, html=page.html[:keep])
        if faults.drop_screenshot and page.screenshot.full_text:
            self.stats["screenshot_dropped"] += 1
            self._degradations.append(MISSING_SCREENSHOT)
            degraded = replace(degraded, screenshot=Screenshot())
        return degraded

    def pop_degradations(self) -> list[str]:
        """Drain the degradation tags recorded since the last call."""
        tags, self._degradations = self._degradations, []
        return tags


class FlakySearchEngine:
    """A search engine wrapper injecting outages.

    Parameters
    ----------
    inner:
        The real search engine.
    outage_rate:
        Per-query probability of :class:`SearchUnavailableError`.
    forced_down:
        When True every query fails — the "search engine is down"
        scenario of the degradation experiments.
    seed:
        Seed for the outage stream.
    """

    def __init__(
        self,
        inner,
        outage_rate: float = 0.0,
        forced_down: bool = False,
        seed: int = 0,
    ):
        if not 0 <= outage_rate <= 1:
            raise ValueError(f"outage_rate must be in [0, 1], got {outage_rate}")
        self.inner = inner
        self.outage_rate = outage_rate
        self.forced_down = forced_down
        self._rng = random.Random(seed)
        self.stats: Counter = Counter()

    def __len__(self) -> int:
        return len(self.inner)

    def force_down(self) -> None:
        """Take the engine down until :meth:`restore` is called."""
        self.forced_down = True

    def restore(self) -> None:
        """Bring a forced-down engine back up."""
        self.forced_down = False

    def query(self, terms, top_k: int = 10):
        """Query the inner engine, or raise during an outage."""
        if self.forced_down or (
            self.outage_rate and self._rng.random() < self.outage_rate
        ):
            self.stats["outages"] += 1
            raise SearchUnavailableError("search engine unreachable")
        self.stats["queries"] += 1
        return self.inner.query(terms, top_k=top_k)

    def result_rdns(self, terms, top_k: int = 10) -> set[str]:
        """Outage-aware counterpart of ``SearchEngine.result_rdns``."""
        return {result.rdn for result in self.query(terms, top_k=top_k)}

    def result_mlds(self, terms, top_k: int = 10) -> set[str]:
        """Outage-aware counterpart of ``SearchEngine.result_mlds``."""
        return {result.mld for result in self.query(terms, top_k=top_k)}


class FlakyOcr:
    """An OCR wrapper that fails on a deterministic share of screenshots.

    Failure is keyed on the screenshot *content* (like the OCR noise
    itself), so the same screenshot either always fails or always reads,
    independent of call order.

    Parameters
    ----------
    inner:
        The real OCR engine.
    failure_rate:
        Share of screenshots whose recognition raises
        :class:`OcrFailure`.
    seed:
        Seed mixed into the per-screenshot failure decision.
    """

    def __init__(self, inner, failure_rate: float = 0.0, seed: int = 0):
        if not 0 <= failure_rate <= 1:
            raise ValueError(
                f"failure_rate must be in [0, 1], got {failure_rate}"
            )
        self.inner = inner
        self.failure_rate = failure_rate
        self.seed = seed
        self.stats: Counter = Counter()

    def read(self, screenshot: Screenshot) -> str:
        """Recognise the screenshot, or raise :class:`OcrFailure`."""
        text = screenshot.full_text
        if text and self.failure_rate:
            digest = zlib.crc32(text.encode("utf-8")) ^ (self.seed * 0x85EBCA6B)
            if (digest % 10_000) / 10_000.0 < self.failure_rate:
                self.stats["failures"] += 1
                raise OcrFailure("ocr engine failed on screenshot")
        self.stats["reads"] += 1
        return self.inner.read(screenshot)
