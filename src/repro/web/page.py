"""Page snapshots — the data sources a browser collects (Section II-C).

A :class:`PageSnapshot` bundles everything the paper's scraper saves for
one visited URL: the starting URL, the landing URL, the redirection chain
between them, the logged links (URLs of embedded content fetched while
loading), the HTML source and a screenshot.  The parsed HTML elements
(title, text, HREF links, copyright, element counts) are derived lazily
and cached.

Snapshots serialise to/from plain dicts (the paper's scraper stores json),
so datasets can be saved and reloaded without the synthetic web.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.html.extract import PageElements, extract_elements


@dataclass(frozen=True)
class Screenshot:
    """An abstract screenshot of a rendered webpage.

    ``rendered_text`` is the text a pixel-perfect OCR would read from the
    DOM-rendered regions; ``image_texts`` holds text baked into images
    (logos, text-as-image phishing), recoverable only through OCR.
    """

    rendered_text: str = ""
    image_texts: tuple[str, ...] = ()

    @property
    def full_text(self) -> str:
        """All text present in the screenshot pixels."""
        parts = [self.rendered_text, *self.image_texts]
        return "\n".join(part for part in parts if part)

    def to_dict(self) -> dict:
        """Plain-dict form for JSON storage."""
        return {
            "rendered_text": self.rendered_text,
            "image_texts": list(self.image_texts),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Screenshot":
        """Rebuild a screenshot from :meth:`to_dict` output."""
        return cls(
            rendered_text=data.get("rendered_text", ""),
            image_texts=tuple(data.get("image_texts", ())),
        )


@dataclass
class PageSnapshot:
    """Everything the browser observed while loading one webpage.

    Attributes
    ----------
    starting_url:
        The URL given to the user (distributed in emails, messages...).
    landing_url:
        The final URL in the address bar once loading completes.
    redirection_chain:
        URLs crossed from starting to landing URL (inclusive of both).
    logged_links:
        URLs of embedded content fetched while loading (code, images...).
    html:
        HTML source of the landing page (IFrames inlined by the browser).
    screenshot:
        Image capture of the loaded page.
    """

    starting_url: str
    landing_url: str
    redirection_chain: list[str] = field(default_factory=list)
    logged_links: list[str] = field(default_factory=list)
    html: str = ""
    screenshot: Screenshot = field(default_factory=Screenshot)
    _elements: PageElements | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self):
        if not self.redirection_chain:
            self.redirection_chain = [self.starting_url]
            if self.landing_url != self.starting_url:
                self.redirection_chain.append(self.landing_url)

    # ---- derived HTML elements (cached) --------------------------------
    @property
    def elements(self) -> PageElements:
        """Parsed HTML elements (title, text, links, counts); cached."""
        if self._elements is None:
            self._elements = extract_elements(self.html, base_url=self.landing_url)
        return self._elements

    @property
    def title(self) -> str:
        """Text of the ``<title>`` element."""
        return self.elements.title

    @property
    def text(self) -> str:
        """Rendered body text."""
        return self.elements.text

    @property
    def copyright_notice(self) -> str:
        """Copyright line found in the text ("" when absent)."""
        return self.elements.copyright_notice

    @property
    def href_links(self) -> list[str]:
        """Outgoing link URLs of the page."""
        return self.elements.href_links

    # ---- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form, matching the scraper's json output."""
        return {
            "starting_url": self.starting_url,
            "landing_url": self.landing_url,
            "redirection_chain": list(self.redirection_chain),
            "logged_links": list(self.logged_links),
            "html": self.html,
            "screenshot": self.screenshot.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PageSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        return cls(
            starting_url=data["starting_url"],
            landing_url=data["landing_url"],
            redirection_chain=list(data.get("redirection_chain", [])),
            logged_links=list(data.get("logged_links", [])),
            html=data.get("html", ""),
            screenshot=Screenshot.from_dict(data.get("screenshot", {})),
        )
