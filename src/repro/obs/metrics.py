"""Metrics registry: labelled counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` holds all three instrument kinds, keyed by
``(metric name, sorted label items)``.  Everything is lock-guarded, and
the whole registry round-trips through :meth:`MetricsRegistry.as_dict`
/ :meth:`MetricsRegistry.merge`, which is how per-worker deltas from
:meth:`repro.parallel.WorkerPool.map_observed` aggregate: counters and
histogram buckets *add*, gauges take the incoming value (last write
wins).  Because merge is commutative over counters/histograms and the
batch layer merges deltas in input order, serial, thread and process
backends aggregate to identical totals.

Metric names follow the Prometheus data model from the start
(``[a-zA-Z_:][a-zA-Z0-9_:]*``, e.g. ``cache_hits_total``), so the text
exporter in :mod:`repro.obs.export` never needs to mangle them.

:class:`NullMetrics` is the zero-cost disabled default, mirroring
:class:`repro.obs.trace.NullTracer`.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

#: Default histogram bucket upper bounds, in seconds — sized for
#: per-page pipeline stages (sub-millisecond cache hits up to
#: multi-second cold extractions).  ``+Inf`` is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

#: A label set frozen into a canonical, hashable, sortable key.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Histogram:
    """Fixed-bucket histogram state: cumulative counts + sum + count."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        self.counts[slot] += 1
        self.total += value
        self.count += 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._gauges: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, dict[LabelKey, _Histogram]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        """Pickle support (process pools ship instrumented pipelines):
        the lock is process-local and recreated on the other side."""
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True: this registry records (NullMetrics reports False)."""
        return True

    def inc(self, name: str, value: float = 1.0, /, **labels: Any) -> None:
        """Add ``value`` to the counter ``name{labels}``."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, /, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to ``value``."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        /,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        """Record ``value`` into the histogram ``name{labels}``.

        The first observation of a metric name fixes its bucket bounds;
        later calls with different ``buckets`` keep the original bounds
        so every series of one metric stays comparable.
        """
        key = _label_key(labels)
        with self._lock:
            bounds = self._buckets.setdefault(name, tuple(buckets))
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = _Histogram(bounds)
            hist.observe(value)

    # ------------------------------------------------------------------
    def counter_value(self, name: str, /, **labels: Any) -> float:
        """Current value of one counter series (0.0 when unset)."""
        key = _label_key(labels)
        with self._lock:
            return self._counters.get(name, {}).get(key, 0.0)

    def gauge_value(self, name: str, /, **labels: Any) -> float | None:
        """Current value of one gauge series (None when unset)."""
        key = _label_key(labels)
        with self._lock:
            return self._gauges.get(name, {}).get(key)

    def counter_total(self, name: str) -> float:
        """Sum of every label series of one counter."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Canonical snapshot: sorted names, sorted label series.

        The layout is stable (sorted at every level) so two registries
        holding the same data serialize identically — the basis of the
        serial==process equality assertions.
        """
        with self._lock:
            return {
                "counters": {
                    name: [
                        {"labels": dict(key), "value": series[key]}
                        for key in sorted(series)
                    ]
                    for name, series in sorted(self._counters.items())
                },
                "gauges": {
                    name: [
                        {"labels": dict(key), "value": series[key]}
                        for key in sorted(series)
                    ]
                    for name, series in sorted(self._gauges.items())
                },
                "histograms": {
                    name: [
                        {"labels": dict(key), **series[key].as_dict()}
                        for key in sorted(series)
                    ]
                    for name, series in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold an :meth:`as_dict` snapshot into this registry.

        Counters and histogram bucket counts/sums add; gauges take the
        incoming value (last write wins).  Used to aggregate per-worker
        deltas from the process backend.
        """
        for name, entries in snapshot.get("counters", {}).items():
            for entry in entries:
                self.inc(name, entry["value"], **entry["labels"])
        for name, entries in snapshot.get("gauges", {}).items():
            for entry in entries:
                self.set_gauge(name, entry["value"], **entry["labels"])
        for name, entries in snapshot.get("histograms", {}).items():
            for entry in entries:
                self._merge_histogram(name, entry)

    def _merge_histogram(self, name: str, entry: dict[str, Any]) -> None:
        key = _label_key(entry["labels"])
        bounds = tuple(entry["buckets"])
        with self._lock:
            bounds = self._buckets.setdefault(name, bounds)
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = _Histogram(bounds)
            for i, n in enumerate(entry["counts"]):
                if i < len(hist.counts):
                    hist.counts[i] += int(n)
            hist.total += float(entry["sum"])
            hist.count += int(entry["count"])

    def clear(self) -> None:
        """Drop every recorded series."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._buckets.clear()

    # ------------------------------------------------------------------
    def iter_counters(self) -> Iterator[tuple[str, dict[str, str], float]]:
        """Every counter series as (name, labels, value), sorted."""
        with self._lock:
            items = [
                (name, dict(key), series[key])
                for name, series in sorted(self._counters.items())
                for key in sorted(series)
            ]
        yield from items


class NullMetrics:
    """The zero-cost disabled registry: every method is a no-op.

    API-compatible with :class:`MetricsRegistry` so instrumented code
    never branches on whether metrics are on.
    """

    @property
    def enabled(self) -> bool:
        """False: recording calls are no-ops under this registry."""
        return False

    def inc(self, name: str, value: float = 1.0, /, **labels: Any) -> None:
        """Discard the increment (metrics are disabled)."""

    def set_gauge(self, name: str, value: float, /, **labels: Any) -> None:
        """Discard the gauge write (metrics are disabled)."""

    def observe(
        self,
        name: str,
        value: float,
        /,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        """Discard the observation (metrics are disabled)."""

    def counter_value(self, name: str, /, **labels: Any) -> float:
        """Always 0.0."""
        return 0.0

    def gauge_value(self, name: str, /, **labels: Any) -> float | None:
        """Always None."""
        return None

    def counter_total(self, name: str) -> float:
        """Always 0.0."""
        return 0.0

    def as_dict(self) -> dict[str, Any]:
        """Always the empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Discard the snapshot (metrics are disabled)."""

    def clear(self) -> None:
        """Nothing to drop."""

    def iter_counters(self) -> Iterator[tuple[str, dict[str, str], float]]:
        """Always empty."""
        return iter(())


#: Module-wide default: instrumented code paths fall back to this when
#: no registry is injected, making metrics strictly opt-in.
NULL_METRICS = NullMetrics()

#: What instrumented signatures accept: a live registry or the null one.
AnyMetrics = MetricsRegistry | NullMetrics
