"""Unified observability: tracing spans, metrics, run-report exporters.

The paper's deployment argument (Section VI / Table VIII) rests on
*where time goes* inside the analysis pipeline — feature extraction vs.
classification vs. target identification — and a production crawl
additionally needs cache hit rates, retry/breaker activity and verdict
tallies.  This package provides one common model for all of it:

* :mod:`repro.obs.trace` — hierarchical spans with deterministic ids
  (a per-tracer counter, not wall-clock or random ids) and durations
  read from the injectable :class:`repro.resilience.clock.Clock`;
  :class:`~repro.obs.trace.NullTracer` is the zero-cost default.
* :mod:`repro.obs.metrics` — a registry of named counters, gauges and
  fixed-bucket histograms with label support, mergeable across
  :class:`~repro.parallel.WorkerPool` workers so serial, thread and
  process backends aggregate to identical totals.
* :mod:`repro.obs.export` — JSON-lines span/metric dumps and a
  Prometheus-style text format, both parseable back.
* :mod:`repro.obs.report` — :class:`~repro.obs.report.RunReport`, a
  human-readable reconstruction of a run from dumped artifacts alone.
* :mod:`repro.obs.quantiles` — the one quantile implementation
  (nearest-rank and histogram interpolation) shared by the serving
  report, the run report and the quality sketches.
* :mod:`repro.obs.quality` — streaming quality observability on top:
  distribution sketches with Hellinger/PSI drift scoring against a
  frozen training reference, multi-window burn-rate SLO alerting, and
  the per-request flight recorder (``quality.*`` spans).

Span names follow the documented taxonomy (DESIGN.md §8, §11, §13):
``batch.* / browse.* / analyze / extract.f{1..5} / classify /
target.* / cache.* / train.* / serve.* / quality.*`` (including the
triage ladder's ``serve.triage``, the per-shard ``cache.shard``
snapshot spans and the quality monitor's ``quality.evaluate`` /
``quality.drift`` / ``quality.dump``), statically checked by the
PHL404 lint rule — dotted names
must additionally root in :data:`~repro.obs.trace.SPAN_NAME_ROOTS`.  Tracing and metrics never perturb verdicts: the golden feature
matrix and the parallel==serial equivalence guarantees hold with
tracing enabled.
"""

from repro.obs.export import (
    metrics_to_jsonl,
    metrics_to_prometheus,
    parse_prometheus,
    read_spans_jsonl,
    spans_to_jsonl,
    write_metrics_jsonl,
    write_metrics_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.quantiles import histogram_quantile, nearest_rank
from repro.obs.report import RunReport, render_quality
from repro.obs.trace import (
    NULL_TRACER,
    SPAN_NAME_PATTERN,
    SPAN_NAME_ROOTS,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "RunReport",
    "SPAN_NAME_PATTERN",
    "SPAN_NAME_ROOTS",
    "Span",
    "Tracer",
    "histogram_quantile",
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "nearest_rank",
    "parse_prometheus",
    "read_spans_jsonl",
    "render_quality",
    "spans_to_jsonl",
    "write_metrics_jsonl",
    "write_metrics_prometheus",
    "write_spans_jsonl",
]
