"""Hierarchical tracing spans with deterministic ids.

A :class:`Tracer` produces a forest of :class:`Span` trees.  Two design
rules keep span dumps reproducible, which is what lets tests assert on
them byte-for-byte:

* **ids come from a per-tracer counter**, assigned in span *start*
  (depth-first pre-) order — never from wall-clock time or randomness;
* **durations come from an injectable clock**
  (:class:`repro.resilience.clock.Clock`): under a
  :class:`~repro.resilience.clock.ManualClock` a traced run is exactly
  as deterministic as an untraced one.

Worker fan-out composes through :meth:`Tracer.adopt`: a worker records
into its own fresh tracer, ships the finished trees back as plain
dicts, and the parent splices them in input order, renumbering ids with
its own counter.  Renumbering walks the same pre-order as live
recording, so a serial run and a pool run of the same work produce
identical dumps.

:class:`NullTracer` is the default everywhere tracing is optional; its
:meth:`~NullTracer.span` hands back a shared no-op context manager, so
disabled tracing costs one attribute lookup and a method call per span
site (the "zero-cost when disabled" contract, bounded in
``benchmarks/test_throughput.py``).
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterator

from repro.resilience.clock import Clock, SystemClock

#: The documented span-name taxonomy (DESIGN.md §8): dot-separated
#: segments, the first purely ``[a-z_]``, later ones also allowing
#: digits and ``{}`` (for template names such as ``extract.f{group}``).
#: Statically enforced on span-name literals by lint rule PHL404.
SPAN_NAME_PATTERN = re.compile(r"^[a-z_]+(\.[a-z_{}0-9]+)*$")

#: The closed set of first segments a *dotted* span name may use
#: (DESIGN.md §8 and §11).  Single-segment names stay shape-checked
#: only — tests and scratch scripts use free-form one-word spans —
#: but a dotted name claims a place in the documented taxonomy, so
#: its root must be one of these subsystems.  Enforced by PHL404.
SPAN_NAME_ROOTS = frozenset({
    "analyze", "batch", "browse", "cache", "classify",
    "extract", "quality", "serve", "target", "train",
})


class Span:
    """One timed operation: a node in a trace tree.

    Attributes are plain JSON-able values supplied at
    :meth:`Tracer.span` entry or via :meth:`set` inside the block.
    ``duration`` is ``end - start`` in the tracer's clock seconds.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "end",
                 "attrs", "children")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = start
        self.attrs = attrs
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Elapsed clock seconds between span entry and exit."""
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":  # pragma: no cover - via Tracer.span
        return self

    def __exit__(self, *exc_info: object) -> None:  # pragma: no cover
        return None

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form of this subtree (picklable, JSON-able)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class _ActiveSpan:
    """Context manager pairing a live :class:`Span` with its tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self.span)


class Tracer:
    """Records hierarchical spans with counter-assigned ids.

    Parameters
    ----------
    clock:
        Time source for span durations; defaults to
        :class:`~repro.resilience.clock.SystemClock`.  Inject a
        :class:`~repro.resilience.clock.ManualClock` for byte-identical
        dumps across runs.

    Nesting is tracked per thread (a thread-local stack), and finished
    root spans are appended to :attr:`roots` under a lock, so one
    tracer instance is safe to share — though for deterministic dumps
    the batch layer gives each worker item a fresh tracer and splices
    the results in input order via :meth:`adopt`.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or SystemClock()
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, Any]:
        """Pickle support (process pools ship instrumented pipelines):
        the lock and per-thread stack are process-local and recreated
        fresh on the other side."""
        state = {
            "clock": self.clock,
            "roots": self.roots,
            "_next_id": self._next_id,
        }
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.clock = state["clock"]
        self.roots = state["roots"]
        self._next_id = state["_next_id"]
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True: this tracer records spans (NullTracer reports False)."""
        return True

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a child span of the current one (or a new root).

        Use as a context manager::

            with tracer.span("extract.f2", metric="hellinger") as sp:
                ...
                sp.set(cached=False)
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start=self.clock.now(),
            attrs=attrs,
        )
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if span.parent_id is None:
            with self._lock:
                self.roots.append(span)

    # ------------------------------------------------------------------
    def adopt(self, records: list[dict[str, Any]]) -> None:
        """Splice finished span trees (as :meth:`Span.to_dict` payloads).

        Ids are renumbered from this tracer's counter in depth-first
        pre-order — the same order live recording assigns them — so a
        dump after adoption is identical to one produced by recording
        the same spans directly.  Times are kept verbatim (they already
        came from the same injectable clock family).
        """
        for record in records:
            span = self._adopt_one(record, parent_id=None)
            with self._lock:
                self.roots.append(span)

    def _adopt_one(
        self, record: dict[str, Any], parent_id: int | None
    ) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            str(record["name"]),
            span_id=span_id,
            parent_id=parent_id,
            start=float(record["start"]),
            attrs=dict(record["attrs"]),
        )
        span.end = float(record["end"])
        span.children = [
            self._adopt_one(child, parent_id=span_id)
            for child in record.get("children", ())
        ]
        return span

    # ------------------------------------------------------------------
    def export_records(self) -> list[dict[str, Any]]:
        """Finished root-span trees as plain dicts (picklable)."""
        with self._lock:
            roots = list(self.roots)
        return [root.to_dict() for root in roots]

    def iter_spans(self) -> Iterator[Span]:
        """Every finished span, roots in record order, depth-first."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    def clear(self) -> None:
        """Drop every finished span (the id counter keeps counting)."""
        with self._lock:
            self.roots.clear()


class _NullSpan:
    """Shared no-op stand-in for a :class:`Span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        """Discard attributes (tracing is disabled)."""
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost disabled tracer: every span is a shared no-op.

    API-compatible with :class:`Tracer` so instrumented code never
    branches on whether tracing is on; `benchmarks/test_throughput.py`
    bounds the live tracer's overhead against this baseline.
    """

    clock: Clock = SystemClock()
    roots: list[Span] = []

    @property
    def enabled(self) -> bool:
        """False: span sites are no-ops under this tracer."""
        return False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """A shared, reusable no-op context manager."""
        return _NULL_SPAN

    def adopt(self, records: list[dict[str, Any]]) -> None:
        """Discard adopted records (tracing is disabled)."""

    def export_records(self) -> list[dict[str, Any]]:
        """Always empty."""
        return []

    def iter_spans(self) -> Iterator[Span]:
        """Always empty."""
        return iter(())

    def clear(self) -> None:
        """Nothing to drop."""


#: Module-wide default: instrumented code paths fall back to this when
#: no tracer is injected, making tracing strictly opt-in.
NULL_TRACER = NullTracer()

#: What instrumented signatures accept: a live tracer or the null one.
AnyTracer = Tracer | NullTracer
