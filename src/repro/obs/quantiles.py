"""Shared quantile computation over ordered samples and histograms.

Two callers used to carry private percentile code — the serving
report's nearest-rank latency percentiles and (new) the SLO engine's
sketch-backed objectives.  Both now go through this module so "p99"
means exactly one thing everywhere:

* :func:`nearest_rank` — the classic nearest-rank estimator over a
  pre-sorted sample list (what :class:`repro.serve.report.ServingReport`
  always computed);
* :func:`histogram_quantile` — linear interpolation inside fixed
  histogram buckets, shared by :class:`repro.obs.quality.QuantileSketch`
  and the ``serve_tier_latency_seconds`` reconstruction in
  :class:`repro.obs.report.RunReport` (Prometheus
  ``histogram_quantile`` semantics, including reporting the largest
  finite bound for mass in the ``+Inf`` overflow bucket).

Both raise on quantiles outside ``(0, 1]`` and return ``0.0`` for an
empty population rather than indexing into an empty ranking.
"""

from __future__ import annotations

import math
from typing import Sequence

_EPS = 1e-9


def nearest_rank(ordered: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted sample.

    ``ordered`` must be sorted ascending; an empty population yields
    0.0 (no distribution to rank into).
    """
    if not 0 < quantile <= 1:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(quantile * len(ordered)))
    return float(ordered[rank - 1])


def histogram_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    quantile: float,
    lo: float = 0.0,
) -> float:
    """Interpolated quantile from per-bucket (non-cumulative) counts.

    ``bounds`` are the increasing finite upper edges, one per bucket;
    ``counts`` may carry one extra trailing slot for the ``+Inf``
    overflow bucket (the Prometheus histogram layout).  ``lo`` is the
    lower edge of the first bucket.  Mass landing in the overflow
    bucket reports the largest finite bound — the quantile cannot be
    interpolated inside an unbounded bucket.
    """
    if not 0 < quantile <= 1:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    if len(counts) not in (len(bounds), len(bounds) + 1):
        raise ValueError(
            f"counts must have len(bounds) or len(bounds)+1 entries, "
            f"got {len(counts)} for {len(bounds)} bounds"
        )
    total = sum(counts)
    if total <= 0:
        return 0.0
    target = quantile * total
    cumulative = 0.0
    lower = float(lo)
    for index, count in enumerate(counts):
        upper = float(bounds[index]) if index < len(bounds) else None
        if count:
            previous = cumulative
            cumulative += count
            if cumulative >= target - _EPS:
                if upper is None:
                    return float(bounds[-1]) if bounds else lower
                fraction = (target - previous) / count
                return lower + (upper - lower) * fraction
        if upper is not None:
            lower = upper
    return float(bounds[-1]) if bounds else lower
