"""Human-readable run reports reconstructed from dumped artifacts.

:class:`RunReport` is the consumer side of the observability layer: it
takes a spans JSONL dump, a Prometheus metrics dump and optionally a
quality-monitor artifact — *artifacts only*, no access to the process
that produced them — and reconstructs per-stage timing
(``extract.f1``..``extract.f5``, ``classify``, ``target.identify``),
verdict tallies, cache hit rates, retry/breaker activity, the tiered
serving picture (per-tier counts and latency percentiles, triage
actions, cache-shard balance) and the quality block (drift statuses,
SLO burn rates, alerts) as aligned ASCII tables.  This is what the
``repro obs report`` CLI subcommand renders; :func:`render_quality`
is the shared formatter ``repro obs quality`` reuses for a quality
artifact on its own.

The formatter is intentionally self-contained (not imported from
:mod:`repro.evaluation.reporting`) because the evaluation package
imports this one; sharing code would create an import cycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.export import parse_prometheus, read_spans_jsonl
from repro.obs.quantiles import histogram_quantile


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:.3f}"
    return str(value)


def _table(headers: list[str], rows: list[list[Any]]) -> str:
    str_rows = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for i in [index] for row in str_rows))
        if str_rows
        else len(header)
        for index, header in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class RunReport:
    """A pipeline run reconstructed from span + metric artifacts."""

    def __init__(
        self,
        spans: list[dict[str, Any]],
        metrics: dict[str, Any],
        quality: dict[str, Any] | None = None,
    ) -> None:
        self.spans = spans
        self.metrics = metrics
        self.quality = quality

    @classmethod
    def from_artifacts(
        cls,
        spans_path: str | Path | None = None,
        metrics_path: str | Path | None = None,
        quality_path: str | Path | None = None,
    ) -> "RunReport":
        """Build a report from dump files written by the exporters.

        ``quality_path`` optionally names a quality-monitor artifact
        (:meth:`repro.obs.quality.QualityMonitor.write_artifact`
        output) whose drift/SLO/alert state then renders as an extra
        section.
        """
        spans: list[dict[str, Any]] = []
        metrics: dict[str, Any] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        quality: dict[str, Any] | None = None
        if spans_path is not None:
            spans = read_spans_jsonl(Path(spans_path))
        if metrics_path is not None:
            metrics = parse_prometheus(Path(metrics_path))
        if quality_path is not None:
            quality = json.loads(
                Path(quality_path).read_text(encoding="utf-8")
            )
        return cls(spans, metrics, quality)

    # ------------------------------------------------------------------
    def stage_timing(self) -> list[dict[str, Any]]:
        """Spans aggregated by name: count, total/mean/max seconds."""
        agg: dict[str, dict[str, Any]] = {}
        for span in self.spans:
            entry = agg.setdefault(
                span["name"], {"count": 0, "total": 0.0, "max": 0.0}
            )
            duration = float(span["end"]) - float(span["start"])
            entry["count"] += 1
            entry["total"] += duration
            entry["max"] = max(entry["max"], duration)
        return [
            {
                "name": name,
                "count": entry["count"],
                "total_s": entry["total"],
                "mean_s": entry["total"] / entry["count"],
                "max_s": entry["max"],
            }
            for name, entry in sorted(agg.items())
        ]

    def _counter_series(self, name: str) -> list[dict[str, Any]]:
        return self.metrics.get("counters", {}).get(name, [])

    def _counter_total(self, name: str) -> float:
        return sum(e["value"] for e in self._counter_series(name))

    def verdict_tallies(self) -> dict[str, float]:
        """Verdict counts by label, plus the ``degraded`` tally."""
        tallies = {
            entry["labels"].get("verdict", ""): entry["value"]
            for entry in self._counter_series("verdicts_total")
        }
        degraded = self._counter_total("verdicts_degraded_total")
        if degraded:
            tallies["degraded"] = degraded
        return tallies

    def cache_rates(self) -> list[dict[str, Any]]:
        """Per-store cache hits/misses/evictions and hit rate."""
        stores: dict[str, dict[str, float]] = {}
        for metric, field in (
            ("cache_hits_total", "hits"),
            ("cache_misses_total", "misses"),
            ("cache_evictions_total", "evictions"),
        ):
            for entry in self._counter_series(metric):
                store = entry["labels"].get("store", "")
                stores.setdefault(
                    store, {"hits": 0.0, "misses": 0.0, "evictions": 0.0}
                )[field] = entry["value"]
        rows = []
        for store in sorted(stores):
            data = stores[store]
            lookups = data["hits"] + data["misses"]
            rows.append(
                {
                    "store": store,
                    "hits": data["hits"],
                    "misses": data["misses"],
                    "evictions": data["evictions"],
                    "hit_rate": data["hits"] / lookups if lookups else 0.0,
                }
            )
        return rows

    def resilience_counts(self) -> dict[str, float]:
        """Navigation, retry and breaker-transition totals."""
        counts = {
            "loads": self._counter_total("browse_loads_total"),
            "redirects": self._counter_total("browse_redirects_total"),
            "retries": self._counter_total("browse_retries_total"),
            "breaker_opened": sum(
                entry["value"]
                for entry in self._counter_series("breaker_transitions_total")
                if entry["labels"].get("to") == "open"
            ),
            "breaker_transitions": self._counter_total(
                "breaker_transitions_total"
            ),
        }
        return counts

    # -- tiered serving ------------------------------------------------
    def tier_rows(self) -> list[dict[str, Any]]:
        """Per-tier response counts and latency percentiles.

        Counts come from the ``serve_tier_total`` counter; p50/p99 are
        interpolated from the ``serve_tier_latency_seconds`` histogram
        buckets via the shared :func:`histogram_quantile` — the dump
        holds bucket counts, not raw samples, so the percentiles are
        bucket-resolution estimates rather than nearest-rank exacts.
        """
        counts = {
            entry["labels"].get("tier", ""): entry["value"]
            for entry in self._counter_series("serve_tier_total")
        }
        latencies = {
            entry["labels"].get("tier", ""): entry
            for entry in self.metrics.get("histograms", {}).get(
                "serve_tier_latency_seconds", []
            )
        }
        rows = []
        for tier in sorted(counts):
            histo = latencies.get(tier)
            p50 = p99 = 0.0
            if histo is not None:
                p50 = histogram_quantile(
                    histo["buckets"], histo["counts"], 0.50
                )
                p99 = histogram_quantile(
                    histo["buckets"], histo["counts"], 0.99
                )
            rows.append(
                {
                    "tier": tier,
                    "count": counts[tier],
                    "latency_p50": p50,
                    "latency_p99": p99,
                }
            )
        return rows

    def triage_actions(self) -> dict[str, float]:
        """Tier-0 triage decisions by action, key-sorted."""
        return dict(
            sorted(
                (entry["labels"].get("action", ""), entry["value"])
                for entry in self._counter_series("serve_triage_total")
            )
        )

    def shard_rows(self) -> list[dict[str, Any]]:
        """Cache-shard balance from the ``cache.shard`` snapshot spans."""
        rows = []
        for span in self.spans:
            if span["name"] != "cache.shard":
                continue
            attrs = span.get("attrs", {})
            rows.append(
                {
                    "cache": attrs.get("cache", ""),
                    "index": attrs.get("index", 0),
                    "size": attrs.get("size", 0),
                    "hits": attrs.get("hits", 0),
                    "misses": attrs.get("misses", 0),
                    "evictions": attrs.get("evictions", 0),
                }
            )
        rows.sort(key=lambda row: (row["cache"], row["index"]))
        return rows

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full report as aligned ASCII sections."""
        sections: list[str] = []

        timing = self.stage_timing()
        if timing:
            rows = [
                [t["name"], t["count"], t["total_s"], t["mean_s"], t["max_s"]]
                for t in timing
            ]
            sections.append(
                "Per-stage timing (from spans)\n"
                + _table(
                    ["span", "count", "total s", "mean s", "max s"], rows
                )
            )

        tallies = self.verdict_tallies()
        if tallies:
            rows = [
                [verdict, int(count)]
                for verdict, count in sorted(tallies.items())
            ]
            sections.append(
                "Verdicts\n" + _table(["verdict", "count"], rows)
            )

        caches = self.cache_rates()
        if caches:
            rows = [
                [
                    c["store"],
                    int(c["hits"]),
                    int(c["misses"]),
                    int(c["evictions"]),
                    c["hit_rate"],
                ]
                for c in caches
            ]
            sections.append(
                "Caches\n"
                + _table(
                    ["store", "hits", "misses", "evictions", "hit rate"],
                    rows,
                )
            )

        tiers = self.tier_rows()
        if tiers:
            rows = [
                [
                    t["tier"],
                    int(t["count"]),
                    t["latency_p50"],
                    t["latency_p99"],
                ]
                for t in tiers
            ]
            sections.append(
                "Serving tiers\n"
                + _table(["tier", "count", "p50 s", "p99 s"], rows)
            )

        triage = self.triage_actions()
        if triage:
            rows = [[action, int(count)] for action, count in triage.items()]
            sections.append(
                "Triage\n" + _table(["action", "count"], rows)
            )

        shards = self.shard_rows()
        if shards:
            rows = [
                [
                    s["cache"],
                    int(s["index"]),
                    int(s["size"]),
                    int(s["hits"]),
                    int(s["misses"]),
                    int(s["evictions"]),
                ]
                for s in shards
            ]
            sections.append(
                "Cache shards\n"
                + _table(
                    ["cache", "shard", "size", "hits", "misses",
                     "evictions"],
                    rows,
                )
            )

        resilience = self.resilience_counts()
        if any(resilience.values()):
            rows = [[key, int(val)] for key, val in sorted(resilience.items())]
            sections.append(
                "Resilience\n" + _table(["counter", "count"], rows)
            )

        if self.quality is not None:
            sections.append(render_quality(self.quality))

        if not sections:
            return "(no observability data in artifacts)"
        return "\n\n".join(sections)


def render_quality(artifact: dict[str, Any]) -> str:
    """Render a quality-monitor artifact as aligned ASCII sections.

    ``artifact`` is the JSON payload written by
    :meth:`repro.obs.quality.QualityMonitor.write_artifact`: event
    counts, drift statuses, SLO burn rates, the alert log and the
    flight-recorder footprint.  Shared by the run report's quality
    section and the ``repro obs quality`` subcommand, so both views
    of the same artifact always agree.
    """
    sections: list[str] = []

    counts = artifact.get("counts") or {}
    if counts:
        rows = [[stream, int(count)] for stream, count in counts.items()]
        sections.append(
            "Quality event streams\n" + _table(["stream", "events"], rows)
        )

    drift = artifact.get("drift") or {}
    signals = drift.get("signals") or []
    if signals:
        rows = [
            [
                s["signal"],
                int(s["count"]),
                s["hellinger"],
                s["psi"],
                "DRIFTED" if s["drifted"] else "ok",
            ]
            for s in signals
        ]
        thresholds = drift.get("thresholds", {})
        sections.append(
            "Feature drift (hellinger >= "
            + _fmt(thresholds.get("hellinger", 0.0))
            + " or psi >= "
            + _fmt(thresholds.get("psi", 0.0))
            + ")\n"
            + _table(
                ["signal", "window n", "hellinger", "psi", "status"], rows
            )
        )

    slo = artifact.get("slo") or {}
    burn = slo.get("burn") or []
    if burn:
        rows = [
            [
                b["objective"],
                b["window"],
                b["burn_long"],
                b["burn_short"],
                b["factor"],
                "FIRING" if b["active"] else "ok",
            ]
            for b in burn
        ]
        sections.append(
            "SLO burn rates\n"
            + _table(
                ["objective", "window", "long", "short", "factor",
                 "state"],
                rows,
            )
        )

    alerts = artifact.get("alerts") or []
    if alerts:
        rows = []
        for alert in alerts:
            subject = (
                alert.get("objective", "") + "/" + alert.get("window", "")
                if alert.get("kind") == "slo"
                else alert.get("signal", "")
            )
            rows.append(
                [alert.get("time", 0.0), alert.get("kind", ""), subject,
                 alert.get("state", "")]
            )
        sections.append(
            "Alert log\n"
            + _table(["time", "kind", "subject", "state"], rows)
        )

    recorder = artifact.get("recorder") or {}
    if recorder:
        rows = [
            ["capacity", int(recorder.get("capacity", 0))],
            ["recorded", int(recorder.get("recorded", 0))],
            ["dropped", int(recorder.get("dropped", 0))],
            ["alert dumps", len(artifact.get("alert_dumps") or [])],
        ]
        sections.append(
            "Flight recorder\n" + _table(["field", "value"], rows)
        )

    if not sections:
        return "Quality\n(no quality data in artifact)"
    return "\n\n".join(sections)
