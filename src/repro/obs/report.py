"""Human-readable run reports reconstructed from dumped artifacts.

:class:`RunReport` is the consumer side of the observability layer: it
takes a spans JSONL dump and a Prometheus metrics dump — *artifacts
only*, no access to the process that produced them — and reconstructs
per-stage timing (``extract.f1``..``extract.f5``, ``classify``,
``target.identify``), verdict tallies, cache hit rates and
retry/breaker activity as aligned ASCII tables.  This is what the
``repro obs report`` CLI subcommand renders.

The formatter is intentionally self-contained (not imported from
:mod:`repro.evaluation.reporting`) because the evaluation package
imports this one; sharing code would create an import cycle.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.export import parse_prometheus, read_spans_jsonl


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:.3f}"
    return str(value)


def _table(headers: list[str], rows: list[list[Any]]) -> str:
    str_rows = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for i in [index] for row in str_rows))
        if str_rows
        else len(header)
        for index, header in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class RunReport:
    """A pipeline run reconstructed from span + metric artifacts."""

    def __init__(
        self,
        spans: list[dict[str, Any]],
        metrics: dict[str, Any],
    ) -> None:
        self.spans = spans
        self.metrics = metrics

    @classmethod
    def from_artifacts(
        cls,
        spans_path: str | Path | None = None,
        metrics_path: str | Path | None = None,
    ) -> "RunReport":
        """Build a report from dump files written by the exporters."""
        spans: list[dict[str, Any]] = []
        metrics: dict[str, Any] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        if spans_path is not None:
            spans = read_spans_jsonl(Path(spans_path))
        if metrics_path is not None:
            metrics = parse_prometheus(Path(metrics_path))
        return cls(spans, metrics)

    # ------------------------------------------------------------------
    def stage_timing(self) -> list[dict[str, Any]]:
        """Spans aggregated by name: count, total/mean/max seconds."""
        agg: dict[str, dict[str, Any]] = {}
        for span in self.spans:
            entry = agg.setdefault(
                span["name"], {"count": 0, "total": 0.0, "max": 0.0}
            )
            duration = float(span["end"]) - float(span["start"])
            entry["count"] += 1
            entry["total"] += duration
            entry["max"] = max(entry["max"], duration)
        return [
            {
                "name": name,
                "count": entry["count"],
                "total_s": entry["total"],
                "mean_s": entry["total"] / entry["count"],
                "max_s": entry["max"],
            }
            for name, entry in sorted(agg.items())
        ]

    def _counter_series(self, name: str) -> list[dict[str, Any]]:
        return self.metrics.get("counters", {}).get(name, [])

    def _counter_total(self, name: str) -> float:
        return sum(e["value"] for e in self._counter_series(name))

    def verdict_tallies(self) -> dict[str, float]:
        """Verdict counts by label, plus the ``degraded`` tally."""
        tallies = {
            entry["labels"].get("verdict", ""): entry["value"]
            for entry in self._counter_series("verdicts_total")
        }
        degraded = self._counter_total("verdicts_degraded_total")
        if degraded:
            tallies["degraded"] = degraded
        return tallies

    def cache_rates(self) -> list[dict[str, Any]]:
        """Per-store cache hits/misses/evictions and hit rate."""
        stores: dict[str, dict[str, float]] = {}
        for metric, field in (
            ("cache_hits_total", "hits"),
            ("cache_misses_total", "misses"),
            ("cache_evictions_total", "evictions"),
        ):
            for entry in self._counter_series(metric):
                store = entry["labels"].get("store", "")
                stores.setdefault(
                    store, {"hits": 0.0, "misses": 0.0, "evictions": 0.0}
                )[field] = entry["value"]
        rows = []
        for store in sorted(stores):
            data = stores[store]
            lookups = data["hits"] + data["misses"]
            rows.append(
                {
                    "store": store,
                    "hits": data["hits"],
                    "misses": data["misses"],
                    "evictions": data["evictions"],
                    "hit_rate": data["hits"] / lookups if lookups else 0.0,
                }
            )
        return rows

    def resilience_counts(self) -> dict[str, float]:
        """Navigation, retry and breaker-transition totals."""
        counts = {
            "loads": self._counter_total("browse_loads_total"),
            "redirects": self._counter_total("browse_redirects_total"),
            "retries": self._counter_total("browse_retries_total"),
            "breaker_opened": sum(
                entry["value"]
                for entry in self._counter_series("breaker_transitions_total")
                if entry["labels"].get("to") == "open"
            ),
            "breaker_transitions": self._counter_total(
                "breaker_transitions_total"
            ),
        }
        return counts

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full report as aligned ASCII sections."""
        sections: list[str] = []

        timing = self.stage_timing()
        if timing:
            rows = [
                [t["name"], t["count"], t["total_s"], t["mean_s"], t["max_s"]]
                for t in timing
            ]
            sections.append(
                "Per-stage timing (from spans)\n"
                + _table(
                    ["span", "count", "total s", "mean s", "max s"], rows
                )
            )

        tallies = self.verdict_tallies()
        if tallies:
            rows = [
                [verdict, int(count)]
                for verdict, count in sorted(tallies.items())
            ]
            sections.append(
                "Verdicts\n" + _table(["verdict", "count"], rows)
            )

        caches = self.cache_rates()
        if caches:
            rows = [
                [
                    c["store"],
                    int(c["hits"]),
                    int(c["misses"]),
                    int(c["evictions"]),
                    c["hit_rate"],
                ]
                for c in caches
            ]
            sections.append(
                "Caches\n"
                + _table(
                    ["store", "hits", "misses", "evictions", "hit rate"],
                    rows,
                )
            )

        resilience = self.resilience_counts()
        if any(resilience.values()):
            rows = [[key, int(val)] for key, val in sorted(resilience.items())]
            sections.append(
                "Resilience\n" + _table(["counter", "count"], rows)
            )

        if not sections:
            return "(no observability data in artifacts)"
        return "\n\n".join(sections)
