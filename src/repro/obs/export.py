"""Exporters: JSON-lines span/metric dumps + Prometheus text format.

Every format here is deterministic (sorted keys, sorted series,
canonical float formatting) and round-trips: ``spans.jsonl`` reads back
with :func:`read_spans_jsonl`, ``metrics.prom`` with
:func:`parse_prometheus`.  That round-trip is what lets
``repro obs report`` reconstruct a run from artifacts alone, and what
the span-determinism tests compare byte-for-byte.

Span lines are the flattened depth-first pre-order walk of each root
tree — one JSON object per span with ``span_id``/``parent_id`` links,
so consumers can rebuild the hierarchy without nesting in the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Protocol


class _SpanLike(Protocol):
    """The subset of :class:`repro.obs.trace.Span` exporters need."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float
    attrs: dict[str, Any]

    def walk(self) -> Iterable["_SpanLike"]: ...


class _TracerLike(Protocol):
    """The subset of :class:`repro.obs.trace.Tracer` exporters need."""

    def iter_spans(self) -> Iterable[_SpanLike]: ...


class _MetricsLike(Protocol):
    """The subset of :class:`repro.obs.metrics.MetricsRegistry` used."""

    def as_dict(self) -> dict[str, Any]: ...


# ----------------------------------------------------------------------
# Spans: JSON lines
# ----------------------------------------------------------------------

def spans_to_jsonl(tracer: _TracerLike) -> str:
    """All finished spans as JSON lines (depth-first, roots in order)."""
    lines = []
    for span in tracer.iter_spans():
        lines.append(
            json.dumps(
                {
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "start": span.start,
                    "end": span.end,
                    "attrs": span.attrs,
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(tracer: _TracerLike, path: str | Path) -> Path:
    """Dump :func:`spans_to_jsonl` to ``path`` and return it."""
    out = Path(path)
    out.write_text(spans_to_jsonl(tracer), encoding="utf-8")
    return out


def read_spans_jsonl(source: str | Path) -> list[dict[str, Any]]:
    """Parse a spans JSONL file (or literal text) back into dicts.

    Accepts a path or raw JSONL text; returns one flat dict per span in
    file order (which is the deterministic depth-first dump order).
    """
    if isinstance(source, Path):
        text = source.read_text(encoding="utf-8")
    elif not source.strip() or "\n" in source or source.lstrip().startswith("{"):
        # Empty output round-trips as literal text, not a file path.
        text = source
    else:
        text = Path(source).read_text(encoding="utf-8")
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(json.loads(line))
    return spans


# ----------------------------------------------------------------------
# Metrics: JSON lines
# ----------------------------------------------------------------------

def metrics_to_jsonl(metrics: _MetricsLike) -> str:
    """Every metric series as one JSON line: kind, name, labels, data."""
    snapshot = metrics.as_dict()
    lines = []
    for kind in ("counters", "gauges", "histograms"):
        for name, entries in snapshot.get(kind, {}).items():
            for entry in entries:
                record = {"kind": kind[:-1], "name": name, **entry}
                lines.append(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_jsonl(metrics: _MetricsLike, path: str | Path) -> Path:
    """Dump :func:`metrics_to_jsonl` to ``path`` and return it."""
    out = Path(path)
    out.write_text(metrics_to_jsonl(metrics), encoding="utf-8")
    return out


# ----------------------------------------------------------------------
# Metrics: Prometheus text format
# ----------------------------------------------------------------------

def _format_value(value: float) -> str:
    """Canonical sample value: integral floats print without a dot."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{str(val)}"' for key, val in sorted(labels.items())
    )
    return "{" + body + "}"


def metrics_to_prometheus(metrics: _MetricsLike) -> str:
    """The registry in the Prometheus exposition text format.

    Counters and gauges emit one sample per label series; histograms
    expand to cumulative ``_bucket{le=...}`` samples plus ``_sum`` and
    ``_count``.  Output ordering is fully deterministic (names and
    label series sorted).
    """
    snapshot = metrics.as_dict()
    lines: list[str] = []
    for name, entries in snapshot.get("counters", {}).items():
        lines.append(f"# TYPE {name} counter")
        for entry in entries:
            lines.append(
                f"{name}{_format_labels(entry['labels'])} "
                f"{_format_value(entry['value'])}"
            )
    for name, entries in snapshot.get("gauges", {}).items():
        lines.append(f"# TYPE {name} gauge")
        for entry in entries:
            lines.append(
                f"{name}{_format_labels(entry['labels'])} "
                f"{_format_value(entry['value'])}"
            )
    for name, entries in snapshot.get("histograms", {}).items():
        lines.append(f"# TYPE {name} histogram")
        for entry in entries:
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                labels = dict(entry["labels"], le=repr(float(bound)))
                lines.append(
                    f"{name}_bucket{_format_labels(labels)} {cumulative}"
                )
            cumulative += entry["counts"][len(entry["buckets"])]
            labels = dict(entry["labels"], le="+Inf")
            lines.append(
                f"{name}_bucket{_format_labels(labels)} {cumulative}"
            )
            lines.append(
                f"{name}_sum{_format_labels(entry['labels'])} "
                f"{_format_value(entry['sum'])}"
            )
            lines.append(
                f"{name}_count{_format_labels(entry['labels'])} "
                f"{entry['count']}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_prometheus(
    metrics: _MetricsLike, path: str | Path
) -> Path:
    """Dump :func:`metrics_to_prometheus` to ``path`` and return it."""
    out = Path(path)
    out.write_text(metrics_to_prometheus(metrics), encoding="utf-8")
    return out


def _parse_labels(body: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    for part in _split_label_pairs(body):
        key, _, raw = part.partition("=")
        labels[key.strip()] = raw.strip().strip('"')
    return labels


def _split_label_pairs(body: str) -> list[str]:
    # Split on commas outside quotes; label values here never contain
    # escaped quotes (exporter writes plain identifiers), keep it simple.
    parts: list[str] = []
    depth_quote = False
    current = ""
    for ch in body:
        if ch == '"':
            depth_quote = not depth_quote
            current += ch
        elif ch == "," and not depth_quote:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current:
        parts.append(current)
    return parts


def parse_prometheus(source: str | Path) -> dict[str, Any]:
    """Parse exporter output back into an ``as_dict``-shaped snapshot.

    The result feeds :meth:`repro.obs.metrics.MetricsRegistry.merge`
    and :meth:`repro.obs.report.RunReport.from_artifacts`; only the
    subset of the exposition format this package writes is understood.
    """
    if isinstance(source, Path):
        text = source.read_text(encoding="utf-8")
    elif not source.strip() or "\n" in source or source.lstrip().startswith("#"):
        # Empty output round-trips as literal text, not a file path.
        text = source
    else:
        text = Path(source).read_text(encoding="utf-8")

    types: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        name_part, _, value_part = line.rpartition(" ")
        labels: dict[str, str] = {}
        name = name_part
        if "{" in name_part:
            name, _, label_body = name_part.partition("{")
            labels = _parse_labels(label_body.rstrip("}"))
        value = float("inf") if value_part == "+Inf" else float(value_part)
        samples.append((name, labels, value))

    counters: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    gauges: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
    hist_parts: dict[
        str, dict[tuple[tuple[str, str], ...], dict[str, Any]]
    ] = {}

    def _hist_entry(
        base: str, labels: dict[str, str]
    ) -> dict[str, Any]:
        key = tuple(sorted(labels.items()))
        series = hist_parts.setdefault(base, {})
        entry = series.get(key)
        if entry is None:
            entry = series[key] = {
                "labels": dict(labels),
                "bucket_samples": [],
                "sum": 0.0,
                "count": 0,
            }
        return entry

    for name, labels, value in samples:
        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = name[: -len(suffix)] if name.endswith(suffix) else None
            if candidate and types.get(candidate) == "histogram":
                base = candidate
                break
        if base is not None:
            if name.endswith("_bucket"):
                le = labels.pop("le", "+Inf")
                bound = float("inf") if le == "+Inf" else float(le)
                _hist_entry(base, labels)["bucket_samples"].append(
                    (bound, value)
                )
            elif name.endswith("_sum"):
                _hist_entry(base, labels)["sum"] = value
            else:
                _hist_entry(base, labels)["count"] = int(value)
            continue
        kind = types.get(name, "counter")
        target = gauges if kind == "gauge" else counters
        target.setdefault(name, {})[tuple(sorted(labels.items()))] = value

    histograms: dict[str, list[dict[str, Any]]] = {}
    for base, series in hist_parts.items():
        entries = []
        for key in sorted(series):
            entry = series[key]
            bucket_samples = sorted(entry.pop("bucket_samples"))
            bounds = [b for b, _ in bucket_samples if b != float("inf")]
            cumulative = [int(v) for _, v in bucket_samples]
            counts = [
                c - (cumulative[i - 1] if i else 0)
                for i, c in enumerate(cumulative)
            ]
            entry["buckets"] = bounds
            entry["counts"] = counts
            entries.append(entry)
        histograms[base] = entries

    return {
        "counters": {
            name: [
                {"labels": dict(key), "value": series[key]}
                for key in sorted(series)
            ]
            for name, series in sorted(counters.items())
        },
        "gauges": {
            name: [
                {"labels": dict(key), "value": series[key]}
                for key in sorted(series)
            ]
            for name, series in sorted(gauges.items())
        },
        "histograms": dict(sorted(histograms.items())),
    }
