"""Streaming quality observability: drift, SLO burn rates, flight data.

Where :mod:`repro.obs` records what a run *did* (spans, counters,
histograms), this package judges whether the model and the serving
ladder are still *healthy* — and does it streamingly, deterministically
and from artifacts alone:

* :mod:`~repro.obs.quality.sketch` — mergeable fixed-depth
  :class:`QuantileSketch` (integer state, so merges are exactly
  commutative and associative) and sliding-window histograms, plus the
  Hellinger/PSI divergences that score them;
* :mod:`~repro.obs.quality.reference` — the frozen training-time
  :class:`ReferenceProfile` drift is measured against;
* :mod:`~repro.obs.quality.drift` — :class:`DriftMonitor`, per-signal
  sliding windows vs the reference;
* :mod:`~repro.obs.quality.slo` — declarative :class:`SloObjective`
  set evaluated over multi-window burn rates by :class:`SloEngine`;
* :mod:`~repro.obs.quality.recorder` — the :class:`FlightRecorder`
  ring of per-request events, snapshotted into every firing alert;
* :mod:`~repro.obs.quality.monitor` — :class:`QualityMonitor`, the
  facade the serving engine, the batch pipeline and the drift runner
  wire in.

The ``repro obs quality`` CLI renders the written ``quality.json`` /
flight-recorder artifacts; DESIGN.md §13 documents the formats.
"""

from repro.obs.quality.drift import DriftMonitor, DriftStatus, DriftThresholds
from repro.obs.quality.monitor import QualityMonitor
from repro.obs.quality.recorder import FlightRecorder
from repro.obs.quality.reference import SCORE_SIGNAL, ReferenceProfile
from repro.obs.quality.sketch import (
    QuantileSketch,
    SlidingWindowSketch,
    hellinger_divergence,
    population_stability_index,
)
from repro.obs.quality.slo import (
    DEFAULT_WINDOWS,
    BurnRateWindow,
    SloEngine,
    SloObjective,
)

__all__ = [
    "BurnRateWindow",
    "DEFAULT_WINDOWS",
    "DriftMonitor",
    "DriftStatus",
    "DriftThresholds",
    "FlightRecorder",
    "QualityMonitor",
    "QuantileSketch",
    "ReferenceProfile",
    "SCORE_SIGNAL",
    "SloEngine",
    "SloObjective",
    "SlidingWindowSketch",
    "hellinger_divergence",
    "population_stability_index",
]
