"""The streaming quality monitor: drift + SLOs + flight recorder.

:class:`QualityMonitor` is the single object callers wire in — the
serving engine, ``KnowYourPhish.analyze_many``/``analyze_batch`` and
the drift runner all tap into one instance through four read-only
observation hooks:

* :meth:`observe_response` — one terminal serving response (feeds
  latency/degraded SLOs, the score drift window, the flight recorder);
* :meth:`observe_verdict` — one analysis verdict with optional
  feature-group means (feeds score + feature drift and the recorder);
* :meth:`observe_cache` — one cache lookup (feeds cache-hit SLOs);
* :meth:`observe_escalation` — one tier-0 escalation outcome (feeds
  the escalation-mismatch SLO).

The taps never mutate what they observe and the monitor carries its
*own* tracer/metrics (``quality.*`` spans, ``quality_*`` series),
defaulting to the null instruments — so a monitored run's verdicts and
span dumps stay byte-identical to an unmonitored run's.  Time comes
from the instants callers pass (or the injected clock), never from the
wall; with a :class:`~repro.resilience.clock.ManualClock` the entire
alert log replays deterministically.

Evaluation cadence is deterministic too: SLO burn rates are
re-evaluated at fixed simulated-time intervals, drift after every
completed window chunk, and :meth:`finish` forces a final pass of both
on drain.  Every firing alert snapshots the flight recorder, so the
written artifact diagnoses itself.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.obs.metrics import NULL_METRICS, AnyMetrics
from repro.obs.quality.drift import DriftMonitor, DriftThresholds
from repro.obs.quality.recorder import FlightRecorder
from repro.obs.quality.reference import ReferenceProfile
from repro.obs.quality.slo import (
    DEFAULT_WINDOWS,
    BurnRateWindow,
    SloEngine,
    SloObjective,
)
from repro.obs.trace import NULL_TRACER, AnyTracer
from repro.resilience.clock import Clock, ManualClock

#: Outcome literal mirrored from :mod:`repro.serve.request`; spelled
#: here because the serving layer imports this package, not vice versa.
_DEGRADED = "degraded"

#: How many alert-triggered recorder snapshots the artifact keeps.
MAX_ALERT_DUMPS = 8


class QualityMonitor:
    """One streaming quality-observability instance.

    Parameters
    ----------
    reference:
        Frozen :class:`~repro.obs.quality.reference.ReferenceProfile`;
        arms drift monitoring when given.
    objectives / windows:
        Declarative :class:`~repro.obs.quality.slo.SloObjective` set and
        burn-rate window pairs; arms the SLO engine when non-empty.
    clock:
        Fallback time source for taps called without an explicit
        ``now`` (defaults to a fresh :class:`ManualClock` at 0.0 —
        deterministic, and callers in simulated time pass instants
        explicitly anyway).
    drift_thresholds / drift_chunk_size / drift_chunks:
        Drift window shape; the window holds about
        ``chunk_size * chunks`` recent observations per signal.
    recorder_capacity:
        Flight-recorder ring size.
    eval_interval:
        Simulated seconds between SLO evaluations (default: the
        engine's bucket resolution).
    tracer / metrics:
        The monitor's *own* instruments (``quality.evaluate`` /
        ``quality.drift`` / ``quality.dump`` spans; ``quality_*``
        counters and gauges).  Null by default so monitoring never
        perturbs the observed run's telemetry.
    """

    def __init__(
        self,
        reference: ReferenceProfile | None = None,
        objectives: tuple[SloObjective, ...] | list[SloObjective] = (),
        windows: tuple[BurnRateWindow, ...] = DEFAULT_WINDOWS,
        clock: Clock | None = None,
        drift_thresholds: DriftThresholds | None = None,
        drift_chunk_size: int = 20,
        drift_chunks: int = 4,
        recorder_capacity: int = 256,
        eval_interval: float | None = None,
        tracer: AnyTracer = NULL_TRACER,
        metrics: AnyMetrics = NULL_METRICS,
    ) -> None:
        self.clock = clock if clock is not None else ManualClock()
        self.tracer = tracer
        self.metrics = metrics
        self.slo: SloEngine | None = (
            SloEngine(objectives, windows=windows) if objectives else None
        )
        self.drift: DriftMonitor | None = (
            DriftMonitor(
                reference,
                thresholds=drift_thresholds,
                chunk_size=drift_chunk_size,
                chunks=drift_chunks,
            )
            if reference is not None
            else None
        )
        self.recorder = FlightRecorder(recorder_capacity)
        self.alerts: list[dict[str, Any]] = []
        self.alert_dumps: list[dict[str, Any]] = []
        self._counts: dict[str, int] = {}
        self._eval_interval = (
            eval_interval
            if eval_interval is not None
            else (
                # One short window per evaluation: any sustained burn
                # still surfaces within the window that defines it,
                # and the tap hot path stays cheap under load.
                min(w.short_s for w in self.slo.windows)
                if self.slo is not None
                else 1.0
            )
        )
        self._last_eval: float | None = None
        self._drift_pending = 0
        self._drift_every = drift_chunk_size
        self._drift_active: dict[str, bool] = {}
        self._last_now = 0.0
        # Objectives pre-split by kind so the per-event taps dispatch
        # without re-inspecting every objective on the hot path.
        self._slo_latency: list[SloObjective] = []
        self._slo_degraded: list[str] = []
        self._slo_mismatch: list[str] = []
        self._slo_cache: list[SloObjective] = []
        if self.slo is not None:
            for objective in self.slo.objectives:
                if objective.kind == "latency":
                    self._slo_latency.append(objective)
                elif objective.kind == "degraded_rate":
                    self._slo_degraded.append(objective.name)
                elif objective.kind == "escalation_mismatch":
                    self._slo_mismatch.append(objective.name)
                else:
                    self._slo_cache.append(objective)
        # Event counters only reach the metrics registry when one is
        # armed; a null registry costs nothing on the hot path.
        self._metrics_on = bool(getattr(self.metrics, "enabled", True))

    # -- observation taps ----------------------------------------------
    def observe_response(
        self,
        response: Any,
        budget: float | None = None,
        now: float | None = None,
    ) -> None:
        """Tap one terminal serving response (read-only).

        ``budget`` is the request's end-to-end deadline budget, used
        only to derive the recorded deadline slack.
        """
        now = self._resolve(now)
        self._count("serve")
        completed = bool(getattr(response, "completed", False))
        latency = float(response.latency)
        fields: dict[str, Any] = {
            "id": response.request_id,
            "url": response.url,
            "tier": response.tier,
            "outcome": response.outcome,
            "latency": latency,
        }
        if response.verdict is not None:
            fields["verdict"] = response.verdict
        if response.confidence is not None:
            fields["score"] = response.confidence
        if budget is not None:
            fields["slack"] = budget - latency
        if response.shed_reason is not None:
            fields["shed_reason"] = response.shed_reason
        if response.coalesced:
            fields["coalesced"] = response.coalesced
        if response.queue_wait:
            fields["queue_wait"] = response.queue_wait
        self.recorder.push("serve", now, fields)
        if self.slo is not None and completed:
            for objective in self._slo_latency:
                if objective.tier in (None, response.tier):
                    self.slo.record(
                        objective.name,
                        latency > float(objective.threshold or 0.0),
                        now,
                    )
            degraded = response.outcome == _DEGRADED
            for name in self._slo_degraded:
                self.slo.record(name, degraded, now)
        if (
            self.drift is not None
            and completed
            and response.confidence is not None
        ):
            self.drift.observe_score(response.confidence)
            self._drift_pending += 1
        self._after(now)

    def observe_verdict(
        self,
        score: float,
        verdict: str | None = None,
        groups: Mapping[str, float] | None = None,
        degraded: bool = False,
        url: str | None = None,
        top_features: list[tuple[str, float]] | None = None,
        now: float | None = None,
    ) -> None:
        """Tap one analysis verdict (read-only).

        ``groups`` maps feature-group names to this page's per-group
        mean; ``top_features`` is an optional ranked list of
        ``(feature_name, value)`` contributions for the recorder.
        """
        now = self._resolve(now)
        self._count("verdict")
        self.recorder.record(
            "verdict",
            now,
            url=url,
            verdict=verdict,
            score=float(score),
            degraded=degraded or None,
            top_features=(
                [[name, value] for name, value in top_features]
                if top_features
                else None
            ),
        )
        if self.slo is not None:
            for name in self._slo_degraded:
                self.slo.record(name, degraded, now)
        if self.drift is not None:
            self.drift.observe_score(score)
            if groups:
                self.drift.observe_groups(groups)
            self._drift_pending += 1
        self._after(now)

    def observe_cache(
        self, store: str, hit: bool, now: float | None = None
    ) -> None:
        """Tap one cache lookup for ``cache_hit`` floor objectives."""
        now = self._resolve(now)
        self._count("cache")
        if self.slo is not None:
            for objective in self._slo_cache:
                if objective.store in (None, store):
                    self.slo.record(objective.name, not hit, now)
        self._after(now)

    def observe_escalation(
        self, mismatch: bool, now: float | None = None
    ) -> None:
        """Tap one tier-0 escalation outcome (mismatch = the full
        pipeline's blocking decision disagreed with the triage lean)."""
        now = self._resolve(now)
        self._count("escalation")
        if mismatch:
            self._count("escalation_mismatch")
        if self.slo is not None:
            for name in self._slo_mismatch:
                self.slo.record(name, mismatch, now)
        self._after(now)

    # -- evaluation ----------------------------------------------------
    def _resolve(self, now: float | None) -> float:
        now = self.clock.now() if now is None else float(now)
        self._last_now = max(self._last_now, now)
        return now

    def _count(self, stream: str) -> None:
        self._counts[stream] = self._counts.get(stream, 0) + 1
        if self._metrics_on:
            self.metrics.inc("quality_events_total", stream=stream)

    def _after(self, now: float) -> None:
        if self.slo is not None and (
            self._last_eval is None
            or now - self._last_eval >= self._eval_interval
        ):
            self._evaluate_slo(now)
        if (
            self.drift is not None
            and self._drift_pending >= self._drift_every
        ):
            self._evaluate_drift(now)

    def _evaluate_slo(self, now: float) -> None:
        assert self.slo is not None
        self._last_eval = now
        with self.tracer.span("quality.evaluate", time=now) as span:
            transitions = self.slo.evaluate(now)
            span.set(transitions=len(transitions))
            if self.metrics.enabled:
                for objective in self.slo.objectives:
                    for window in self.slo.windows:
                        self.metrics.set_gauge(
                            "quality_burn_rate",
                            self.slo.burn_rate(
                                objective, window.long_s, now
                            ),
                            objective=objective.name,
                            window=window.name,
                        )
        for transition in transitions:
            self._alert(transition, now)

    def _evaluate_drift(self, now: float) -> None:
        assert self.drift is not None
        self._drift_pending = 0
        with self.tracer.span("quality.drift", time=now) as span:
            statuses = self.drift.statuses()
            span.set(
                signals=len(statuses),
                drifted=sum(1 for s in statuses if s.drifted),
            )
        for status in statuses:
            if self.metrics.enabled:
                self.metrics.set_gauge(
                    "quality_drift_hellinger",
                    status.hellinger,
                    signal=status.signal,
                )
                self.metrics.set_gauge(
                    "quality_drift_psi", status.psi, signal=status.signal
                )
            active = self._drift_active.get(status.signal, False)
            if status.drifted == active:
                continue
            self._drift_active[status.signal] = status.drifted
            self._alert(
                {
                    "kind": "drift",
                    "time": now,
                    "signal": status.signal,
                    "state": "firing" if status.drifted else "resolved",
                    "hellinger": status.hellinger,
                    "psi": status.psi,
                    "count": status.count,
                },
                now,
            )

    def _alert(self, entry: dict[str, Any], now: float) -> None:
        self.alerts.append(entry)
        self.metrics.inc(
            "quality_alerts_total", kind=entry["kind"], state=entry["state"]
        )
        if entry["state"] == "firing":
            with self.tracer.span(
                "quality.dump", kind=entry["kind"], events=len(self.recorder)
            ):
                self.alert_dumps.append(
                    {
                        "time": now,
                        "alert": dict(entry),
                        "events": self.recorder.snapshot(),
                    }
                )
                del self.alert_dumps[:-MAX_ALERT_DUMPS]

    def finish(self, now: float | None = None) -> dict[str, Any]:
        """Force a final SLO + drift evaluation; return the artifact.

        Called on serving drain / end of an analysis run so alerts
        pending inside an evaluation interval (or a partial drift
        chunk) still surface before the artifact is written.
        """
        now = self._resolve(now)
        if self.slo is not None:
            self._evaluate_slo(now)
        if self.drift is not None:
            self._evaluate_drift(now)
        return self.artifact()

    # -- artifacts -----------------------------------------------------
    @property
    def firing_alerts(self) -> list[dict[str, Any]]:
        """Alert-log entries with ``state == "firing"``."""
        return [a for a in self.alerts if a["state"] == "firing"]

    def artifact(self) -> dict[str, Any]:
        """The complete JSON-safe quality artifact (``quality.json``)."""
        return {
            "counts": dict(sorted(self._counts.items())),
            "alerts": list(self.alerts),
            "slo": (
                self.slo.state(self._last_now)
                if self.slo is not None
                else None
            ),
            "drift": (
                self.drift.as_dict() if self.drift is not None else None
            ),
            "recorder": self.recorder.as_dict(),
            "alert_dumps": list(self.alert_dumps),
        }

    def write_artifact(self, path: str | Path) -> Path:
        """Write the artifact as deterministic JSON; return the path."""
        out = Path(path)
        out.write_text(
            json.dumps(self.artifact(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return out

    def write_flight(self, path: str | Path) -> Path:
        """Write the flight-recorder ring as JSONL; return the path."""
        out = Path(path)
        lines = [
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in self.recorder.snapshot()
        ]
        out.write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )
        return out
