"""Streaming drift monitoring against a frozen reference profile.

A :class:`DriftMonitor` keeps one :class:`~repro.obs.quality.sketch.SlidingWindowSketch`
per signal — the classifier-score stream plus each feature group's
per-page mean — aligned bin for bin with the
:class:`~repro.obs.quality.reference.ReferenceProfile` it was built
from, and scores each window against its reference with both Hellinger
distance and PSI.  A signal is *drifted* when its window holds at
least ``min_count`` observations and either divergence crosses its
threshold; requiring a minimum count keeps a half-filled window from
alarming on small-sample noise.

Everything is count-driven (no wall clock): feeding the same
observations in the same order always yields the same statuses, which
is what lets the drift scenario assert alert logs byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.quality.reference import SCORE_SIGNAL, ReferenceProfile
from repro.obs.quality.sketch import (
    SlidingWindowSketch,
    hellinger_divergence,
    population_stability_index,
)


@dataclass(frozen=True)
class DriftThresholds:
    """When a window counts as drifted from its reference.

    Defaults are calibrated for the default window shape (~80
    observations over 32 bins): a healthy window resampled from the
    reference distribution shows Hellinger up to ~0.35 and PSI up to
    ~1.2 from binomial bin noise alone, while genuinely drifted score
    streams exceed 0.5 / 2.5 — so 0.45 / 2.0 separates signal from
    sampling noise with margin on both sides.  ``min_count`` close to
    the full window keeps partially filled (noisier) windows from
    being judged at all.
    """

    hellinger: float = 0.45
    psi: float = 2.0
    min_count: int = 64


@dataclass(frozen=True)
class DriftStatus:
    """One signal's current divergence from its reference."""

    signal: str
    count: int
    hellinger: float
    psi: float
    drifted: bool

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe row for artifacts and reports."""
        return {
            "signal": self.signal,
            "count": self.count,
            "hellinger": self.hellinger,
            "psi": self.psi,
            "drifted": self.drifted,
        }


class DriftMonitor:
    """Sliding-window divergence of live signals vs the reference."""

    def __init__(
        self,
        reference: ReferenceProfile,
        thresholds: DriftThresholds | None = None,
        chunk_size: int = 20,
        chunks: int = 4,
    ) -> None:
        self.reference = reference
        self.thresholds = thresholds or DriftThresholds()
        self._windows: dict[str, SlidingWindowSketch] = {}
        # Divergences are pure functions of the window contents, so a
        # status computed at revision N stays valid until the window
        # sees another observation.  Signals that never advance (a
        # feature group the caller does not feed) cost one computation
        # total instead of one per evaluation tick.
        self._status_cache: dict[str, tuple[int, DriftStatus]] = {}
        for signal in reference.signals:
            frozen = reference.sketch_for(signal)
            self._windows[signal] = SlidingWindowSketch(
                frozen.lo,
                frozen.hi,
                depth=frozen.depth,
                chunk_size=chunk_size,
                chunks=chunks,
            )

    # ------------------------------------------------------------------
    @property
    def signals(self) -> list[str]:
        """Signal names in canonical (reference) order."""
        return list(self._windows)

    def observe_score(self, score: float) -> None:
        """Feed one classifier score into the score window."""
        self._windows[SCORE_SIGNAL].observe(float(score))

    def observe_groups(self, groups: Mapping[str, float]) -> None:
        """Feed one page's per-group feature means.

        Unknown group names are ignored (the reference defines the
        signal set); missing ones simply do not advance their window.
        """
        for name, value in groups.items():
            window = self._windows.get(name)
            if window is not None and name != SCORE_SIGNAL:
                window.observe(float(value))

    # ------------------------------------------------------------------
    def status(self, signal: str) -> DriftStatus:
        """Current divergence of one signal."""
        sliding = self._windows[signal]
        revision = sliding.revision
        cached = self._status_cache.get(signal)
        if cached is not None and cached[0] == revision:
            return cached[1]
        window = sliding.window()
        frozen = self.reference.sketch_for(signal)
        hellinger = hellinger_divergence(frozen.counts, window.counts)
        psi = population_stability_index(frozen.counts, window.counts)
        drifted = window.count >= self.thresholds.min_count and (
            hellinger >= self.thresholds.hellinger
            or psi >= self.thresholds.psi
        )
        result = DriftStatus(
            signal=signal,
            count=window.count,
            hellinger=hellinger,
            psi=psi,
            drifted=drifted,
        )
        self._status_cache[signal] = (revision, result)
        return result

    def statuses(self) -> list[DriftStatus]:
        """Every signal's status, in canonical order."""
        return [self.status(signal) for signal in self._windows]

    def drifted_signals(self) -> list[str]:
        """Names of the currently drifted signals, in canonical order."""
        return [s.signal for s in self.statuses() if s.drifted]

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot: thresholds + per-signal statuses."""
        return {
            "thresholds": {
                "hellinger": self.thresholds.hellinger,
                "psi": self.thresholds.psi,
                "min_count": self.thresholds.min_count,
            },
            "reference_pages": self.reference.n_pages,
            "signals": [status.as_dict() for status in self.statuses()],
        }
