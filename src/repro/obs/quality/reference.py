"""Frozen training-time reference profiles for drift comparison.

A :class:`ReferenceProfile` captures what "healthy" looked like when
the model was trained: the distribution of classifier scores over the
training corpus and the distribution of each feature group's per-page
mean.  The drift monitor compares live sliding windows against these
frozen sketches bin for bin, so the profile pins the bin layout
(domain + depth) that every live window must share.

Profiles round-trip through JSON (:meth:`ReferenceProfile.write` /
:meth:`ReferenceProfile.read`) so a serving deployment can load the
profile its champion model shipped with, without the training data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.quality.sketch import QuantileSketch

#: The drift monitor's score stream name; feature groups use their own
#: names (``f1`` .. ``f5``).
SCORE_SIGNAL = "score"


class ReferenceProfile:
    """Training-time score + feature-group distributions, frozen."""

    def __init__(
        self,
        score: QuantileSketch,
        groups: dict[str, QuantileSketch],
        n_pages: int = 0,
    ) -> None:
        self.score = score
        self.groups = dict(groups)
        self.n_pages = int(n_pages)

    # ------------------------------------------------------------------
    @property
    def signals(self) -> list[str]:
        """Signal names in canonical order: score first, then groups."""
        return [SCORE_SIGNAL, *self.groups]

    def sketch_for(self, signal: str) -> QuantileSketch:
        """The frozen sketch backing one signal name."""
        if signal == SCORE_SIGNAL:
            return self.score
        return self.groups[signal]

    # ------------------------------------------------------------------
    @classmethod
    def from_training(
        cls,
        scores: Iterable[float],
        group_values: Mapping[str, Iterable[float]],
        depth: int = 32,
        margin: float = 0.25,
    ) -> "ReferenceProfile":
        """Freeze a profile from training-time scores and group means.

        ``scores`` are classifier probabilities (domain pinned to
        ``[0, 1]``).  Each entry of ``group_values`` is the per-page
        mean of one feature group over the training matrix; its sketch
        domain is the observed range widened by ``margin`` on each side
        (a degenerate constant column gets a symmetric ±0.5 pad), so
        live values that wander moderately outside the training range
        still land in real bins instead of all clamping into one.
        """
        score_sketch = QuantileSketch(0.0, 1.0, depth)
        count = 0
        for value in scores:
            score_sketch.observe(float(value))
            count += 1
        groups: dict[str, QuantileSketch] = {}
        for name, values in group_values.items():
            samples = [float(v) for v in values]
            if samples:
                lo, hi = min(samples), max(samples)
            else:
                lo, hi = 0.0, 1.0
            pad = margin * (hi - lo) if hi > lo else 0.5
            sketch = QuantileSketch(lo - pad, hi + pad, depth)
            sketch.observe_many(samples)
            groups[name] = sketch
        return cls(score_sketch, groups, n_pages=count)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot; :meth:`from_dict` inverts it exactly."""
        sketch = self.score
        return {
            "n_pages": self.n_pages,
            "score": sketch.as_dict(),
            "groups": {
                name: sketch.as_dict()
                for name, sketch in self.groups.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ReferenceProfile":
        """Rebuild a profile from an :meth:`as_dict` snapshot."""
        return cls(
            QuantileSketch.from_dict(payload["score"]),
            {
                name: QuantileSketch.from_dict(entry)
                for name, entry in payload["groups"].items()
            },
            n_pages=payload.get("n_pages", 0),
        )

    def write(self, path: str | Path) -> Path:
        """Serialize to deterministic JSON and return the path."""
        out = Path(path)
        out.write_text(
            json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return out

    @classmethod
    def read(cls, path: str | Path) -> "ReferenceProfile":
        """Load a profile written by :meth:`write`."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )
