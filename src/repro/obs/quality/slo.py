"""Declarative SLOs evaluated over multi-window burn rates.

Every objective is normalized to a good/bad event stream with an error
*budget* (the allowed bad fraction):

* ``latency`` — bad = a completed response slower than ``threshold``
  seconds (optionally restricted to one serving tier), so "tier-0 p99
  ≤ 5 ms" becomes budget 0.01 over the bad-event stream
  "latency > 0.005";
* ``degraded_rate`` — bad = a completed verdict carrying degradation
  tags;
* ``escalation_mismatch`` — bad = a tier-0 escalation whose full
  verdict disagreed with the triage lean;
* ``cache_hit`` — bad = a cache miss, with budget ``1 - floor``.

Alerting follows the multi-window burn-rate pattern: for each
:class:`BurnRateWindow` the engine compares the bad-rate/budget ratio
over a long window (is real budget being spent?) *and* a short window
(is it still being spent right now?) against ``factor``; an alert
fires only when both exceed it, and resolves when either drops back.
Time comes exclusively from the instants callers pass in — under the
engine's :class:`~repro.resilience.clock.ManualClock` the whole alert
log replays byte for byte.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

_KINDS = ("latency", "degraded_rate", "escalation_mismatch", "cache_hit")


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over a good/bad event stream."""

    name: str
    kind: str
    budget: float
    threshold: float | None = None  # latency bound, kind="latency"
    tier: str | None = None         # restrict to one tier, kind="latency"
    store: str | None = None        # cache name, kind="cache_hit"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown objective kind {self.kind!r}; expected one of "
                f"{_KINDS}"
            )
        if not 0 < self.budget < 1:
            raise ValueError(
                f"budget must be in (0, 1), got {self.budget}"
            )
        if self.kind == "latency" and self.threshold is None:
            raise ValueError("latency objectives need a threshold")

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe declaration for artifacts."""
        return {
            "name": self.name,
            "kind": self.kind,
            "budget": self.budget,
            "threshold": self.threshold,
            "tier": self.tier,
            "store": self.store,
            "description": self.description,
        }


@dataclass(frozen=True)
class BurnRateWindow:
    """One (long, short) burn-rate window pair with its firing factor."""

    name: str
    long_s: float
    short_s: float
    factor: float

    def __post_init__(self) -> None:
        if not 0 < self.short_s <= self.long_s:
            raise ValueError(
                f"windows must satisfy 0 < short <= long, got "
                f"short={self.short_s} long={self.long_s}"
            )
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")


#: Default window pairs, sized for real-time seconds; simulated-time
#: scenarios pass their own (e.g. sub-second windows for a 2 s run).
DEFAULT_WINDOWS: tuple[BurnRateWindow, ...] = (
    BurnRateWindow("fast", long_s=60.0, short_s=5.0, factor=10.0),
    BurnRateWindow("slow", long_s=600.0, short_s=60.0, factor=2.0),
)


class SloEngine:
    """Aggregates good/bad events per objective; evaluates burn rates.

    Events land in fixed-``resolution`` time buckets per objective (a
    deque of ``[bucket_start, total, bad]``), old buckets are evicted
    past the longest window, and :meth:`evaluate` walks every
    (objective, window) pair emitting firing/resolved transitions.
    """

    def __init__(
        self,
        objectives: tuple[SloObjective, ...] | list[SloObjective],
        windows: tuple[BurnRateWindow, ...] = DEFAULT_WINDOWS,
        resolution: float | None = None,
    ) -> None:
        if not objectives:
            raise ValueError("SloEngine needs at least one objective")
        if not windows:
            raise ValueError("SloEngine needs at least one window pair")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        self.objectives: tuple[SloObjective, ...] = tuple(objectives)
        self.windows: tuple[BurnRateWindow, ...] = tuple(windows)
        self.resolution = (
            resolution
            if resolution is not None
            else min(window.short_s for window in self.windows) / 5.0
        )
        if self.resolution <= 0:
            raise ValueError(
                f"resolution must be positive, got {self.resolution}"
            )
        self._horizon = (
            max(window.long_s for window in self.windows) + self.resolution
        )
        self._buckets: dict[str, deque[list[float]]] = {
            objective.name: deque() for objective in self.objectives
        }
        self._active: dict[tuple[str, str], bool] = {
            (objective.name, window.name): False
            for objective in self.objectives
            for window in self.windows
        }

    # ------------------------------------------------------------------
    def record(self, name: str, bad: bool, now: float) -> None:
        """Add one good/bad event to an objective at instant ``now``."""
        buckets = self._buckets[name]
        resolution = self.resolution
        start = (now // resolution) * resolution
        if buckets:
            last = buckets[-1]
            if last[0] == start:
                last[1] += 1
                if bad:
                    last[2] += 1
                return
        buckets.append([start, 1, 1 if bad else 0])
        cutoff = now - self._horizon
        while buckets and buckets[0][0] < cutoff:
            buckets.popleft()

    def _window_totals(
        self, name: str, window_s: float, now: float
    ) -> tuple[int, int]:
        cutoff = now - window_s
        total = bad = 0
        for start, bucket_total, bucket_bad in self._buckets[name]:
            if start >= cutoff:
                total += int(bucket_total)
                bad += int(bucket_bad)
        return total, bad

    def burn_rate(
        self, objective: SloObjective, window_s: float, now: float
    ) -> float:
        """(bad fraction / budget) over the trailing window; 0 if idle."""
        total, bad = self._window_totals(objective.name, window_s, now)
        if total == 0:
            return 0.0
        return (bad / total) / objective.budget

    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> list[dict[str, Any]]:
        """Walk every (objective, window) pair; return transitions.

        Each transition is a JSON-safe alert-log entry with
        ``state: "firing" | "resolved"``; steady states emit nothing.
        """
        transitions: list[dict[str, Any]] = []
        for objective in self.objectives:
            for window in self.windows:
                burn_long = self.burn_rate(objective, window.long_s, now)
                burn_short = self.burn_rate(objective, window.short_s, now)
                firing = (
                    burn_long >= window.factor
                    and burn_short >= window.factor
                )
                key = (objective.name, window.name)
                if firing == self._active[key]:
                    continue
                self._active[key] = firing
                transitions.append(
                    {
                        "kind": "slo",
                        "time": now,
                        "objective": objective.name,
                        "window": window.name,
                        "state": "firing" if firing else "resolved",
                        "burn_long": burn_long,
                        "burn_short": burn_short,
                        "budget": objective.budget,
                        "factor": window.factor,
                    }
                )
        return transitions

    # ------------------------------------------------------------------
    def state(self, now: float) -> dict[str, Any]:
        """Current burn rates and active flags, for artifacts."""
        rows = []
        for objective in self.objectives:
            for window in self.windows:
                total, bad = self._window_totals(
                    objective.name, window.long_s, now
                )
                rows.append(
                    {
                        "objective": objective.name,
                        "window": window.name,
                        "burn_long": self.burn_rate(
                            objective, window.long_s, now
                        ),
                        "burn_short": self.burn_rate(
                            objective, window.short_s, now
                        ),
                        "factor": window.factor,
                        "events_long": total,
                        "bad_long": bad,
                        "active": self._active[
                            (objective.name, window.name)
                        ],
                    }
                )
        return {
            "objectives": [o.as_dict() for o in self.objectives],
            "resolution": self.resolution,
            "burn": rows,
        }
