"""The serving flight recorder: a bounded ring of structured events.

When a quality alert fires, the question is always "what was the
system actually doing just before?"  The :class:`FlightRecorder`
answers it from artifacts alone: every monitored request appends one
structured event (tier, cache path, deadline slack, score, top feature
contributions — whatever the tap knows), the ring keeps the newest
``capacity`` of them, and the quality monitor snapshots the ring into
the alert log whenever an alert fires and again on drain.

Events carry a monotonically increasing ``seq`` so a dump's position
in the stream is explicit even after older events have been evicted;
``dropped`` counts the evictions.  No wall clock is read here — the
``time`` field is whatever instant the caller passes in.
"""

from __future__ import annotations

from collections import deque
from typing import Any


class FlightRecorder:
    """Newest-``capacity`` structured events, with eviction accounting."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._events: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._seq = 0
        self.dropped = 0

    def record(self, kind: str, time: float, **fields: Any) -> dict[str, Any]:
        """Append one event; ``None``-valued fields are elided.

        Field order follows the call site's keyword order (stable per
        tap); serialized dumps canonicalize with ``sort_keys`` anyway.
        """
        filtered = {
            key: value for key, value in fields.items() if value is not None
        }
        return self.push(kind, time, filtered)

    def push(self, kind: str, time: float, fields: dict[str, Any]) -> dict[str, Any]:
        """Fast-path append: ``fields`` must already elide ``None``s.

        Hot taps build the field dict once and hand it over; the
        recorder takes ownership of it.
        """
        event: dict[str, Any] = {
            "seq": self._seq,
            "kind": kind,
            "time": time,
        }
        event.update(fields)
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self._seq += 1
        return event

    def __len__(self) -> int:
        return len(self._events)

    def snapshot(self) -> list[dict[str, Any]]:
        """The current ring contents, oldest first (shallow copies)."""
        return [dict(event) for event in self._events]

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe dump: ring contents plus eviction accounting."""
        return {
            "capacity": self.capacity,
            "recorded": self._seq,
            "dropped": self.dropped,
            "events": self.snapshot(),
        }
