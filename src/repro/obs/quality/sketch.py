"""Mergeable distribution sketches and divergence measures.

The drift monitor needs to compare *distributions* — of classifier
scores and of per-feature-group means — between training time and live
traffic, cheaply and reproducibly.  A :class:`QuantileSketch` is the
unit of account: a fixed-depth histogram over a bounded domain whose
state is **integers only** (per-bin counts, total, plus exact min/max),
so :meth:`QuantileSketch.merge` is exactly commutative *and*
associative — there is no floating-point running sum to accumulate
ulp drift in a different order per backend.  Two sketches fed the same
observations in any order, or merged from any partition of them, are
``==`` and serialize byte-identically.

:class:`SlidingWindowSketch` layers recency on top: a ring of
chunk-sized sub-sketches whose merged view approximates "the last N
observations", evicting whole chunks deterministically.

The divergence functions mirror the conventions of the paper's f2
Hellinger machinery (:func:`repro.text.distributions.hellinger_distance`):
two empty distributions are identical (0.0), an empty versus a
non-empty one is maximally distant (1.0), and the result is clamped to
``[0, 1]``.  :func:`population_stability_index` is the industry-standard
PSI companion, floored so empty bins never divide by zero.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Iterable, Sequence

from repro.obs.quantiles import histogram_quantile


class QuantileSketch:
    """Deterministic fixed-depth quantile sketch over ``[lo, hi]``.

    Values below ``lo`` clamp into the first bin, values above ``hi``
    into the last; the true observed min/max are tracked exactly so
    clamping never loses the envelope.  All mutable state is integral
    (bin counts) or order-independent (min/max), which is what makes
    :meth:`merge` commutative and associative to the byte.
    """

    __slots__ = (
        "lo", "hi", "depth", "counts", "count", "vmin", "vmax", "_scale"
    )

    def __init__(self, lo: float, hi: float, depth: int = 32) -> None:
        if not hi > lo:
            raise ValueError(f"domain must satisfy hi > lo, got [{lo}, {hi}]")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.depth = int(depth)
        self.counts: list[int] = [0] * self.depth
        self.count = 0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self._scale = self.depth / (self.hi - self.lo)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation (clamped into the domain's bins)."""
        value = float(value)
        index = int((value - self.lo) * self._scale)
        if index < 0:
            index = 0
        elif index >= self.depth:
            index = self.depth - 1
        self.counts[index] += 1
        self.count += 1
        vmin = self.vmin
        if vmin is None or value < vmin:
            self.vmin = value
        vmax = self.vmax
        if vmax is None or value > vmax:
            self.vmax = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations in order."""
        for value in values:
            self.observe(value)

    # ------------------------------------------------------------------
    def compatible(self, other: "QuantileSketch") -> bool:
        """True when the two sketches share a domain and depth."""
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and self.depth == other.depth
        )

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """A new sketch holding both operands' observations.

        Pure (neither operand is mutated), commutative and associative:
        integer bin counts add, min/max combine.  Raises on mismatched
        domains — merging incomparable histograms would silently
        misbin.
        """
        if not self.compatible(other):
            raise ValueError(
                f"cannot merge sketches over [{self.lo}, {self.hi}]x"
                f"{self.depth} and [{other.lo}, {other.hi}]x{other.depth}"
            )
        merged = QuantileSketch(self.lo, self.hi, self.depth)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.count = self.count + other.count
        candidates_min = [v for v in (self.vmin, other.vmin) if v is not None]
        candidates_max = [v for v in (self.vmax, other.vmax) if v is not None]
        merged.vmin = min(candidates_min) if candidates_min else None
        merged.vmax = max(candidates_max) if candidates_max else None
        return merged

    # ------------------------------------------------------------------
    def bin_edges(self) -> list[float]:
        """The ``depth`` upper bin edges (the last one is ``hi``)."""
        width = (self.hi - self.lo) / self.depth
        edges = [self.lo + width * (i + 1) for i in range(self.depth - 1)]
        edges.append(self.hi)
        return edges

    def quantile(self, quantile: float) -> float:
        """Interpolated quantile, clamped to the observed envelope."""
        if self.count == 0:
            return 0.0
        value = histogram_quantile(
            self.bin_edges(), self.counts, quantile, lo=self.lo
        )
        if self.vmin is not None:
            value = max(value, self.vmin)
        if self.vmax is not None:
            value = min(value, self.vmax)
        return value

    def normalized(self) -> list[float]:
        """Bin masses as fractions (all zeros when empty)."""
        if self.count == 0:
            return [0.0] * self.depth
        return [c / self.count for c in self.counts]

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.compatible(other)
            and self.counts == other.counts
            and self.count == other.count
            and self.vmin == other.vmin
            and self.vmax == other.vmax
        )

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(lo={self.lo}, hi={self.hi}, "
            f"depth={self.depth}, count={self.count})"
        )

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot; :meth:`from_dict` inverts it exactly."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "depth": self.depth,
            "counts": list(self.counts),
            "count": self.count,
            "min": self.vmin,
            "max": self.vmax,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "QuantileSketch":
        """Rebuild a sketch from an :meth:`as_dict` snapshot."""
        sketch = cls(payload["lo"], payload["hi"], payload["depth"])
        counts = [int(c) for c in payload["counts"]]
        if len(counts) != sketch.depth:
            raise ValueError(
                f"snapshot carries {len(counts)} bins for depth "
                f"{sketch.depth}"
            )
        sketch.counts = counts
        sketch.count = int(payload["count"])
        sketch.vmin = payload.get("min")
        sketch.vmax = payload.get("max")
        return sketch


class SlidingWindowSketch:
    """The last ~``chunk_size * chunks`` observations as a sketch ring.

    Observations fill chunk-sized :class:`QuantileSketch` segments; the
    ring keeps the newest ``chunks`` segments and evicts whole old ones,
    so the window slides in deterministic chunk steps (no per-element
    timestamps, no wall clock).  :meth:`window` folds the ring with
    :meth:`QuantileSketch.merge`, which is order-independent.
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        depth: int = 32,
        chunk_size: int = 64,
        chunks: int = 4,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.depth = int(depth)
        self.chunk_size = int(chunk_size)
        self.chunks = int(chunks)
        self._ring: deque[QuantileSketch] = deque(
            [QuantileSketch(self.lo, self.hi, self.depth)], maxlen=chunks
        )
        self._revision = 0

    @property
    def revision(self) -> int:
        """Bumped on every observation; lets readers cache derived views."""
        return self._revision

    @property
    def capacity(self) -> int:
        """Maximum observations the window can represent."""
        return self.chunk_size * self.chunks

    @property
    def count(self) -> int:
        """Observations currently inside the window."""
        return sum(chunk.count for chunk in self._ring)

    def observe(self, value: float) -> None:
        """Record one observation, rolling to a new chunk when full."""
        current = self._ring[-1]
        if current.count >= self.chunk_size:
            current = QuantileSketch(self.lo, self.hi, self.depth)
            self._ring.append(current)  # deque evicts the oldest chunk
        current.observe(value)
        self._revision += 1

    def window(self) -> QuantileSketch:
        """The merged view of every chunk still in the window."""
        sketch = QuantileSketch(self.lo, self.hi, self.depth)
        for chunk in self._ring:
            sketch = sketch.merge(chunk)
        return sketch

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of the merged window plus ring shape."""
        sketch = self.window()
        return {
            "chunk_size": self.chunk_size,
            "chunks": self.chunks,
            "window": sketch.as_dict(),
        }


# ----------------------------------------------------------------------
# Divergences
# ----------------------------------------------------------------------

def hellinger_divergence(
    p_counts: Sequence[float], q_counts: Sequence[float]
) -> float:
    """Hellinger distance between two aligned bin-count vectors.

    Follows the conventions of the paper's term-distribution
    Hellinger (Eq. 1): both empty → 0.0 (identical), exactly one
    empty → 1.0 (maximally distant), result clamped to ``[0, 1]``.
    Summation runs in bin order, so the value is deterministic.
    """
    if len(p_counts) != len(q_counts):
        raise ValueError(
            f"bin vectors differ in length: {len(p_counts)} vs "
            f"{len(q_counts)}"
        )
    p_total = float(sum(p_counts))
    q_total = float(sum(q_counts))
    if p_total == 0.0 and q_total == 0.0:
        return 0.0
    if p_total == 0.0 or q_total == 0.0:
        return 1.0
    acc = 0.0
    for p, q in zip(p_counts, q_counts):
        diff = math.sqrt(p / p_total) - math.sqrt(q / q_total)
        acc += diff * diff
    return min(1.0, math.sqrt(0.5 * acc))


def population_stability_index(
    p_counts: Sequence[float],
    q_counts: Sequence[float],
    floor: float = 1e-4,
) -> float:
    """PSI between two aligned bin-count vectors (reference first).

    Bin fractions are floored at ``floor`` before the log ratio, the
    standard guard against empty bins; an entirely empty side therefore
    produces a large-but-finite, deterministic value rather than
    infinity (and two empty sides produce 0.0).  Rule of thumb:
    < 0.1 stable, 0.1–0.25 moderate shift, > 0.25 major shift.
    """
    if len(p_counts) != len(q_counts):
        raise ValueError(
            f"bin vectors differ in length: {len(p_counts)} vs "
            f"{len(q_counts)}"
        )
    p_total = float(sum(p_counts))
    q_total = float(sum(q_counts))
    if p_total == 0.0 and q_total == 0.0:
        return 0.0
    value = 0.0
    for p, q in zip(p_counts, q_counts):
        p_frac = max(p / p_total if p_total else 0.0, floor)
        q_frac = max(q / q_total if q_total else 0.0, floor)
        value += (p_frac - q_frac) * math.log(p_frac / q_frac)
    return value
