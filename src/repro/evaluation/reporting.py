"""ASCII rendering of experiment results (tables and curve series)."""

from __future__ import annotations


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Render a list of rows as an aligned ASCII table."""
    str_rows = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in str_rows))
        if str_rows else len(header)
        for index, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_curve(name: str, xs, ys, points: int = 8) -> str:
    """Render a curve as a compact one-line series of (x, y) pairs."""
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    step = max(1, n // points)
    indices = list(range(0, n, step))
    if indices[-1] != n - 1:
        indices.append(n - 1)
    pairs = " ".join(
        f"({xs[index]:.3f},{ys[index]:.3f})" for index in indices
    )
    return f"{name}: {pairs}"
